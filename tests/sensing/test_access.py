"""Tests for the collision-capped access policy (eqs. (5)-(7))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing.access import AccessDecision, AccessPolicy, CollisionTracker
from repro.sensing.detector import SpectrumSensor
from repro.sensing.fusion import fuse_posterior
from repro.spectrum.channel import Spectrum


class TestAccessProbability:
    def test_eq7_below_cap(self):
        # busy posterior 0.5 > gamma 0.2 => P_D = 0.2/0.5 = 0.4
        policy = AccessPolicy([0.2])
        assert policy.access_probability(0, 0.5) == pytest.approx(0.4)

    def test_eq7_clipped_at_one(self):
        # busy posterior 0.1 <= gamma 0.2 => always access
        policy = AccessPolicy([0.2])
        assert policy.access_probability(0, 0.9) == 1.0

    def test_certainly_busy_channel(self):
        policy = AccessPolicy([0.2])
        assert policy.access_probability(0, 0.0) == pytest.approx(0.2)

    def test_zero_cap_means_never_access_unless_certain(self):
        policy = AccessPolicy([0.0])
        assert policy.access_probability(0, 0.5) == 0.0
        assert policy.access_probability(0, 1.0) == 1.0

    @given(gamma=st.floats(0.0, 1.0), posterior=st.floats(0.0, 1.0))
    @settings(max_examples=100)
    def test_property_constraint_eq6(self, gamma, posterior):
        """(1 - P_A) * P_D <= gamma for every operating point."""
        policy = AccessPolicy([gamma])
        p_d = policy.access_probability(0, posterior)
        assert 0.0 <= p_d <= 1.0
        assert (1.0 - posterior) * p_d <= gamma + 1e-12


class TestDecide:
    def test_shapes_and_types(self):
        policy = AccessPolicy([0.2] * 4, rng=0)
        decision = policy.decide([0.9, 0.1, 0.5, 0.99])
        assert isinstance(decision, AccessDecision)
        assert decision.decisions.shape == (4,)
        assert set(np.unique(decision.decisions)) <= {0, 1}

    def test_wrong_length_rejected(self):
        policy = AccessPolicy([0.2] * 4, rng=0)
        with pytest.raises(ValueError):
            policy.decide([0.5, 0.5])

    def test_expected_available_is_posterior_sum(self):
        policy = AccessPolicy([0.2] * 3, rng=1)
        decision = policy.decide([0.95, 0.92, 0.05])
        available = decision.available_channels
        assert decision.expected_available == pytest.approx(
            float(np.sum(decision.posteriors[available])))

    def test_expected_available_subset(self):
        policy = AccessPolicy([0.2] * 3, rng=1)
        decision = policy.decide([0.95, 0.92, 0.9])
        full = decision.expected_available
        subset = decision.expected_available_subset(
            decision.available_channels.tolist()[:1])
        assert 0.0 <= subset <= full

    def test_subset_deduplicates_channel_indices(self):
        """Regression: a duplicated index must not inflate ``G``.

        ``G`` sums posteriors over a channel *set*; with posteriors
        0.5/0.6 the list ``[0, 0, 1]`` must yield 1.1, not 1.6.
        """
        policy = AccessPolicy([1.0] * 2, rng=0)  # cap 1.0: always access
        decision = policy.decide([0.5, 0.6])
        assert decision.available_channels.tolist() == [0, 1]
        assert decision.expected_available_subset([0, 0, 1]) == pytest.approx(1.1)
        assert decision.expected_available_subset([0, 0, 1]) == \
            decision.expected_available_subset([0, 1])

    def test_subset_ignores_unaccessed_channels(self):
        policy = AccessPolicy([0.0] * 2, rng=0)
        decision = policy.decide([0.5, 0.5])  # never accessed (cap 0)
        assert decision.available_channels.size == 0
        assert decision.expected_available_subset([0, 1]) == 0.0

    def test_sure_channels_always_accessed(self):
        policy = AccessPolicy([0.2] * 2, rng=2)
        for _ in range(50):
            decision = policy.decide([1.0, 0.85])
            assert decision.decisions[0] == 0
            assert decision.decisions[1] == 0


class TestEndToEndCollisionCap:
    def test_empirical_collision_rate_below_gamma(self):
        """Full loop: Markov truth -> noisy sensing -> fusion -> access.

        eq. (6) caps the unconditional per-slot collision probability at
        gamma; verified over a long horizon.
        """
        gamma = 0.2
        n_channels = 4
        rng = np.random.default_rng(3)
        spectrum = Spectrum(n_channels, 0.4, 0.3, rng=4)
        policy = AccessPolicy(np.full(n_channels, gamma), rng=5)
        sensors = [SpectrumSensor(0.3, 0.3, rng=rng) for _ in range(3)]
        tracker = CollisionTracker(n_channels)
        for _ in range(8000):
            state = spectrum.advance()
            posteriors = [
                fuse_posterior(spectrum.utilizations[m],
                               [s.sense(m, int(state.occupancy[m])) for s in sensors])
                for m in range(n_channels)
            ]
            tracker.record(policy.decide(posteriors), state.occupancy)
        rates = tracker.collision_rates()
        assert np.all(rates <= gamma + 0.02)


class TestCollisionTracker:
    def test_counts(self):
        tracker = CollisionTracker(2)
        decision = AccessDecision(
            access_probabilities=np.array([1.0, 1.0]),
            decisions=np.array([0, 1], dtype=np.int8),
            posteriors=np.array([0.9, 0.1]),
        )
        tracker.record(decision, np.array([1, 1]))  # ch0 accessed & busy
        assert tracker.accesses.tolist() == [1, 0]
        assert tracker.collisions.tolist() == [1, 0]
        assert tracker.collision_rates().tolist() == [1.0, 0.0]

    def test_empty_rates(self):
        assert CollisionTracker(3).collision_rates().tolist() == [0.0] * 3

    def test_shape_mismatch_rejected(self):
        tracker = CollisionTracker(2)
        decision = AccessDecision(
            access_probabilities=np.ones(2),
            decisions=np.zeros(2, dtype=np.int8),
            posteriors=np.ones(2))
        with pytest.raises(ValueError):
            tracker.record(decision, np.array([0, 0, 0]))
