"""Command-line interface: regenerate the paper's figures from a shell.

Usage (after ``pip install -e .``)::

    python -m repro fig3 --runs 10
    python -m repro fig4a
    python -m repro fig4b --runs 10 --jobs 4 --progress
    python -m repro fig6a --runs 5 --gops 2
    python -m repro simulate --scenario interfering --scheme heuristic2
    python -m repro all --runs 5
    python -m repro serve --workspace ws            # HTTP job service
    python -m repro submit fig4b --runs 2 --wait    # queue over HTTP
    python -m repro compare a.json b.json           # diff two results

Each figure command prints the same rows/series the paper's figure
reports (see EXPERIMENTS.md for the committed reference output).

Exit codes form a contract CI and job-service callers can assert:

* ``0`` -- success (failed replications are *reported* but tolerated
  unless ``--fail-on-error`` is given).
* ``2`` -- argparse usage error (argparse's own convention).
* ``3`` -- ``--fail-on-error`` was given and at least one replication
  failed after its retry (including cells killed by ``--cell-timeout``).
* ``4`` -- graceful shutdown: a SIGINT/SIGTERM arrived, in-flight cells
  drained to the checkpoint, the sweep is resumable.
* ``5`` -- the ``--deadline`` wall-clock budget expired.
* ``6`` -- hard abort on a second SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro import obs
from repro.exec.supervisor import (
    EXIT_DEADLINE,
    EXIT_FAILED_RUNS,
    EXIT_INTERRUPTED,
    ShutdownCoordinator,
)
from repro.experiments.fig3 import max_improvement_db, run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.report import format_convergence, format_fig3, format_sweep
from repro.experiments.scenarios import interfering_fbs_scenario, single_fbs_scenario
from repro.registry import scenario_registry, scheme_registry
from repro.sim.runner import MonteCarloRunner
from repro.utils.errors import SweepDeadlineExceeded, SweepInterrupted

#: Figure commands in run order for ``python -m repro all``.
FIGURES = ("fig3", "fig4a", "fig4b", "fig4c", "fig6a", "fig6b", "fig6c")

#: The subset of figure commands that run parameter sweeps (and hence
#: take checkpoints and register scenario hashes in a workspace).
SWEEP_FIGURES = ("fig4b", "fig4c", "fig6a", "fig6b", "fig6c")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Hu & Mao (ICDCS 2011): MGS video over "
                    "femtocell CR networks.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--runs", type=int, default=10,
                       help="Monte-Carlo replications per point (default 10)")
        p.add_argument("--gops", type=int, default=3,
                       help="GOP windows per run (default 3)")
        p.add_argument("--seed", type=int, default=7,
                       help="root RNG seed (default 7)")
        p.add_argument("--chart", action="store_true",
                       help="also render sweep results as an ASCII chart")
        p.add_argument("--output", metavar="FILE", default=None,
                       help="save the result data as JSON (see "
                            "repro.experiments.results_io)")
        p.add_argument("--checkpoint", metavar="FILE", default=None,
                       help="checkpoint completed (scheme, point, run) "
                            "cells to FILE and resume from it on restart "
                            "(sweep figures only)")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for Monte-Carlo cells "
                            "(default 1 = serial; results are "
                            "bit-identical at any N)")
        p.add_argument("--progress", action="store_true",
                       help="live per-cell progress on stderr plus an "
                            "end-of-run timing report (sweep figures only)")
        p.add_argument("--profile", action="store_true",
                       help="print per-phase engine timings (sensing/"
                            "access/allocation/transmission) with the "
                            "timing report; with --trace, also collect "
                            "per-phase and solver spans")
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="append a JSONL span trace of the run to FILE "
                            "(see repro.obs.trace)")
        p.add_argument("--metrics", metavar="FILE", default=None,
                       help="collect solver/access/executor metrics and "
                            "write a Prometheus-style text dump to FILE")
        p.add_argument("--log-level", default=None,
                       choices=("debug", "info", "warning", "error"),
                       help="enable repro.* logging on stderr at this level")
        p.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SEC",
                       help="per-cell wall-clock deadline: a cell past it "
                            "has its worker killed and is recorded as a "
                            "CellTimedOut failure (enables the supervised "
                            "executor)")
        p.add_argument("--deadline", type=float, default=None, metavar="SEC",
                       help="whole-run wall-clock deadline: on expiry the "
                            "run exits with code 5; completed cells stay "
                            "in the checkpoint")
        p.add_argument("--fail-on-error", action="store_true",
                       help="exit with code 3 when any replication failed "
                            "after its retry (including cells killed by "
                            "--cell-timeout) instead of just reporting it")
        p.add_argument("--workspace", metavar="DIR", default=None,
                       help="managed artifact workspace: cache built "
                            "scenarios under DIR/scenarios/, default "
                            "--output into DIR/results/ and --checkpoint "
                            "into DIR/checkpoints/, and register the run "
                            "in DIR/index.json (see `repro workspace`)")
        p.add_argument("--run-name", metavar="NAME", default=None,
                       help="register the run in the workspace under NAME "
                            "instead of the command name (the job service "
                            "uses this so concurrent jobs of the same "
                            "figure never collide in the index)")

    for name, title in (
        ("fig3", "Fig. 3: per-user PSNR, single FBS"),
        ("fig4b", "Fig. 4(b): PSNR vs number of channels"),
        ("fig4c", "Fig. 4(c): PSNR vs channel utilisation"),
        ("fig6a", "Fig. 6(a): PSNR vs utilisation, interfering FBSs"),
        ("fig6b", "Fig. 6(b): PSNR vs sensing errors"),
        ("fig6c", "Fig. 6(c): PSNR vs common-channel bandwidth"),
        ("all", "run every figure in sequence"),
    ):
        sub_parser = sub.add_parser(name, help=title)
        add_common(sub_parser)

    # fig4a shares the full common flag set (the convergence trace only
    # uses a subset, but --profile/--progress/--trace behave uniformly
    # across every subcommand) plus its own solver step size.
    fig4a = sub.add_parser("fig4a", help="Fig. 4(a): dual-variable convergence")
    add_common(fig4a)
    fig4a.add_argument("--step-size", type=float, default=0.004)

    simulate = sub.add_parser("simulate", help="run one scenario and print metrics")
    add_common(simulate)
    simulate.add_argument("--scenario", choices=scenario_registry().names(),
                          default="single",
                          help="registered scenario generator "
                               "(see `repro scenarios`)")
    simulate.add_argument("--scheme", default="proposed-fast",
                          choices=scheme_registry().names(),
                          help="registered allocation scheme "
                               "(see `repro schemes`)")
    simulate.add_argument("--scenario-arg", action="append", default=[],
                          metavar="KEY=VALUE",
                          help="extra generator parameter, repeatable "
                               "(e.g. --scenario-arg rows=4); values "
                               "coerce to int/float/bool when they parse "
                               "as one")

    sub.add_parser("schemes",
                   help="list registered allocation schemes and their "
                        "capability flags")
    sub.add_parser("scenarios",
                   help="list registered scenario generators")

    workspace = sub.add_parser(
        "workspace", help="inspect or garbage-collect a managed workspace")
    workspace.add_argument("action", choices=("list", "inspect", "gc"),
                           help="list runs and cached scenarios, inspect "
                                "one run's artifacts, or remove cached "
                                "scenarios no live checkpoint references")
    workspace.add_argument("name", nargs="?", default=None,
                           help="run name to inspect (inspect only)")
    workspace.add_argument("--workspace", metavar="DIR", default=None,
                           help="workspace directory (default: the "
                                "REPRO_WORKSPACE environment variable)")
    workspace.add_argument("--dry-run", action="store_true",
                           help="gc only: report what would be removed "
                                "without deleting anything")

    serve = sub.add_parser(
        "serve", help="run the HTTP job service over a workspace "
                      "(see repro.serve)")
    serve.add_argument("--workspace", metavar="DIR", default=None,
                       help="workspace holding job records and artifacts "
                            "(default: the REPRO_WORKSPACE environment "
                            "variable)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default 8765; 0 picks a free port)")
    serve.add_argument("--job-workers", type=int, default=2, metavar="N",
                       help="concurrent jobs (default 2; each job also "
                            "parallelises internally via its spec's "
                            "'jobs' field)")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warning", "error"),
                       help="stderr log level (default info)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running `repro serve` instance")
    submit.add_argument("job_command", metavar="COMMAND",
                        help="what to run: fig4b, fig4c, fig6a, fig6b, "
                             "fig6c, fig3, or simulate")
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL "
                             "(default http://127.0.0.1:8765)")
    submit.add_argument("--runs", type=int, default=10,
                        help="Monte-Carlo replications per point (default 10)")
    submit.add_argument("--gops", type=int, default=3,
                        help="GOP windows per run (default 3)")
    submit.add_argument("--seed", type=int, default=7,
                        help="root RNG seed (default 7)")
    submit.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes inside the job (default 1; "
                             "results are bit-identical at any N)")
    submit.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SEC", help="per-cell deadline for the job")
    submit.add_argument("--deadline", type=float, default=None, metavar="SEC",
                        help="whole-job wall-clock deadline")
    submit.add_argument("--scenario", default=None,
                        help="scenario generator (simulate only)")
    submit.add_argument("--scheme", default=None,
                        help="allocation scheme (simulate only)")
    submit.add_argument("--scenario-arg", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="extra generator parameter, repeatable "
                             "(simulate only)")
    submit.add_argument("--job-trace", action="store_true",
                        help="have the job record a span trace (fetch it "
                             "from /api/jobs/<id>/trace)")
    submit.add_argument("--force", action="store_true",
                        help="queue even when an equivalent job exists "
                             "(bypass dedup-by-spec-hash)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and exit with "
                             "its exit code")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        metavar="SEC",
                        help="--wait: give up after SEC seconds "
                             "(default 3600)")
    submit.add_argument("--output", metavar="FILE", default=None,
                        help="--wait: also fetch the result and write its "
                             "exact bytes to FILE")

    compare = sub.add_parser(
        "compare", help="diff two saved result files: bit-identity "
                        "verdict, provenance check, per-scheme PSNR deltas")
    compare.add_argument("result_a", metavar="A", help="baseline result file")
    compare.add_argument("result_b", metavar="B", help="candidate result file")
    compare.add_argument("--json", action="store_true", dest="as_json",
                         help="print the report as JSON instead of text")
    compare.add_argument("--fail-on-diff", action="store_true",
                         help="exit 1 unless the files are byte-identical")
    return parser


def _heading(text: str) -> str:
    line = "=" * 72
    return f"{line}\n{text}\n{line}"


def _maybe_chart(result, args, *, upper_bound: bool = False) -> List[str]:
    if not getattr(args, "chart", False):
        return []
    from repro.experiments.plotting import chart_sweep
    return ["", chart_sweep(result, include_upper_bound=upper_bound)]


def _maybe_save(result, args, command: Optional[str] = None) -> List[str]:
    output = getattr(args, "output", None)
    if not output:
        return []
    command = command or getattr(args, "command", "")
    from repro.experiments.results_io import save_results
    path = save_results(
        result, output,
        provenance=obs.result_provenance(
            seed=getattr(args, "seed", None),
            config=_base_config(args, command=command)))
    lines = [f"[saved to {path}]"]
    # The full manifest carries wall clock and platform details, so it
    # goes in a sidecar: the results file itself stays byte-identical
    # across identical runs.
    manifest_path = f"{path}.manifest.json"
    obs.write_manifest(manifest_path, _make_manifest(args, command=command))
    lines.append(f"[manifest at {manifest_path}]")
    workspace = getattr(args, "_workspace", None)
    if workspace is not None:
        run_name = getattr(args, "run_name", None) or command
        workspace.register_run(run_name, results=[str(path)],
                               manifest=manifest_path)
        lines.append(f"[registered run {run_name!r} in {workspace.root}]")
    return lines


def _apply_workspace(args) -> None:
    """Activate ``--workspace`` and default-fill the artifact paths.

    For single-figure commands, an unset ``--output`` lands in the
    workspace's ``results/`` directory; for sweep figures, an unset
    ``--checkpoint`` lands in ``checkpoints/`` (so every workspace run
    is resumable by default).  ``all`` runs several figures against one
    ``args`` namespace, so it only gets the scenario cache and run
    registration, not path defaults.
    """
    root = getattr(args, "workspace", None)
    if root is None:
        args._workspace = None
        return
    from repro.store.scenario_store import activate_workspace
    workspace = activate_workspace(root)
    args._workspace = workspace
    command = args.command
    stem = getattr(args, "run_name", None) or command
    if command in FIGURES and getattr(args, "output", None) is None:
        args.output = str(workspace.results_path(f"{stem}.json"))
    if command in SWEEP_FIGURES and getattr(args, "checkpoint", None) is None:
        args.checkpoint = str(workspace.checkpoint_path(f"{stem}.jsonl"))


def _coerce_scenario_value(text: str):
    """``--scenario-arg`` value coercion: int, float, bool, else str."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _scenario_params(args) -> dict:
    """Parsed ``--scenario-arg KEY=VALUE`` pairs as generator kwargs."""
    params = {}
    for item in getattr(args, "scenario_arg", []) or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro: --scenario-arg expects KEY=VALUE, got {item!r}")
        params[key.replace("-", "_")] = _coerce_scenario_value(value)
    return params


def _base_config(args, command: Optional[str] = None):
    """The command's base scenario config (for the manifest fingerprint)."""
    if command is None:
        command = getattr(args, "command", "")
    kwargs = {"seed": getattr(args, "seed", None)}
    if getattr(args, "gops", None) is not None:
        kwargs["n_gops"] = args.gops
    if getattr(args, "scheme", None) is not None:
        kwargs["scheme"] = args.scheme
    scenario = getattr(args, "scenario", None)
    if scenario is not None:
        return scenario_registry().build(scenario, **kwargs,
                                         **_scenario_params(args))
    builder = (interfering_fbs_scenario if command.startswith("fig6")
               else single_fbs_scenario)
    return builder(**kwargs)


def _make_manifest(args, command: Optional[str] = None) -> dict:
    command = command or getattr(args, "command", "")
    return obs.run_manifest(
        command=command,
        config=_base_config(args, command=command),
        seed=getattr(args, "seed", None),
        extra={"jobs": getattr(args, "jobs", 1),
               "runs": getattr(args, "runs", None)})


def _health_lines(result) -> List[str]:
    """Fault-tolerance footer of a sweep: failed runs + degraded slots."""
    n_failed = getattr(result, "n_failed", 0)
    n_degraded = sum(summary.n_degraded_slots
                     for summaries in result.summaries.values()
                     for summary in summaries)
    lines = []
    if n_failed:
        lines.append(f"[warning: {n_failed} replication(s) failed after "
                     f"retry and were excluded from the summaries]")
    if n_degraded:
        lines.append(f"[note: {n_degraded} slot(s) completed via a "
                     f"degraded path (solver fallback / sensing outage)]")
    return lines


def _make_tracker(args, name: str):
    """A ProgressTracker when --progress or --profile was given, else None.

    ``--progress`` narrates per-cell lines to stderr; ``--profile`` alone
    collects telemetry silently and only prints the final report.
    """
    progress = getattr(args, "progress", False)
    if not progress and not getattr(args, "profile", False):
        return None
    from repro.exec.progress import ProgressTracker
    return ProgressTracker(stream=sys.stderr if progress else None, label=name)


def _timing_lines(tracker) -> List[str]:
    """End-of-run timing report lines (empty without --progress)."""
    if tracker is None:
        return []
    return ["", _heading("Timing report"), tracker.report().format()]


def _run_figure(name: str, args) -> Tuple[str, int]:
    """One figure command's report text plus its failed-replication count."""
    jobs = getattr(args, "jobs", 1)
    budgets = {"cell_timeout": getattr(args, "cell_timeout", None),
               "deadline": getattr(args, "deadline", None)}
    workspace = getattr(args, "_workspace", None)
    run_name = getattr(args, "run_name", None) or name
    if name == "fig3":
        rows = run_fig3(n_runs=args.runs, n_gops=args.gops, seed=args.seed,
                        jobs=jobs, workspace=workspace, **budgets)
        return "\n".join(_maybe_save(rows, args, command=name) + [
            _heading("Fig. 3: per-user Y-PSNR (dB), single FBS"),
            format_fig3(rows),
            f"max per-user gain of proposed over a heuristic: "
            f"{max_improvement_db(rows):.2f} dB",
        ]), sum(row.n_failed for row in rows)
    checkpoint = getattr(args, "checkpoint", None)
    # Label progress lines with the run name (the job id under the
    # service), so a shared workspace's logs identify their job.
    tracker = _make_tracker(args, run_name)
    if name == "fig4b":
        result = run_fig4b(n_runs=args.runs, n_gops=args.gops, seed=args.seed,
                           checkpoint_path=checkpoint, jobs=jobs,
                           progress=tracker, workspace=workspace,
                           run_name=run_name, **budgets)
        return "\n".join(_maybe_save(result, args, command=name) + [
            _heading("Fig. 4(b): Y-PSNR (dB) vs number of channels M"),
            format_sweep(result, value_format="M={}"),
        ] + _health_lines(result) + _maybe_chart(result, args)
          + _timing_lines(tracker)), result.n_failed
    if name == "fig4c":
        result = run_fig4c(n_runs=args.runs, n_gops=args.gops, seed=args.seed,
                           checkpoint_path=checkpoint, jobs=jobs,
                           progress=tracker, workspace=workspace,
                           run_name=run_name, **budgets)
        return "\n".join(_maybe_save(result, args, command=name) + [
            _heading("Fig. 4(c): Y-PSNR (dB) vs channel utilisation eta"),
            format_sweep(result, value_format="eta={}"),
        ] + _health_lines(result) + _maybe_chart(result, args)
          + _timing_lines(tracker)), result.n_failed
    if name == "fig6a":
        result = run_fig6a(n_runs=args.runs, n_gops=args.gops, seed=args.seed,
                           checkpoint_path=checkpoint, jobs=jobs,
                           progress=tracker, workspace=workspace,
                           run_name=run_name, **budgets)
        return "\n".join(_maybe_save(result, args, command=name) + [
            _heading("Fig. 6(a): Y-PSNR (dB) vs utilisation, interfering FBSs"),
            format_sweep(result, upper_bound=True, value_format="eta={}"),
        ] + _health_lines(result) + _maybe_chart(result, args, upper_bound=True)
          + _timing_lines(tracker)), result.n_failed
    if name == "fig6b":
        result = run_fig6b(n_runs=args.runs, n_gops=args.gops, seed=args.seed,
                           checkpoint_path=checkpoint, jobs=jobs,
                           progress=tracker, workspace=workspace,
                           run_name=run_name, **budgets)
        return "\n".join(_maybe_save(result, args, command=name) + [
            _heading("Fig. 6(b): Y-PSNR (dB) vs sensing errors (eps, delta)"),
            format_sweep(result, upper_bound=True, value_format="{0[0]}/{0[1]}"),
        ] + _health_lines(result) + _maybe_chart(result, args, upper_bound=True)
          + _timing_lines(tracker)), result.n_failed
    if name == "fig6c":
        result = run_fig6c(n_runs=args.runs, n_gops=args.gops, seed=args.seed,
                           checkpoint_path=checkpoint, jobs=jobs,
                           progress=tracker, workspace=workspace,
                           run_name=run_name, **budgets)
        return "\n".join(_maybe_save(result, args, command=name) + [
            _heading("Fig. 6(c): Y-PSNR (dB) vs common-channel bandwidth B0"),
            format_sweep(result, upper_bound=True, value_format="B0={}"),
        ] + _health_lines(result) + _maybe_chart(result, args, upper_bound=True)
          + _timing_lines(tracker)), result.n_failed
    raise ValueError(f"unknown figure {name!r}")


def _run_simulate(args) -> Tuple[str, int]:
    config = scenario_registry().build(
        args.scenario, n_gops=args.gops, seed=args.seed, scheme=args.scheme,
        **_scenario_params(args))
    summary = MonteCarloRunner(
        config, n_runs=args.runs, jobs=getattr(args, "jobs", 1),
        cell_timeout=getattr(args, "cell_timeout", None),
        deadline=getattr(args, "deadline", None),
        workspace=getattr(args, "_workspace", None)).summary()
    lines = [_heading(f"{args.scenario} scenario, scheme={args.scheme}")]
    for user_id, ci in sorted(summary.per_user_psnr.items()):
        lines.append(f"user {user_id}: {ci}")
    lines.append(f"mean PSNR      : {summary.mean_psnr}")
    lines.append(f"Jain fairness  : {summary.fairness}")
    lines.append(f"collision rate : {summary.mean_collision_rate} "
                 f"(cap gamma = {config.gamma})")
    lines.append(f"failed runs    : {summary.n_failed} of {args.runs} "
                 f"(excluded from the statistics)")
    lines.append(f"degraded slots : {summary.n_degraded_slots} "
                 f"(solver fallbacks / sensing outages)")
    interfering = config.topology.interference_graph.number_of_edges() > 0
    if scheme_registry().get(args.scheme).greedy_channels and interfering:
        lines.append(f"eq. (23) bound : {summary.upper_bound_psnr}")
    if getattr(args, "profile", False) and summary.phase_seconds:
        lines.append("phase seconds  : "
                     + obs.format_phase_seconds(summary.phase_seconds))
    return "\n".join(lines), summary.n_failed


def _run_workspace(args) -> int:
    """The ``repro workspace list|inspect|gc`` subcommand."""
    import json
    import os

    from repro.store.scenario_store import ENV_WORKSPACE
    from repro.store.workspace import FileWorkspace
    from repro.utils.errors import ConfigurationError

    root = getattr(args, "workspace", None) or os.environ.get(ENV_WORKSPACE)
    if not root:
        print("workspace: no directory given "
              "(use --workspace DIR or set REPRO_WORKSPACE)", file=sys.stderr)
        return 2
    workspace = FileWorkspace(root)
    if args.action == "list":
        print(f"workspace at {workspace.root}")
        refs = workspace.scenario_refs()
        print(f"cached scenarios: {len(refs)}")
        entries = workspace.entries()
        print(f"registered runs: {len(entries)}")
        for name in sorted(entries):
            entry = entries[name]
            parts = [f"{len(entry.get('results', []))} result(s)",
                     f"{len(entry.get('scenario_hashes', []))} scenario(s)"]
            checkpoint = entry.get("checkpoint")
            if checkpoint:
                parts.append(f"checkpoint={checkpoint}")
            print(f"  {name}: " + ", ".join(parts))
        return 0
    if args.action == "inspect":
        if not args.name:
            print("workspace inspect: run name required", file=sys.stderr)
            return 2
        try:
            report = workspace.inspect(args.name)
        except ConfigurationError as exc:
            print(f"workspace inspect: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    report = workspace.gc(dry_run=getattr(args, "dry_run", False))
    verb = "would remove" if report["dry_run"] else "removed"
    print(f"{verb} {len(report['removed_scenarios'])} cached scenario(s), "
          f"kept {len(report['kept_scenarios'])} "
          f"(live checkpoints), pruned {len(report['pruned_runs'])} "
          f"stale run entr{'y' if len(report['pruned_runs']) == 1 else 'ies'}")
    for ref in report["removed_scenarios"]:
        print(f"  - {ref}")
    return 0


def _run_serve(args) -> int:
    """The ``repro serve`` subcommand: run the HTTP job service."""
    import os

    from repro.serve.api import make_server, serve_forever
    from repro.store.scenario_store import ENV_WORKSPACE

    root = getattr(args, "workspace", None) or os.environ.get(ENV_WORKSPACE)
    if not root:
        print("serve: no workspace given "
              "(use --workspace DIR or set REPRO_WORKSPACE)", file=sys.stderr)
        return 2
    server = make_server(root, host=args.host, port=args.port,
                         job_workers=args.job_workers)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (workspace {root}); "
          f"Ctrl-C to drain and stop")
    serve_forever(server)
    return 0


def _run_submit(args) -> int:
    """The ``repro submit`` subcommand: queue a job over HTTP."""
    from repro.serve.client import ServiceClient, ServiceError

    spec = {"command": args.job_command, "runs": args.runs,
            "gops": args.gops, "seed": args.seed, "jobs": args.jobs,
            "cell_timeout": args.cell_timeout, "deadline": args.deadline,
            "trace": bool(args.job_trace)}
    if args.scenario is not None:
        spec["scenario"] = args.scenario
    if args.scheme is not None:
        spec["scheme"] = args.scheme
    if args.scenario_arg:
        spec["scenario_args"] = {}
        for item in args.scenario_arg:
            key, sep, value = item.partition("=")
            if not sep or not key:
                print(f"submit: --scenario-arg expects KEY=VALUE, "
                      f"got {item!r}", file=sys.stderr)
                return 2
            spec["scenario_args"][key.replace("-", "_")] = \
                _coerce_scenario_value(value)
    client = ServiceClient(args.url)
    try:
        view = client.submit(spec, force=args.force)
        verb = "deduplicated to" if view.deduplicated else "queued as"
        print(f"[{verb} {view.id} ({view.state})]")
        if not args.wait:
            return 0
        view = client.wait(view.id, timeout=args.timeout)
        print(f"[{view.id} {view.state}"
              + (f": {view.error}" if view.error else "") + "]")
        if args.output and view.state == "succeeded":
            from pathlib import Path
            Path(args.output).write_bytes(client.result_bytes(view.id))
            print(f"[result written to {args.output}]")
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    if view.state == "succeeded":
        return 0
    # Surface the job's own exit code (the CLI contract) when recorded,
    # so `repro submit --wait` composes with the same CI assertions as a
    # direct run.
    return view.exit_code if isinstance(view.exit_code, int) \
        and view.exit_code != 0 else 1


def _run_compare(args) -> int:
    """The ``repro compare`` subcommand: diff two saved result files."""
    import json

    from repro.experiments.compare import compare_results
    from repro.utils.errors import ConfigurationError

    try:
        report = compare_results(args.result_a, args.result_b)
    except ConfigurationError as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(_heading("Result comparison"))
        print(report.format())
    if args.fail_on_diff and not report.bit_identical:
        return 1
    return 0


def _run_schemes() -> int:
    """The ``repro schemes`` listing."""
    registry = scheme_registry()
    print(_heading(f"registered allocation schemes ({len(registry)})"))
    width = max(len(name) for name in registry.names())
    for info in registry:
        flags = ", ".join(info.flags) or "-"
        print(f"{info.name:<{width}}  [{flags}]")
        if info.description:
            print(f"{'':<{width}}  {info.description}")
    return 0


def _run_scenarios() -> int:
    """The ``repro scenarios`` listing."""
    registry = scenario_registry()
    print(_heading(f"registered scenario generators ({len(registry)})"))
    width = max(len(name) for name in registry.names())
    for info in registry:
        print(f"{info.name:<{width}}  {info.description}")
    return 0


def _dispatch(args) -> int:
    """Run the parsed command (observability already configured)."""
    if args.command == "workspace":
        return _run_workspace(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "schemes":
        return _run_schemes()
    if args.command == "scenarios":
        return _run_scenarios()
    _apply_workspace(args)
    n_failed = 0
    if args.command == "fig4a":
        result = run_fig4a(seed=args.seed, step_size=args.step_size)
        for line in _maybe_save(result, args):
            print(line)
        print(_heading(
            f"Fig. 4(a): dual-variable convergence "
            f"(converged={result.converged} after {result.iterations} iters)"))
        print(format_convergence(result.trace, result.stations))
        return 0
    if args.command == "simulate":
        text, n_failed = _run_simulate(args)
        print(text)
        return _exit_code(args, n_failed)
    names = FIGURES if args.command == "all" else (args.command,)
    for name in names:
        if name == "fig4a":
            result = run_fig4a(seed=args.seed)
            print(_heading("Fig. 4(a): dual-variable convergence"))
            print(format_convergence(result.trace, result.stations))
        else:
            text, failures = _run_figure(name, args)
            n_failed += failures
            print(text)
        print()
    return _exit_code(args, n_failed)


def _exit_code(args, n_failed: int) -> int:
    """Map the failed-replication count onto the exit-code contract."""
    if getattr(args, "fail_on_error", False) and n_failed > 0:
        print(f"[--fail-on-error: {n_failed} replication(s) failed; "
              f"exiting {EXIT_FAILED_RUNS}]", file=sys.stderr)
        return EXIT_FAILED_RUNS
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code (see module docstring
    for the exit-code contract)."""
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    observing = bool(trace_path or metrics_path
                     or getattr(args, "log_level", None))
    if observing:
        obs.configure(trace_path=trace_path, metrics_path=metrics_path,
                      log_level=getattr(args, "log_level", None),
                      profile=getattr(args, "profile", False))
    coordinator = ShutdownCoordinator().install()
    if observing:
        # A hard abort still flushes the trace trailer and metrics dump.
        coordinator.add_flusher(obs.shutdown)
    try:
        with obs.maybe_span("run", kind="run", command=args.command):
            code = _dispatch(args)
    except SweepInterrupted as exc:
        print(f"[interrupted: {exc}]", file=sys.stderr)
        code = EXIT_INTERRUPTED
    except SweepDeadlineExceeded as exc:
        print(f"[deadline exceeded: {exc}]", file=sys.stderr)
        code = EXIT_DEADLINE
    finally:
        coordinator.uninstall()
        if observing:
            obs.shutdown()
            if trace_path is not None:
                obs.write_manifest(f"{trace_path}.manifest.json",
                                   _make_manifest(args))
    return code


if __name__ == "__main__":
    sys.exit(main())
