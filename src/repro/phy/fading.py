"""Block-fading distributions with closed-form SINR CDFs.

Section III-D assumes the received SINR ``X`` from base station ``i`` at
user ``j`` has density ``f_X^{i,j}`` and that packets decode iff
``X > H``; the loss probability is the CDF at the threshold,
``P^F_{i,j} = F_X^{i,j}(H)`` (eq. 8).  We provide the two standard
block-fading families used throughout the CR literature the paper cites:

* :class:`RayleighFading` -- SINR is exponential with the mean set by path
  loss; ``F(H) = 1 - exp(-H / mean)``.
* :class:`NakagamiFading` -- SINR is Gamma-distributed; generalises
  Rayleigh (``m = 1``) and approximates Rician for ``m > 1``.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np
from scipy import special as _special

from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomState, as_generator, batched_exponential
from repro.utils.validation import check_positive


class FadingModel(Protocol):
    """Interface every fading family implements."""

    def cdf(self, threshold: float) -> float:
        """``Pr{X <= threshold}`` -- the packet-loss probability of eq. (8)."""
        ...

    def sample(self, rng, size=None):
        """Draw SINR realisations."""
        ...


class RayleighFading:
    """Rayleigh block fading: SINR ~ Exponential(mean = ``mean_sinr``).

    Parameters
    ----------
    mean_sinr:
        Mean received SINR (linear scale, not dB).
    """

    def __init__(self, mean_sinr: float) -> None:
        self.mean_sinr = check_positive(mean_sinr, "mean_sinr")

    def cdf(self, threshold: float) -> float:
        """Closed-form CDF ``1 - exp(-H / mean)`` at ``threshold`` H."""
        threshold = check_positive(threshold, "threshold", allow_zero=True)
        return 1.0 - math.exp(-threshold / self.mean_sinr)

    def sample(self, rng: RandomState, size=None):
        """Sample instantaneous SINR values (one per slot, block fading)."""
        generator = as_generator(rng)
        return generator.exponential(self.mean_sinr, size=size)

    def __repr__(self) -> str:
        return f"RayleighFading(mean_sinr={self.mean_sinr:.4g})"


class NakagamiFading:
    """Nakagami-m block fading: SINR ~ Gamma(m, mean/m).

    ``m = 1`` reduces exactly to :class:`RayleighFading`; larger ``m``
    models less severe fading (line-of-sight femtocell links).

    Parameters
    ----------
    mean_sinr:
        Mean received SINR (linear).
    m:
        Nakagami shape parameter, ``m >= 0.5``.
    """

    def __init__(self, mean_sinr: float, m: float = 1.0) -> None:
        self.mean_sinr = check_positive(mean_sinr, "mean_sinr")
        if m < 0.5:
            raise ConfigurationError(f"Nakagami shape m must be >= 0.5, got {m}")
        self.m = float(m)

    def cdf(self, threshold: float) -> float:
        """Regularised lower incomplete gamma ``P(m, m H / mean)``."""
        threshold = check_positive(threshold, "threshold", allow_zero=True)
        return float(_special.gammainc(self.m, self.m * threshold / self.mean_sinr))

    def sample(self, rng: RandomState, size=None):
        """Sample instantaneous SINR values."""
        generator = as_generator(rng)
        return generator.gamma(self.m, self.mean_sinr / self.m, size=size)

    def __repr__(self) -> str:
        return f"NakagamiFading(mean_sinr={self.mean_sinr:.4g}, m={self.m})"


def draw_rayleigh_margins(rng: RandomState, mean_margins) -> np.ndarray:
    """Realise many links' block-fading decoding margins in one call.

    Under Rayleigh fading the decoding margin ``X / H`` of a link with
    mean margin ``mu`` is exponential with mean ``mu``; a link decodes
    iff its draw exceeds 1 (exactly the ``bar P^F = exp(-1/mu)``
    probability of eq. (8)).  This draws one margin per entry of
    ``mean_margins`` through
    :func:`~repro.utils.rng.batched_exponential`, so the values -- and
    the RNG state afterwards -- are bit-identical to drawing each link's
    margin with a scalar ``rng.exponential(mu)`` call in the same order.
    """
    margins = np.asarray(mean_margins, dtype=float)
    if margins.size and np.any(margins <= 0.0):
        raise ConfigurationError(
            f"mean margins must be positive, got min {margins.min()!r}")
    return batched_exponential(as_generator(rng), margins)


def decode_indicators(margins, threshold: float = 1.0) -> np.ndarray:
    """Vectorized delivery indicators ``xi = 1{margin > threshold}``.

    The batched counterpart of :meth:`BlockFadingLink.realize_slot`'s
    comparison: with block fading one comparison per link per slot
    realises every packet's fate on that link.
    """
    threshold = check_positive(threshold, "threshold", allow_zero=True)
    return (np.asarray(margins, dtype=float) > threshold).astype(np.int8)


class BlockFadingLink:
    """A base-station -> user link under block fading.

    Holds the fading model and decoding threshold, exposes the per-slot
    loss probability ``P^F`` (constant within a slot, Section IV-A), and
    realises the Bernoulli packet-delivery indicator ``xi`` used by the
    state recursion of problem (10).

    Parameters
    ----------
    fading:
        A fading model (Rayleigh/Nakagami or anything with ``cdf``/``sample``).
    threshold:
        Decoding SINR threshold ``H`` (linear).
    rng:
        Randomness for per-slot realisations.
    """

    def __init__(self, fading, threshold: float, *, rng: RandomState = None) -> None:
        self.fading = fading
        self.threshold = check_positive(threshold, "threshold")
        self._rng = as_generator(rng)

    @property
    def loss_probability(self) -> float:
        """``P^F = F_X(H)`` -- the block loss probability (eq. 8)."""
        return self.fading.cdf(self.threshold)

    @property
    def success_probability(self) -> float:
        """``1 - P^F`` -- the paper's ``bar P^F``."""
        return 1.0 - self.loss_probability

    def realize_slot(self) -> int:
        """Draw the slot's delivery indicator ``xi`` (1 = success).

        Because fading is constant over the slot, either every packet sent
        on the link in this slot decodes or none does; a single Bernoulli
        draw per slot is exact.
        """
        sinr = float(self.fading.sample(self._rng))
        return int(sinr > self.threshold)

    def __repr__(self) -> str:
        return (f"BlockFadingLink(fading={self.fading!r}, H={self.threshold:.4g}, "
                f"P_F={self.loss_probability:.4f})")
