"""Tests for the greedy channel allocation (Table III)."""

import numpy as np
import pytest

from repro.core.dual import fast_solve
from repro.core.greedy import GreedyChannelAllocator, exhaustive_channel_optimum
from repro.core.problem import SlotProblem
from repro.net.interference import interference_graph_from_edges, is_valid_allocation
from repro.utils.errors import ConfigurationError
from tests.conftest import make_problem, make_user


def chain_graph():
    return interference_graph_from_edges([1, 2, 3], [(1, 2), (2, 3)])


def chain_problem(seed=0, n_users_per_fbs=2):
    rng = np.random.default_rng(seed)
    users = []
    uid = 0
    for fbs_id in (1, 2, 3):
        for _ in range(n_users_per_fbs):
            users.append(make_user(
                uid, fbs_id=fbs_id,
                w_prev=26.0 + 8.0 * rng.random(),
                success_mbs=0.5 + 0.4 * rng.random(),
                success_fbs=0.6 + 0.4 * rng.random(),
                r_mbs=float(0.5 + rng.random()),
                r_fbs=float(0.5 + rng.random()),
            ))
            uid += 1
    return SlotProblem(users=users, expected_channels={1: 0.0, 2: 0.0, 3: 0.0})


class TestConstraints:
    def test_allocation_respects_interference_graph(self):
        graph = chain_graph()
        allocator = GreedyChannelAllocator(graph)
        problem = chain_problem()
        posteriors = {0: 0.9, 1: 0.8, 2: 0.7}
        result = allocator.allocate(problem, [0, 1, 2], posteriors)
        assert is_valid_allocation(graph, result.channel_allocation)

    def test_non_adjacent_fbss_share_channels(self):
        # FBS 1 and 3 are non-adjacent in the chain: with one very good
        # channel both should eventually hold it.
        allocator = GreedyChannelAllocator(chain_graph())
        problem = chain_problem(seed=1)
        result = allocator.allocate(problem, [0], {0: 0.95})
        alloc = result.channel_allocation
        assert 0 in alloc[1] and 0 in alloc[3]
        assert 0 not in alloc[2]

    def test_expected_channels_are_posterior_sums(self):
        allocator = GreedyChannelAllocator(chain_graph())
        problem = chain_problem(seed=2)
        posteriors = {0: 0.9, 1: 0.6}
        result = allocator.allocate(problem, [0, 1], posteriors)
        for fbs_id, channels in result.channel_allocation.items():
            expected = sum(posteriors[m] for m in channels)
            assert result.expected_channels[fbs_id] == pytest.approx(expected)

    def test_empty_access_set(self):
        allocator = GreedyChannelAllocator(chain_graph())
        problem = chain_problem(seed=3)
        result = allocator.allocate(problem, [], {})
        assert all(not channels for channels in result.channel_allocation.values())
        assert result.trace.q_final == pytest.approx(result.trace.q_empty)

    def test_missing_posterior_rejected(self):
        allocator = GreedyChannelAllocator(chain_graph())
        with pytest.raises(ConfigurationError):
            allocator.allocate(chain_problem(), [0], {})

    def test_fbs_missing_from_graph_rejected(self):
        graph = interference_graph_from_edges([1, 2], [(1, 2)])
        allocator = GreedyChannelAllocator(graph)
        with pytest.raises(ConfigurationError):
            allocator.allocate(chain_problem(), [0], {0: 0.9})


class TestTrace:
    def test_gains_telescoping(self):
        allocator = GreedyChannelAllocator(chain_graph())
        problem = chain_problem(seed=4)
        posteriors = {0: 0.9, 1: 0.7, 2: 0.5}
        result = allocator.allocate(problem, [0, 1, 2], posteriors)
        trace = result.trace
        assert trace.total_gain == pytest.approx(trace.q_final - trace.q_empty)
        assert all(step.gain >= 0.0 for step in trace.steps)

    def test_degrees_match_graph(self):
        graph = chain_graph()
        allocator = GreedyChannelAllocator(graph)
        result = allocator.allocate(chain_problem(seed=5), [0, 1], {0: 0.9, 1: 0.8})
        for step in result.trace.steps:
            assert step.degree == graph.degree(step.fbs_id)

    def test_conflict_gains_recorded_and_capped(self):
        allocator = GreedyChannelAllocator(chain_graph())
        result = allocator.allocate(chain_problem(seed=6), [0, 1], {0: 0.9, 1: 0.8})
        for step in result.trace.steps:
            assert step.conflict_gain_sum is not None
            assert step.conflict_gain_sum <= step.degree * step.gain + 1e-12


class TestScanReduction:
    def test_matches_exhaustive_scan(self):
        """The best-channel-per-FBS shortcut must match the literal scan."""
        problem = chain_problem(seed=7)
        posteriors = {0: 0.95, 1: 0.8, 2: 0.65, 3: 0.5}
        fast = GreedyChannelAllocator(chain_graph(), solver=fast_solve)
        literal = GreedyChannelAllocator(chain_graph(), solver=fast_solve,
                                         exhaustive_scan=True)
        a = fast.allocate(problem, [0, 1, 2, 3], posteriors)
        b = literal.allocate(problem, [0, 1, 2, 3], posteriors)
        assert a.channel_allocation == b.channel_allocation
        assert a.trace.q_final == pytest.approx(b.trace.q_final, abs=1e-9)
        assert a.evaluations <= b.evaluations


class TestNearOptimality:
    def test_within_theorem2_factor_of_channel_optimum(self):
        graph = chain_graph()
        rng = np.random.default_rng(15)
        for seed in range(5):
            problem = chain_problem(seed=seed, n_users_per_fbs=1)
            channels = [0, 1]
            posteriors = {m: float(0.4 + 0.6 * rng.random()) for m in channels}
            greedy = GreedyChannelAllocator(graph, solver=fast_solve).allocate(
                problem, channels, posteriors)
            _best, q_opt = exhaustive_channel_optimum(
                problem, channels, posteriors, graph, solver=fast_solve)
            factor = 1.0 / (1.0 + 2)  # D_max = 2 in the chain
            incremental_greedy = greedy.trace.q_final - greedy.trace.q_empty
            incremental_opt = q_opt - greedy.trace.q_empty
            assert incremental_greedy >= factor * incremental_opt - 1e-9
            assert greedy.trace.q_final <= q_opt + 1e-7

    def test_exhaustive_guard(self):
        graph = chain_graph()
        with pytest.raises(ConfigurationError):
            exhaustive_channel_optimum(
                chain_problem(), list(range(10)), {m: 0.5 for m in range(10)},
                graph, max_pairs=8)
