"""Solver hot-path acceleration: scalar oracle vs vectorized fast path.

Runs the interfering-FBS (fig6-style) scenario twice through the
Monte-Carlo runner -- once with every acceleration layer disabled
(``use_acceleration(False)`` + ``memoize_q=False``, i.e. the literal
pre-optimisation code path) and once with the defaults -- verifies the
two produce bit-identical per-run metrics, and records the speedup into
``BENCH_solver.json`` so the acceleration work keeps a measured
trajectory.

A second leg checks the warm-start mode (``warm_start=True``), which is
deliberately *not* bit-identical: seeding each slot's dual solve with the
previous slot's multipliers changes the iterate path, so the contract is
equal-or-better per-slot objectives, asserted here on a drifting sequence
of slot problems.
"""

import json
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.core.accel import use_acceleration
from repro.core.allocator import ProposedAllocator
from repro.core.dual import fast_solve
from repro.core.problem import SlotProblem, UserDemand
from repro.experiments.scenarios import interfering_fbs_scenario
from repro.sim.checkpoint import run_metrics_to_dict
from repro.sim.runner import MonteCarloRunner

#: Required engine-level speedup of the accelerated path (ISSUE 3).
MIN_SPEEDUP = 1.5

#: Where the speedup trajectory accumulates (uploaded by the CI job).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_solver.json"


def _fingerprint(runs):
    """Deterministic serialisation of a run list for bit-identity checks."""
    return json.dumps([run_metrics_to_dict(run) for run in runs],
                      sort_keys=True)


def _timed_runs(config):
    import time
    start = time.perf_counter()
    runs = MonteCarloRunner(config, n_runs=BENCH_RUNS).run_all()
    return runs, time.perf_counter() - start


def _drifting_problems(n_slots=40, n_users=6, n_fbss=2, seed=BENCH_SEED):
    """Slot problems whose expected-channel counts drift slowly over time.

    Mimics consecutive engine slots (same users, sensing-driven G drift),
    the regime the warm-start contract is written for.
    """
    import numpy as np
    rng = np.random.default_rng(seed)
    users = [
        UserDemand(
            user_id=j, fbs_id=1 + j % n_fbss,
            w_prev=26.0 + 8.0 * rng.random(),
            success_mbs=0.5 + 0.5 * rng.random(),
            success_fbs=0.5 + 0.5 * rng.random(),
            r_mbs=float(rng.random() * 2.0),
            r_fbs=float(rng.random() * 1.5))
        for j in range(n_users)
    ]
    g = {i: 2.0 + float(rng.random()) for i in range(1, n_fbss + 1)}
    problems = []
    for _ in range(n_slots):
        g = {i: min(4.0, max(0.1, v + float(rng.normal(0.0, 0.2))))
             for i, v in g.items()}
        problems.append(SlotProblem(users=users, expected_channels=dict(g)))
    return problems


def _record_trajectory(entry):
    history = []
    if BENCH_JSON.exists():
        try:
            history = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def test_bench_solver_acceleration(benchmark):
    config = interfering_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")

    def ab_comparison():
        with use_acceleration(False):
            base_runs, base_s = _timed_runs(replace(config, memoize_q=False))
        accel_runs, accel_s = _timed_runs(config)
        return base_runs, base_s, accel_runs, accel_s

    base_runs, base_s, accel_runs, accel_s = benchmark.pedantic(
        ab_comparison, rounds=1, iterations=1)
    identical = _fingerprint(base_runs) == _fingerprint(accel_runs)
    speedup = base_s / accel_s if accel_s > 0 else float("inf")

    _record_trajectory({
        "benchmark": "solver-acceleration",
        "scenario": "interfering",
        "runs": BENCH_RUNS,
        "gops": BENCH_GOPS,
        "seed": BENCH_SEED,
        "scalar_seconds": round(base_s, 3),
        "vectorized_seconds": round(accel_s, 3),
        "speedup": round(speedup, 3),
        "bit_identical": identical,
    })

    report("Solver acceleration: scalar oracle vs vectorized fast path", "\n".join([
        f"scenario         : interfering FBSs, proposed-fast, "
        f"{BENCH_RUNS} runs x {BENCH_GOPS} GOPs",
        f"scalar oracle    : {base_s:8.2f} s",
        f"vectorized       : {accel_s:8.2f} s",
        f"speedup          : {speedup:8.2f}x (required >= {MIN_SPEEDUP}x)",
        f"bit-identical    : {identical}",
        f"trajectory       : {BENCH_JSON.name}",
    ]))

    assert identical, (
        "accelerated path diverged from the scalar oracle -- the "
        "vectorized solver must be bit-identical with warm starts off")
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup from the vectorized path, "
        f"measured {speedup:.2f}x")


def test_bench_solver_warm_start(benchmark):
    problems = _drifting_problems()

    def warm_vs_cold():
        warm_allocator = ProposedAllocator(fast=True, warm_start=True)
        pairs = []
        for problem in problems:
            cold = fast_solve(problem)
            warm = warm_allocator.allocate(problem)
            pairs.append((cold.objective, warm.objective))
        return pairs

    pairs = benchmark.pedantic(warm_vs_cold, rounds=1, iterations=1)
    worse = [(cold, warm) for cold, warm in pairs if warm < cold - 1e-9]
    best_gain = max(warm - cold for cold, warm in pairs)

    report("Warm starts: per-slot objective vs cold solves", "\n".join([
        f"slots            : {len(pairs)} (drifting G, fixed users)",
        f"equal-or-better  : {len(pairs) - len(worse)}/{len(pairs)}",
        f"largest gain     : {best_gain:+.3e} (log-objective)",
    ]))

    assert not worse, (
        f"warm-started solves fell below the cold objective on "
        f"{len(worse)} slot(s); first: cold={worse[0][0]!r} warm={worse[0][1]!r}")
