"""Tests for the node layer."""

import pytest

from repro.net.nodes import CrUser, FemtoBaseStation, MacroBaseStation, distance
from repro.utils.errors import ConfigurationError


class TestDistance:
    def test_euclidean(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_zero(self):
        assert distance((1.0, 2.0), (1.0, 2.0)) == 0.0


class TestFemtoBaseStation:
    def test_coverage(self):
        fbs = FemtoBaseStation(fbs_id=1, position=(0.0, 0.0), coverage_radius_m=30.0)
        assert fbs.covers((29.0, 0.0))
        assert fbs.covers((30.0, 0.0))
        assert not fbs.covers((30.1, 0.0))

    def test_overlap_rule(self):
        # Disks of radius 30 overlap iff centres are closer than 60 m --
        # the Fig. 5 geometry (45 m adjacent, 90 m non-adjacent).
        a = FemtoBaseStation(1, (0.0, 0.0))
        b = FemtoBaseStation(2, (45.0, 0.0))
        c = FemtoBaseStation(3, (90.0, 0.0))
        assert a.overlaps(b)
        assert b.overlaps(c)
        assert not a.overlaps(c)

    def test_id_zero_reserved_for_mbs(self):
        with pytest.raises(ConfigurationError):
            FemtoBaseStation(0, (0.0, 0.0))

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            FemtoBaseStation(1, (0.0, 0.0), coverage_radius_m=0.0)

    def test_invalid_position(self):
        with pytest.raises(ConfigurationError):
            FemtoBaseStation(1, (float("nan"), 0.0))
        with pytest.raises(ConfigurationError):
            FemtoBaseStation(1, "not-a-point")


class TestCrUser:
    def test_unassociated_by_default(self):
        user = CrUser(user_id=0, position=(1.0, 2.0), sequence_name="bus")
        assert user.fbs_id is None

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            CrUser(user_id=-1, position=(0.0, 0.0), sequence_name="bus")


class TestMacroBaseStation:
    def test_defaults(self):
        mbs = MacroBaseStation()
        assert mbs.position == (0.0, 0.0)
        assert mbs.tx_power_dbm > 0
