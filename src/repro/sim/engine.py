"""The slotted simulation engine.

One :class:`SimulationEngine` instance simulates one scenario run.  Every
slot executes the paper's four phases:

1. **Sensing** -- each FBS senses all ``M`` licensed channels (it has
   ``M`` antennas, Section III-A); each CR user senses one channel,
   assigned round-robin and rotated every slot so all channels keep
   getting user observations.  All results are fused per channel with the
   Bayesian update of eqs. (2)-(4).
2. **Access decision** -- the collision-capped probabilistic policy of
   eqs. (5)-(7) yields the access set ``A(t)`` and the posteriors behind
   ``G_t``.
3. **Allocation** -- interfering deployments first run the channel
   allocation (Table III greedy for the proposed scheme, colour-partition
   for the heuristics); then the scheme's time-share allocator solves the
   slot problem.
4. **Transmission + ACK** -- block-fading Bernoulli deliveries realise the
   indicators ``xi`` and the PSNR recursion of problem (10) advances the
   per-user GOP clocks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.accel import acceleration_enabled
from repro.core.batch import drive, fast_solve_iter, fast_solve_warm_iter
from repro.core.bounds import GreedyTrace, tighter_upper_bound
from repro.core.greedy import GreedyChannelAllocator
from repro.core.problem import Allocation, SlotProblem, UserDemand
from repro.registry.schemes import scheme_registry
from repro.obs.metrics import PSNR_BUCKETS, global_registry, metrics_enabled
from repro.obs.trace import active_tracer
from repro.sensing.access import (
    AccessDecision,
    AccessPolicy,
    CollisionTracker,
    HardThresholdAccessPolicy,
)
from repro.phy.fading import draw_rayleigh_margins
from repro.sensing.belief import ChannelBeliefTracker
from repro.sensing.assignment import assign_sensors_round_robin
from repro.sensing.detector import (
    SensingResult,
    SpectrumSensor,
    sense_observations_batched,
)
from repro.sensing.fusion import fuse_posterior, fuse_posteriors_batched
from repro.sim.build import BuiltScenario, build_scenario
from repro.sim.channel_assignment import (
    color_partition_allocation,
    expected_channels_of,
)
from repro.sim.config import ScenarioConfig
from repro.sim.fallback import DegradationEvent, fallback_chain_for
from repro.sim.metrics import RunMetrics, compute_run_metrics
from repro.spectrum.channel import Spectrum
from repro.utils.errors import NumericalError
from repro.utils.rng import spawn_streams
from repro.video.gop import GopClock
from repro.video.sequences import get_sequence
from repro.video.traces import GopComplexityTrace


@dataclass
class SlotRecord:
    """Everything that happened in one simulated slot.

    Useful for examples, debugging, and white-box tests; the engine keeps
    only light aggregates unless asked to record slots.
    """

    slot: int
    occupancy: np.ndarray
    access: AccessDecision
    channel_allocation: Dict[int, Set[int]]
    problem: SlotProblem
    allocation: Allocation
    increments: Dict[int, float]
    greedy_trace: Optional[GreedyTrace] = None
    bound_gap: float = 0.0


class SimulationEngine:
    """Simulates one run of one scenario.

    Parameters
    ----------
    config:
        The scenario.
    record_slots:
        Keep a :class:`SlotRecord` per slot (memory-heavy for long runs).
    built:
        A pre-built :class:`~repro.sim.build.BuiltScenario` holding the
        per-scenario invariants (typically served by the
        :class:`~repro.store.scenario_store.ScenarioStore`).  ``None``
        builds one inline -- bit-identical either way, since
        :func:`~repro.sim.build.build_scenario` performs exactly the
        derivation this constructor used to inline.
    """

    def __init__(self, config: ScenarioConfig, *, record_slots: bool = False,
                 built: Optional[BuiltScenario] = None) -> None:
        self.config = config
        self.record_slots = bool(record_slots)
        self.records: List[SlotRecord] = []
        if built is None:
            built = build_scenario(config)

        streams = spawn_streams(
            config.seed, ["spectrum", "sensing", "access", "fading", "traces"])
        self._fading_rng = streams["fading"]

        self.spectrum = Spectrum(
            config.n_channels, config.channel_p01, config.p10,
            licensed_bandwidth_mbps=config.licensed_bandwidth_mbps,
            common_bandwidth_mbps=config.common_bandwidth_mbps,
            max_collision_probability=config.gamma,
            rng=streams["spectrum"],
        )
        policy_class = (HardThresholdAccessPolicy
                        if config.access_policy == "threshold" else AccessPolicy)
        self.access_policy = policy_class(
            np.full(config.n_channels, config.gamma), rng=streams["access"])
        self.collisions = CollisionTracker(config.n_channels)
        self.belief_tracker = (
            ChannelBeliefTracker(config.n_channels, config.p01, config.p10)
            if config.belief_tracking else None)

        topology = config.topology
        sensing_rng = streams["sensing"]
        self._user_sensors = {
            user.user_id: SpectrumSensor(
                config.false_alarm, config.miss_detection,
                sensor_id=user.user_id, rng=sensing_rng)
            for user in topology.users
        }
        # FBS sensor ids live above the user id space to stay unique.
        id_base = 1 + max(user.user_id for user in topology.users)
        self._fbs_sensors = {
            fbs.fbs_id: SpectrumSensor(
                config.false_alarm, config.miss_detection,
                sensor_id=id_base + fbs.fbs_id, rng=sensing_rng)
            for fbs in topology.fbss
        }
        # Every sensor shares this one stream; the batched backend draws
        # a whole slot's observations from it in one call.
        self._sensing_rng = sensing_rng

        # Per-scenario invariants come from the BuiltScenario: the
        # topology is static, so link margins, sensing layouts, demand
        # constants, and the FBS grid never change across slots -- or
        # across replications, which is why they are built once and
        # shared (see repro.sim.build).  The interleaved csi scale
        # vector -- (mbs_0, fbs_0, mbs_1, fbs_1, ...) in topology user
        # order -- lets one exponential array draw walk the fading
        # stream exactly like the scalar per-user loop.
        self._sorted_user_ids = list(built.sorted_user_ids)
        self._csi_user_ids = list(built.csi_user_ids)
        self._csi_scales = built.csi_scales
        self._etas = built.etas
        # The round-robin sensing layout repeats with period M; the
        # built artifact carries every offset's scatter precomputed
        # (lazily fillable for artifacts from older builds).
        self._sensing_layout: Dict[int, tuple] = dict(built.sensing_layouts)

        scheme_info = scheme_registry().get(config.scheme)
        self._greedy_channels = scheme_info.greedy_channels
        allocator_kwargs = (
            {"warm_start": True}
            if scheme_info.warm_startable and config.warm_start else {})
        self.allocator = scheme_info.create(**allocator_kwargs)
        # Solver fallback chain: the configured scheme first, degrading to
        # the fallback-eligible registered schemes (closed-form, cannot
        # fail to converge) when the primary solver misbehaves -- see
        # repro.sim.fallback for the validation and event semantics.
        self._fallback_chain = fallback_chain_for(config.scheme,
                                                  self.allocator)
        self.degradations: List[DegradationEvent] = []
        self._interfering = built.interfering
        self._fbs_ids = list(built.fbs_ids)
        self._greedy = (GreedyChannelAllocator(topology.interference_graph,
                                               memoize=config.memoize_q,
                                               warm_start=config.warm_start)
                        if self._interfering else None)
        # Warm-start store for the per-slot eq. (23) relaxation bound solve.
        self._relaxed_warm: Dict[int, float] = {}
        #: Cumulative wall-clock seconds per engine phase (profiling;
        #: excluded from serialized results -- timings are not
        #: deterministic, unlike everything else the engine emits).
        self.phase_seconds: Dict[str, float] = {
            "sensing": 0.0, "access": 0.0, "allocation": 0.0,
            "transmission": 0.0}

        # Demand constants are shared with the (possibly cached) built
        # artifact; copied per engine so nothing downstream can mutate
        # the cache.  GOP clocks are per-run mutable state and stay here.
        self.clocks: Dict[int, GopClock] = {}
        self._demands_static: Dict[int, dict] = {
            user_id: dict(static)
            for user_id, static in built.demands_static.items()
        }
        for user in topology.users:
            sequence = get_sequence(user.sequence_name)
            self.clocks[user.user_id] = GopClock(
                sequence, config.deadline_slots,
                quantum_db=self._nal_quantum(sequence, 1.0))
        # Per-GOP encoding-complexity traces (extension; constant 1.0
        # when rd_variability is 0, reproducing the paper's model).
        trace_rng = streams["traces"]
        self._rd_traces = {
            user.user_id: GopComplexityTrace(
                sigma=config.rd_variability, phi=config.rd_trace_phi,
                rng=trace_rng)
            for user in topology.users
        }
        self._rd_scale = {
            user_id: 1.0 / trace.complexity
            for user_id, trace in self._rd_traces.items()
        }
        self._slot = 0
        self._gop_bound_gap = 0.0
        self._bound_gaps_per_gop: List[float] = []

    @property
    def slot(self) -> int:
        """Number of slots simulated so far."""
        return self._slot

    def _mark_phase(self, phase: str, tick: float, tracer=None) -> float:
        """Charge the time since ``tick`` to ``phase``; return a new mark."""
        now = time.perf_counter()
        self.phase_seconds[phase] += now - tick
        if tracer is not None:
            tracer.emit_span(phase, kind="phase", seconds=now - tick,
                             slot=self._slot)
        return now

    def _nal_quantum(self, sequence, rd_scale: float) -> float:
        """Per-GOP quality quantum of one NAL unit (0 when disabled).

        One unit of ``nal_packet_bits`` is worth ``beta_eff * bits /
        (1e6 * gop_duration)`` dB, with the effective slope scaled by the
        GOP's complexity (see :mod:`repro.video.packets` for the
        packet-level counterpart of this arithmetic).
        """
        if not self.config.nal_quantized:
            return 0.0
        beta_eff = sequence.rd.beta_db_per_mbps * rd_scale
        return (beta_eff * self.config.nal_packet_bits
                / (1e6 * sequence.gop_duration_s))

    def build_slot_problem(self, expected_channels: Dict[int, float],
                           csi: Optional[Dict[int, tuple]] = None) -> SlotProblem:
        """Assemble the slot problem from the current PSNR states.

        Parameters
        ----------
        expected_channels:
            ``{fbs_id: G_i}`` for this slot.
        csi:
            Optional ``{user_id: (margin_mbs, margin_fbs)}`` realised
            block-fading margins; attached to the demands so heuristic
            schedulers can exploit instantaneous channel conditions.
        """
        users = []
        for user_id, static in self._demands_static.items():
            margins = csi.get(user_id) if csi else None
            clock = self.clocks[user_id]
            fields = dict(static)
            # A complexity-c GOP needs c times the rate per dB: scale the
            # effective slopes (the quality ceiling is invariant).
            scale = self._rd_scale[user_id]
            fields["r_mbs"] = fields["r_mbs"] * scale
            fields["r_fbs"] = fields["r_fbs"] * scale
            if clock.headroom_db <= 0.0:
                # The GOP is fully delivered: the base station has no more
                # enhancement bits to send this window, so the stream's
                # effective rate slope is zero for every scheduler.
                fields["r_mbs"] = 0.0
                fields["r_fbs"] = 0.0
            users.append(UserDemand(
                user_id=user_id,
                w_prev=clock.psnr_db,
                csi_mbs=margins[0] if margins else None,
                csi_fbs=margins[1] if margins else None,
                **fields,
            ))
        return SlotProblem(users=users, expected_channels=expected_channels)

    def _draw_csi(self) -> Dict[int, tuple]:
        """Realise this slot's block-fading margins for every link.

        Under Rayleigh fading the decoding margin ``X / H`` is exponential
        with the link's mean margin; a link decodes iff its draw exceeds 1,
        which happens with exactly the ``bar P^F`` probability the
        allocation problem uses.
        """
        topology = self.config.topology
        csi = {}
        for user in topology.users:
            csi[user.user_id] = (
                float(self._fading_rng.exponential(topology.mbs_margin[user.user_id])),
                float(self._fading_rng.exponential(topology.fbs_margin[user.user_id])),
            )
        return csi

    def _draw_csi_batched(self) -> Dict[int, tuple]:
        """Batched counterpart of :meth:`_draw_csi`.

        One exponential array draw over the hoisted interleaved scale
        vector consumes the fading stream exactly like the scalar
        per-user loop (see :func:`repro.utils.rng.batched_exponential`),
        so the margins -- and every draw after them -- are bit-identical.
        """
        draws = draw_rayleigh_margins(self._fading_rng, self._csi_scales)
        mbs_draws = draws[0::2]
        fbs_draws = draws[1::2]
        return {
            user_id: (float(mbs_draws[k]), float(fbs_draws[k]))
            for k, user_id in enumerate(self._csi_user_ids)
        }

    def _sense_fuse_scalar(self, occupancy: np.ndarray) -> np.ndarray:
        """Scalar sensing + fusion phase (the bit-exact oracle).

        This is the seed implementation kept verbatim: one
        :class:`SensingResult` per observation, fused channel by channel
        with eqs. (2)-(4).  The batched backend in
        :meth:`_sense_fuse_batched` is validated against it.
        """
        config = self.config
        fault_plan = config.fault_plan
        results_by_channel: Dict[int, List[SensingResult]] = {
            m: [] for m in range(config.n_channels)}
        for fbs_id, sensor in self._fbs_sensors.items():
            for m in range(config.n_channels):
                results_by_channel[m].append(sensor.sense(m, int(occupancy[m])))
        user_ids = sorted(self._user_sensors)
        user_assignment = assign_sensors_round_robin(
            user_ids, config.n_channels, offset=self._slot)
        for user_id, channel in user_assignment.items():
            sensor = self._user_sensors[user_id]
            results_by_channel[channel].append(
                sensor.sense(channel, int(occupancy[channel])))
        if config.single_observation_fusion:
            # A2 ablation: only the first result (the first FBS's own
            # antenna) reaches the fusion centre.
            results_by_channel = {m: results[:1]
                                  for m, results in results_by_channel.items()}
        if fault_plan is not None:
            # Injected sensing outage: the affected channels' observations
            # never reach the fusion centre, so fusion degrades to the
            # channel prior (eq. (2) with L=0).  The slot still completes;
            # the degradation is recorded rather than fatal.
            outage = fault_plan.sensing_outage(self._slot, config.n_channels)
            if outage:
                for m in outage:
                    results_by_channel[m] = []
                self.degradations.append(DegradationEvent(
                    slot=self._slot, cause="sensing-outage",
                    allocator="sensing", fallback="prior-only",
                    detail=("observations missing on channels "
                            f"{sorted(outage)}; fused from priors")))
        if self.belief_tracker is not None:
            self.belief_tracker.predict()
            posteriors = np.array([
                self.belief_tracker.fuse(m, results_by_channel[m])
                for m in range(config.n_channels)
            ])
        else:
            etas = self.spectrum.utilizations
            posteriors = np.array([
                fuse_posterior(etas[m], results_by_channel[m])
                for m in range(config.n_channels)
            ])
        return posteriors

    def _sense_fuse_batched(self, occupancy: np.ndarray) -> np.ndarray:
        """Batched sensing + fusion phase.

        Bit-exact, draw-for-draw replacement for
        :meth:`_sense_fuse_scalar`: one uniform array draw realises
        every observation (FBS antennas in insertion order over channels
        0..M-1, then users in sorted-id round-robin order, matching the
        scalar loops), and one vectorized fusion pass folds them per
        channel in the same observation order.  Asserted equivalent by
        ``tests/sensing/test_batched_equivalence.py`` and the engine
        differential suite.
        """
        config = self.config
        fault_plan = config.fault_plan
        n_channels = config.n_channels
        n_fbs = len(self._fbs_sensors)
        n_users = len(self._sorted_user_ids)
        offset = self._slot % n_channels
        layout = self._sensing_layout.get(offset)
        if layout is None:
            user_channels = (np.arange(n_users) + offset) % n_channels
            user_counts = np.bincount(user_channels, minlength=n_channels)
            # Group user observations by channel, preserving user order
            # within each channel (stable sort = the scalar append order).
            order = np.argsort(user_channels, kind="stable")
            sorted_channels = user_channels[order]
            starts = np.cumsum(user_counts) - user_counts
            positions = n_fbs + np.arange(n_users) - starts[sorted_channels]
            layout = (user_channels, user_counts, order,
                      sorted_channels, positions)
            self._sensing_layout[offset] = layout
        user_channels, user_counts, order, sorted_channels, positions = layout
        states = np.concatenate([
            np.tile(occupancy, n_fbs), occupancy[user_channels]])
        observations = sense_observations_batched(
            states, config.false_alarm, config.miss_detection,
            rng=self._sensing_rng)
        fbs_obs = observations[:n_fbs * n_channels].reshape(n_fbs, n_channels)
        user_obs = observations[n_fbs * n_channels:]
        if config.single_observation_fusion:
            # A2 ablation: only the first FBS's own antenna reaches the
            # fusion centre (user draws were still consumed above, as in
            # the scalar path).
            obs_matrix = np.ascontiguousarray(fbs_obs[:1].T)
            counts = np.full(n_channels, min(1, n_fbs), dtype=np.int64)
        else:
            width = n_fbs + (int(user_counts.max()) if n_users else 0)
            obs_matrix = np.zeros((n_channels, width), dtype=np.int8)
            obs_matrix[:, :n_fbs] = fbs_obs.T
            if n_users:
                obs_matrix[sorted_channels, positions] = user_obs[order]
            counts = n_fbs + user_counts
        if fault_plan is not None:
            outage = fault_plan.sensing_outage(self._slot, n_channels)
            if outage:
                counts = counts.copy()
                counts[list(outage)] = 0
                self.degradations.append(DegradationEvent(
                    slot=self._slot, cause="sensing-outage",
                    allocator="sensing", fallback="prior-only",
                    detail=("observations missing on channels "
                            f"{sorted(outage)}; fused from priors")))
        if self.belief_tracker is not None:
            self.belief_tracker.predict()
            return self.belief_tracker.fuse_batched(
                obs_matrix, counts, config.false_alarm, config.miss_detection)
        return fuse_posteriors_batched(
            self._etas, obs_matrix, counts,
            config.false_alarm, config.miss_detection)

    def step(self) -> SlotRecord:
        """Simulate one complete time slot and return its record.

        Raises
        ------
        NumericalError
            When a non-finite fading margin is drawn (or injected); the
            Monte-Carlo runner isolates this per replication.
        AllocationFailedError
            When every allocator in the fallback chain fails.
        """
        # Observability gate: with tracing off this is one global read
        # and a plain call into the slot body, so the disabled path adds
        # nothing measurable.  Phase/solver spans additionally require
        # collect_phases (the --profile contract).
        tracer = active_tracer()
        if tracer is None:
            return self._step(None)
        with tracer.span("slot", kind="slot", slot=self._slot):
            return self._step(tracer if tracer.collect_phases else None)

    def _step(self, tracer) -> SlotRecord:
        """The slot body; ``tracer`` (or None) receives phase spans."""
        return drive(self._step_iter(tracer))

    def _step_iter(self, tracer):
        """Generator form of the slot body (lockstep batching).

        Every dual solve of the allocation phase -- the greedy's Q(c)
        evaluations, the eq. (23) relaxation bound, the fallback chain's
        scheme solve -- is yielded as a
        :class:`~repro.core.batch.SolveRequest`; everything else
        (sensing, access, transmission) runs inline.  Driven either
        sequentially by :func:`~repro.core.batch.drive` (exact scalar
        execution) or in lockstep with sibling replications by
        :mod:`repro.sim.lockstep`.
        """
        config = self.config
        fault_plan = config.fault_plan
        if fault_plan is not None:
            # Chaos-harness hook: hang/slow injection is pure wall-clock
            # (no RNG stream is consumed), so supervised kills and
            # deadline tests see byte-identical results.
            delay_hook = getattr(fault_plan, "injected_delay", None)
            if delay_hook is not None:
                delay = delay_hook(self._slot)
                if delay > 0:
                    time.sleep(delay)
        accelerated = acceleration_enabled()
        observing = metrics_enabled()
        n_degraded_before = len(self.degradations) if observing else 0
        tick = time.perf_counter()
        state = self.spectrum.advance()

        # --- Sensing phase -------------------------------------------------
        if accelerated:
            posteriors = self._sense_fuse_batched(state.occupancy)
        else:
            posteriors = self._sense_fuse_scalar(state.occupancy)

        tick = self._mark_phase("sensing", tick, tracer)

        # --- Access decision ------------------------------------------------
        access = (self.access_policy.decide_batched(posteriors) if accelerated
                  else self.access_policy.decide(posteriors))
        self.collisions.record(access, state.occupancy)
        available = access.available_channels.tolist()
        posterior_map = {m: float(posteriors[m]) for m in range(config.n_channels)}
        if observing:
            registry = global_registry()
            accessed = access.decisions == 0
            n_accessed = int(accessed.sum())
            registry.counter("repro_access_decisions_total",
                             decision="access").inc(n_accessed)
            registry.counter("repro_access_decisions_total",
                             decision="deny").inc(
                                 access.decisions.size - n_accessed)
            registry.counter("repro_access_collisions_total").inc(
                int((accessed & (state.occupancy == 1)).sum()))
        tick = self._mark_phase("access", tick, tracer)

        # --- Channel + time-share allocation --------------------------------
        csi = self._draw_csi_batched() if accelerated else self._draw_csi()
        if fault_plan is not None and fault_plan.poisons_fading(self._slot):
            csi = {user_id: (float("nan"), float("nan")) for user_id in csi}
        for user_id, margins in csi.items():
            if not all(map(math.isfinite, margins)):
                # Fail fast and loud: a NaN margin would otherwise flow
                # silently through the PSNR recursion (NaN > 1.0 is just
                # False) and corrupt the run's metrics.
                raise NumericalError(
                    f"non-finite fading margin {margins} for user {user_id} "
                    f"at slot {self._slot}")
        fbs_ids = self._fbs_ids
        greedy_trace: Optional[GreedyTrace] = None
        bound_gap = 0.0
        if not self._interfering:
            # Full spatial reuse: every FBS may access all of A(t).
            g_all = access.expected_available
            channel_map = {i: set(available) for i in fbs_ids}
            expected = {i: g_all for i in fbs_ids}
            problem = self.build_slot_problem(expected, csi)
        elif self._greedy_channels:
            problem = self.build_slot_problem({i: 0.0 for i in fbs_ids}, csi)
            # The time-share allocation at the final c is recomputed by
            # the fallback chain below, so skip the greedy's own final
            # solve (final_solve=False) -- one fewer full solve per slot.
            greedy_result = yield from self._greedy.allocate_iter(
                problem, available, posterior_map, final_solve=False)
            channel_map = greedy_result.channel_allocation
            expected = greedy_result.expected_channels
            problem = problem.with_expected_channels(expected)
            greedy_trace = greedy_result.trace
            # Two valid upper bounds on the slot optimum Q(Omega): the
            # eq. (23) trace bound, and the interference-free relaxation
            # (Q is nondecreasing in every G_i, so granting all FBSs the
            # whole access set cannot be worse than any conflict-free
            # allocation).  Take the tighter of the two.
            relaxed_problem = problem.with_expected_channels(
                {i: access.expected_available for i in fbs_ids})
            if config.warm_start:
                relaxed = yield from fast_solve_warm_iter(
                    relaxed_problem, self._relaxed_warm)
            else:
                relaxed = yield from fast_solve_iter(relaxed_problem)
            bound_q = min(tighter_upper_bound(greedy_trace), relaxed.objective)
            bound_gap = max(0.0, bound_q - greedy_trace.q_final)
        else:
            channel_map = color_partition_allocation(
                config.topology.interference_graph, fbs_ids, available, posterior_map)
            expected = expected_channels_of(channel_map, posterior_map)
            problem = self.build_slot_problem(expected, csi)
        inject = (fault_plan is not None
                  and fault_plan.forces_nonconvergence(self._slot))
        allocation, degradations = yield from self._fallback_chain.allocate_iter(
            problem, slot=self._slot, inject_nonconvergence=inject)
        self.degradations.extend(degradations)
        tick = self._mark_phase("allocation", tick, tracer)

        # --- Transmission + ACK phase ---------------------------------------
        # Block fading: the margin drawn at slot start decides every packet
        # of this slot on that link (xi = 1 iff margin > 1).
        idle_truth = set(np.flatnonzero(state.occupancy == 0).tolist())
        increments: Dict[int, float] = {}
        for user in problem.users:
            margin_mbs, margin_fbs = csi[user.user_id]
            increment = 0.0
            if allocation.uses_mbs(user.user_id):
                rho = allocation.rho_mbs.get(user.user_id, 0.0)
                if rho > 0.0 and margin_mbs > 1.0:
                    increment = rho * user.r_mbs
            else:
                rho = allocation.rho_fbs.get(user.user_id, 0.0)
                if rho > 0.0:
                    if config.realized_throughput:
                        multiplier = float(len(
                            channel_map.get(user.fbs_id, set())
                            & set(available) & idle_truth))
                    else:
                        multiplier = problem.expected_channels[user.fbs_id]
                    if multiplier > 0.0 and margin_fbs > 1.0:
                        increment = rho * multiplier * user.r_fbs
            # The clock clamps at the GOP's enhancement ceiling; capacity
            # spent past it is wasted (the winner-take-all baseline pays
            # this cost the most).
            increments[user.user_id] = self.clocks[user.user_id].add_quality(increment)

        self._gop_bound_gap += bound_gap
        gop_elapsed = False
        for clock in self.clocks.values():
            gop_elapsed = clock.tick() or gop_elapsed
        if gop_elapsed:
            self._bound_gaps_per_gop.append(self._gop_bound_gap)
            self._gop_bound_gap = 0.0
            for user_id, trace in self._rd_traces.items():
                self._rd_scale[user_id] = 1.0 / trace.advance()
                clock = self.clocks[user_id]
                clock.quantum_db = self._nal_quantum(
                    clock.sequence, self._rd_scale[user_id])

        self._mark_phase("transmission", tick, tracer)
        if observing:
            # One funnel for every degradation recorded this slot --
            # fallback-chain events and the engine's own sensing-outage
            # events both land in self.degradations.
            registry = global_registry()
            for event in self.degradations[n_degraded_before:]:
                registry.counter("repro_degradations_total",
                                 cause=event.cause).inc()
        self._slot += 1
        record = SlotRecord(
            slot=self._slot,
            occupancy=state.occupancy,
            access=access,
            channel_allocation=channel_map,
            problem=problem,
            allocation=allocation,
            increments=increments,
            greedy_trace=greedy_trace,
            bound_gap=bound_gap,
        )
        if self.record_slots:
            self.records.append(record)
        return record

    def run(self) -> RunMetrics:
        """Simulate the configured horizon and return aggregate metrics."""
        for _ in range(self.config.n_slots):
            self.step()
        return self.collect_metrics()

    def collect_metrics(self) -> RunMetrics:
        """Aggregate the simulated slots into :class:`RunMetrics`.

        Split out of :meth:`run` so the lockstep driver (which advances
        slots itself) performs the exact aggregation -- including the
        metrics-registry block -- a plain ``run()`` call would.
        """
        metrics = compute_run_metrics(
            clocks=self.clocks,
            collision_rates=self.collisions.collision_rates(),
            bound_gaps_per_gop=self._bound_gaps_per_gop,
            degradation_events=self.degradations,
            phase_seconds=self.phase_seconds,
        )
        if metrics_enabled():
            registry = global_registry()
            registry.counter("repro_slots_total").inc(self._slot)
            for user_id, psnr in metrics.per_user_psnr.items():
                registry.histogram("repro_user_psnr_db",
                                   buckets=PSNR_BUCKETS,
                                   user=str(user_id)).observe(psnr)
        return metrics
