"""Interference-graph construction (Definition 1, Figs. 2 and 5).

Vertices are FBSs; an edge joins two FBSs whose coverage areas overlap,
meaning they may not use the same licensed channel simultaneously
(Lemma 4).  The graph drives both the greedy channel allocation
(Table III) and the performance bounds (Theorem 2 uses its maximum
degree).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

import networkx as nx

from repro.net.nodes import FemtoBaseStation
from repro.utils.errors import ConfigurationError


def build_interference_graph(fbss: Sequence[FemtoBaseStation]) -> nx.Graph:
    """Build the interference graph from FBS coverage geometry.

    Nodes are ``fbs_id`` values; an edge ``(i, j)`` exists iff the coverage
    disks of FBS ``i`` and FBS ``j`` overlap.
    """
    ids = [fbs.fbs_id for fbs in fbss]
    if len(set(ids)) != len(ids):
        raise ConfigurationError(f"duplicate fbs_id values in {ids}")
    graph = nx.Graph()
    graph.add_nodes_from(ids)
    for a_index, fbs_a in enumerate(fbss):
        for fbs_b in fbss[a_index + 1:]:
            if fbs_a.overlaps(fbs_b):
                graph.add_edge(fbs_a.fbs_id, fbs_b.fbs_id)
    return graph


def interference_graph_from_edges(fbs_ids: Iterable[int],
                                  edges: Iterable[Tuple[int, int]]) -> nx.Graph:
    """Build an interference graph directly from an edge list.

    Used to reproduce the paper's stated topologies exactly: Fig. 2 (four
    FBSs, single edge 3-4) and Fig. 5 (chain 1-2-3).
    """
    graph = nx.Graph()
    graph.add_nodes_from(fbs_ids)
    for i, j in edges:
        if i == j:
            raise ConfigurationError(f"self-interference edge ({i}, {j}) is invalid")
        if i not in graph or j not in graph:
            raise ConfigurationError(
                f"edge ({i}, {j}) references an FBS not in {sorted(graph.nodes)}")
        graph.add_edge(i, j)
    return graph


def neighbors(graph: nx.Graph, fbs_id: int) -> Set[int]:
    """The neighbour set ``R(i)`` of Lemma 4."""
    if fbs_id not in graph:
        raise ConfigurationError(f"FBS {fbs_id} is not a vertex of the graph")
    return set(graph.neighbors(fbs_id))


def max_degree(graph: nx.Graph) -> int:
    """``D_max`` -- the maximum node degree, used by Theorem 2.

    Zero for an empty or edgeless graph (the non-interfering case, where
    the greedy algorithm is optimal).
    """
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _node, degree in graph.degree())


def is_valid_allocation(graph: nx.Graph, allocation) -> bool:
    """Check the interference constraint of problem (21).

    ``allocation`` maps ``fbs_id -> set of channel indices``.  Valid iff no
    two adjacent FBSs share a channel.
    """
    for i, j in graph.edges:
        shared = set(allocation.get(i, ())) & set(allocation.get(j, ()))
        if shared:
            return False
    return True
