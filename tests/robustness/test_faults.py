"""Tests of the fault-injection harness itself plus the sensing-outage
and atomic-save degradation paths.

Acceptance path (d): an interrupted save leaves the previous results
file intact.
"""

import json
import os

import numpy as np
import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.results_io import load_results, save_results, \
    sweep_to_dict
from repro.sim import SimulationEngine, sweep
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.metrics import FailedRun
from repro.testing.faults import (
    CrashingCheckpoint,
    FaultPlan,
    InjectedCrash,
    corrupt_json_file,
    simulated_disk_full,
)
from repro.utils.errors import CheckpointError, ConfigurationError
from repro.utils.stats import ConfidenceInterval


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.forces_nonconvergence(0)
        assert not plan.poisons_fading(0)
        assert plan.sensing_outage(0, 8) == frozenset()

    def test_slot_scoping(self):
        plan = FaultPlan(nonconvergent_slots={3})
        assert plan.forces_nonconvergence(3)
        assert not plan.forces_nonconvergence(2)

    def test_run_scoping(self):
        plan = FaultPlan(nan_fading_slots={0}, poison_runs={2})
        plan.begin_run(0)
        assert not plan.poisons_fading(0)
        plan.begin_run(2)
        assert plan.poisons_fading(0)
        plan.begin_run(2, attempt=1)  # the retry is poisoned too
        assert plan.poisons_fading(0)

    def test_unannounced_run_matches_everything(self):
        # Engines used standalone never call begin_run.
        plan = FaultPlan(nan_fading_slots={0}, poison_runs={2})
        assert plan.poisons_fading(0)

    def test_outage_channel_scoping(self):
        plan = FaultPlan(sensing_outage_slots={1},
                         sensing_outage_channels={0, 2, 99})
        assert plan.sensing_outage(1, 4) == frozenset({0, 2})
        assert plan.sensing_outage(0, 4) == frozenset()
        assert FaultPlan(sensing_outage_slots={1}).sensing_outage(1, 3) == \
            frozenset({0, 1, 2})


class TestSensingOutage:
    def test_outage_degrades_gracefully(self, single_config):
        plan = FaultPlan(sensing_outage_slots={0, 4})
        engine = SimulationEngine(single_config.replace(fault_plan=plan))
        metrics = engine.run()
        outages = [e for e in metrics.degradation_events
                   if e.cause == "sensing-outage"]
        assert [e.slot for e in outages] == [0, 4]
        assert all(e.fallback == "prior-only" for e in outages)
        assert np.isfinite(metrics.mean_psnr)

    def test_total_blackout_still_completes(self, single_config):
        plan = FaultPlan(
            sensing_outage_slots=set(range(single_config.n_slots)))
        metrics = SimulationEngine(
            single_config.replace(fault_plan=plan)).run()
        assert sum(1 for e in metrics.degradation_events
                   if e.cause == "sensing-outage") == single_config.n_slots
        # Without observations the posteriors equal the priors; collisions
        # must still respect the cap the access policy enforces.
        assert np.isfinite(metrics.mean_psnr)

    def test_outage_interfering_scenario(self, interfering_config):
        plan = FaultPlan(sensing_outage_slots={0})
        metrics = SimulationEngine(
            interfering_config.replace(fault_plan=plan)).run()
        assert any(e.cause == "sensing-outage"
                   for e in metrics.degradation_events)


class TestCorruptJsonFile:
    def test_truncates_file(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"a": list(range(100))}))
        original = path.stat().st_size
        corrupt_json_file(path, keep_fraction=0.5)
        assert 0 < path.stat().st_size < original
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_rejects_bad_fraction(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            corrupt_json_file(path, keep_fraction=1.5)

    def test_corrupted_results_file_fails_loudly(self, single_config, tmp_path):
        rows = run_fig3(n_runs=1, n_gops=1, schemes=("heuristic1",
                                                     "proposed-fast"))
        path = tmp_path / "fig3.json"
        save_results(rows, path)
        corrupt_json_file(path, keep_fraction=0.6)
        with pytest.raises(json.JSONDecodeError):
            load_results(path)


class TestInterruptedSave:
    """Acceptance (d): a failed save never corrupts the previous file."""

    def _sweep_result(self, single_config):
        return sweep(single_config, "n_channels", [4], ["heuristic1"],
                     n_runs=1)

    def test_nonfinite_save_leaves_previous_file_intact(self, single_config,
                                                        tmp_path):
        result = self._sweep_result(single_config)
        path = tmp_path / "results.json"
        save_results(result, path)
        good = path.read_text()

        poisoned = self._sweep_result(single_config)
        summary = poisoned.summaries["heuristic1"][0]
        poisoned.summaries["heuristic1"][0] = type(summary)(
            mean_psnr=ConfidenceInterval(
                mean=float("nan"), half_width=0.0, confidence=0.95,
                n_samples=1),
            per_user_psnr=summary.per_user_psnr,
            upper_bound_psnr=summary.upper_bound_psnr,
            fairness=summary.fairness,
            mean_collision_rate=summary.mean_collision_rate,
        )
        with pytest.raises(ConfigurationError):
            save_results(poisoned, path)
        assert path.read_text() == good
        assert load_results(path).series("heuristic1")  # still loadable

    def test_crash_during_write_leaves_previous_file_intact(
            self, single_config, tmp_path, monkeypatch):
        result = self._sweep_result(single_config)
        path = tmp_path / "results.json"
        save_results(result, path)
        good = path.read_text()

        # Simulate the process dying mid-write: os.replace never runs.
        def interrupted(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(KeyboardInterrupt):
            save_results(result, path)
        assert path.read_text() == good

    def test_no_temp_debris_after_failure(self, single_config, tmp_path,
                                          monkeypatch):
        result = self._sweep_result(single_config)
        path = tmp_path / "results.json"

        def interrupted(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(OSError):
            save_results(result, path)
        assert list(tmp_path.iterdir()) == []


SWEEP_ARGS = ("n_channels", [4, 6], ["heuristic1", "heuristic2"])


def _run_sweep(config, **kwargs):
    return sweep(config, *SWEEP_ARGS, n_runs=2, **kwargs)


class TestCrashDuringCheckpointWrite:
    """A process dying inside ``write(2)`` leaves a torn final line; the
    loader must repair it and the resume must be byte-identical."""

    def test_torn_line_is_repaired_and_resume_is_byte_identical(
            self, single_config, tmp_path):
        config = single_config.replace(n_gops=1)
        reference = _run_sweep(config)

        path = tmp_path / "sweep.ckpt"
        crashing = CrashingCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=2, seed=config.seed,
            crash_after=3)
        with pytest.raises(InjectedCrash):
            _run_sweep(config, checkpoint_path=crashing)

        # The crash fsynced a torn prefix: no trailing newline, and the
        # final line is not parseable JSON.
        raw = path.read_bytes()
        assert not raw.endswith(b"\n")
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw.rsplit(b"\n", 1)[-1].decode())

        # Reopening repairs the file: the torn cell is dropped (it will
        # re-run), the three complete cells survive, and the file is
        # truncated back to whole lines so later appends stay valid.
        repaired = SweepCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=2, seed=config.seed)
        assert len(repaired) == 3
        assert path.read_bytes().endswith(b"\n")

        resumed = _run_sweep(config, checkpoint_path=path)
        assert json.dumps(sweep_to_dict(resumed), sort_keys=True) == \
            json.dumps(sweep_to_dict(reference), sort_keys=True)

    def test_crash_after_zero_tears_the_first_cell(self, single_config,
                                                   tmp_path):
        config = single_config.replace(n_gops=1)
        path = tmp_path / "sweep.ckpt"
        crashing = CrashingCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=2, seed=config.seed,
            crash_after=0)
        with pytest.raises(InjectedCrash):
            _run_sweep(config, checkpoint_path=crashing)
        repaired = SweepCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=2, seed=config.seed)
        assert len(repaired) == 0  # header survived, no cells


class TestSimulatedDiskFull:
    def test_checkpoint_append_fails_loudly(self, tmp_path):
        ckpt = SweepCheckpoint(
            tmp_path / "sweep.ckpt", parameter=SWEEP_ARGS[0],
            values=SWEEP_ARGS[1], schemes=SWEEP_ARGS[2], n_runs=2, seed=7)
        failed = FailedRun(run_index=0, error_type="NumericalError",
                           error="injected", attempts=2, seeds=(1, 2))
        with simulated_disk_full():
            with pytest.raises(CheckpointError, match="No space left"):
                ckpt.record(ckpt.cell_key("heuristic1", 0, 0), failed)
        # The volume recovered: the same record now persists, and the
        # failed append never half-wrote the in-memory view.
        ckpt.record(ckpt.cell_key("heuristic1", 0, 0), failed)
        assert len(ckpt) == 1

    def test_fail_after_budget_spends_successes_first(self, tmp_path):
        ckpt = SweepCheckpoint(
            tmp_path / "sweep.ckpt", parameter=SWEEP_ARGS[0],
            values=SWEEP_ARGS[1], schemes=SWEEP_ARGS[2], n_runs=2, seed=7)
        failed = FailedRun(run_index=0, error_type="NumericalError",
                           error="injected", attempts=2, seeds=(1, 2))
        with simulated_disk_full(fail_after=1):
            ckpt.record(ckpt.cell_key("heuristic1", 0, 0), failed)
            with pytest.raises(CheckpointError):
                ckpt.record(ckpt.cell_key("heuristic1", 0, 1), failed)
        assert os.fsync is not None  # the real fsync was restored

    def test_save_results_under_disk_full_keeps_previous_file(
            self, single_config, tmp_path):
        result = sweep(single_config, "n_channels", [4], ["heuristic1"],
                       n_runs=1)
        path = tmp_path / "results.json"
        save_results(result, path)
        good = path.read_text()

        with simulated_disk_full():
            with pytest.raises(OSError):
                save_results(result, path)
        assert path.read_text() == good
        assert [p.name for p in tmp_path.iterdir()] == ["results.json"]
