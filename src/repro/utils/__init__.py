"""Shared low-level utilities: validation, RNG handling, and statistics.

These helpers are deliberately free of any domain knowledge so that every
domain package (:mod:`repro.spectrum`, :mod:`repro.sensing`, ...) can rely
on them without creating import cycles.
"""

from repro.utils.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleProblemError,
    ReproError,
)
from repro.utils.rng import RandomState, as_generator, spawn_streams
from repro.utils.stats import (
    ConfidenceInterval,
    RunningMean,
    mean_confidence_interval,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_probability_array,
)

__all__ = [
    "ConfidenceInterval",
    "ConfigurationError",
    "ConvergenceError",
    "InfeasibleProblemError",
    "RandomState",
    "ReproError",
    "RunningMean",
    "as_generator",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_probability_array",
    "mean_confidence_interval",
    "spawn_streams",
]
