"""The build half of the build/run split: per-scenario invariants.

Every quantity the simulation engine derives from the *physical*
scenario alone -- per-link Rayleigh margin scales, stationary channel
utilisations, the round-robin sensing scatter layouts, the per-user R-D
demand constants, the FBS id grid -- is independent of scheme, seed,
replication index, and simulation horizon.  Historically each
:class:`~repro.sim.engine.SimulationEngine` recomputed all of it in its
constructor, once per replication; a 100-point sensitivity sweep with 10
replications and 3 schemes therefore rebuilt the same handful of
scenarios 3000 times.

:func:`build_scenario` performs that derivation once and packages it as
a :class:`BuiltScenario`, which the engine accepts pre-built (``built=``)
and the :class:`~repro.store.scenario_store.ScenarioStore` caches by
:func:`~repro.store.confighash.scenario_hash`.  The artifact is strictly
read-only at run time and fully JSON-serialisable
(:meth:`BuiltScenario.to_payload` / :meth:`BuiltScenario.from_payload`
round-trip bit-exactly), so a :class:`~repro.store.workspace.FileWorkspace`
can persist it across processes and sessions.

Bit-identity contract: an engine running from a ``BuiltScenario`` --
fresh, memory-cached, or loaded from disk -- produces byte-identical
results to one that derives everything itself.  Asserted by
``tests/store/test_store_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.config import ScenarioConfig
from repro.utils.errors import ConfigurationError
from repro.video.sequences import rd_slot_increment

#: Schema version of serialised built-scenario artifacts.
BUILD_FORMAT_VERSION = 1


@dataclass
class BuiltScenario:
    """Read-only per-scenario invariants shared by all of its runs.

    Attributes
    ----------
    scenario_hash:
        The :func:`~repro.store.confighash.scenario_hash` this artifact
        was built under (``None`` for artifacts built outside a store).
    csi_user_ids:
        User ids in topology order; the fading stream is consumed in
        this interleaved ``(mbs_0, fbs_0, mbs_1, fbs_1, ...)`` order.
    csi_scales:
        Interleaved mean decoding margins matching ``csi_user_ids``.
    etas:
        Per-channel stationary utilisations ``eta_m``.
    sorted_user_ids:
        User ids sorted ascending (the scalar sensing loop order).
    fbs_ids:
        Sorted FBS ids present in the demand grid.
    interfering:
        Whether the interference graph has any edge (selects the
        channel-allocation path).
    demands_static:
        ``{user_id: static demand fields}`` in topology user order --
        association, link success probabilities, and the per-slot R-D
        increment constants ``R = beta * B / T`` for both tiers.
    sensing_layouts:
        ``{offset: (user_channels, user_counts, order, sorted_channels,
        positions)}`` -- the batched sensing scatter for every
        round-robin offset ``0..M-1`` (the layout repeats with period
        ``M``).
    """

    scenario_hash: Optional[str] = None
    csi_user_ids: List[int] = field(default_factory=list)
    csi_scales: np.ndarray = field(default_factory=lambda: np.empty(0))
    etas: np.ndarray = field(default_factory=lambda: np.empty(0))
    sorted_user_ids: List[int] = field(default_factory=list)
    fbs_ids: List[int] = field(default_factory=list)
    interfering: bool = False
    demands_static: Dict[int, dict] = field(default_factory=dict)
    sensing_layouts: Dict[int, Tuple[np.ndarray, ...]] = field(
        default_factory=dict)

    def to_payload(self) -> dict:
        """JSON-compatible representation (floats round-trip exactly).

        ``json`` serialises Python floats with their shortest
        round-tripping ``repr``, so every value read back compares
        bit-equal to the original -- the property the store's
        byte-identity guarantee rests on.
        """
        return {
            "format_version": BUILD_FORMAT_VERSION,
            "scenario_hash": self.scenario_hash,
            "csi_user_ids": [int(uid) for uid in self.csi_user_ids],
            "csi_scales": [float(x) for x in self.csi_scales],
            "etas": [float(x) for x in self.etas],
            "sorted_user_ids": [int(uid) for uid in self.sorted_user_ids],
            "fbs_ids": [int(i) for i in self.fbs_ids],
            "interfering": bool(self.interfering),
            "demands_static": [
                [int(uid), {
                    "fbs_id": int(static["fbs_id"]),
                    "success_mbs": float(static["success_mbs"]),
                    "success_fbs": float(static["success_fbs"]),
                    "r_mbs": float(static["r_mbs"]),
                    "r_fbs": float(static["r_fbs"]),
                }]
                for uid, static in self.demands_static.items()
            ],
            "sensing_layouts": [
                [int(offset), [arr.tolist() for arr in layout]]
                for offset, layout in sorted(self.sensing_layouts.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BuiltScenario":
        """Reconstruct an artifact written by :meth:`to_payload`."""
        version = payload.get("format_version")
        if version != BUILD_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported built-scenario format version {version!r} "
                f"(this build reads {BUILD_FORMAT_VERSION})")
        return cls(
            scenario_hash=payload.get("scenario_hash"),
            csi_user_ids=[int(uid) for uid in payload["csi_user_ids"]],
            csi_scales=np.asarray(payload["csi_scales"], dtype=np.float64),
            etas=np.asarray(payload["etas"], dtype=np.float64),
            sorted_user_ids=[int(u) for u in payload["sorted_user_ids"]],
            fbs_ids=[int(i) for i in payload["fbs_ids"]],
            interfering=bool(payload["interfering"]),
            demands_static={
                int(uid): dict(static)
                for uid, static in payload["demands_static"]
            },
            sensing_layouts={
                int(offset): tuple(np.asarray(arr, dtype=np.int64)
                                   for arr in layout)
                for offset, layout in payload["sensing_layouts"]
            },
        )


def sensing_layout(n_users: int, n_fbs: int, n_channels: int,
                   offset: int) -> Tuple[np.ndarray, ...]:
    """The batched sensing scatter for one round-robin offset.

    Users (in sorted-id order) observe channel ``(index + offset) % M``;
    the layout groups their observations by channel while preserving
    user order within each channel (stable sort = the scalar loop's
    append order), and places them after the ``n_fbs`` FBS antenna
    observations of every channel.
    """
    user_channels = (np.arange(n_users) + offset) % n_channels
    user_counts = np.bincount(user_channels, minlength=n_channels)
    order = np.argsort(user_channels, kind="stable")
    sorted_channels = user_channels[order]
    starts = np.cumsum(user_counts) - user_counts
    positions = n_fbs + np.arange(n_users) - starts[sorted_channels]
    return (user_channels, user_counts, order, sorted_channels, positions)


def build_scenario(config: ScenarioConfig, *,
                   scenario_hash: Optional[str] = None) -> BuiltScenario:
    """Derive every per-scenario invariant the engine needs.

    Pure function of the config's topology and physical parameters
    (:data:`~repro.store.confighash.SCENARIO_BUILD_FIELDS`); scheme,
    seed, horizon, and ablation switches never enter, which is what
    lets one artifact serve a whole sweep grid.
    """
    topology = config.topology
    csi_user_ids = [user.user_id for user in topology.users]
    csi_scales = np.empty(2 * len(csi_user_ids))
    csi_scales[0::2] = [topology.mbs_margin[u] for u in csi_user_ids]
    csi_scales[1::2] = [topology.fbs_margin[u] for u in csi_user_ids]

    # Per-channel stationary utilisation; identical channels in the
    # paper's evaluation, but kept as an array to match the batched
    # fusion's consumption (and the Spectrum's per-channel shape).
    # Scenarios with heterogeneous occupancy supply the utilisations
    # directly (and the Spectrum derives each channel's p01 from them).
    if config.channel_utilizations is not None:
        etas = np.asarray(config.channel_utilizations, dtype=np.float64)
    else:
        eta = config.p01 / (config.p01 + config.p10)
        etas = np.full(config.n_channels, eta, dtype=np.float64)

    demands_static: Dict[int, dict] = {}
    for user in topology.users:
        demands_static[user.user_id] = {
            "fbs_id": user.fbs_id,
            "success_mbs": topology.mbs_success[user.user_id],
            "success_fbs": topology.fbs_success[user.user_id],
            "r_mbs": rd_slot_increment(
                user.sequence_name, config.common_bandwidth_mbps,
                config.deadline_slots),
            "r_fbs": rd_slot_increment(
                user.sequence_name, config.licensed_bandwidth_mbps,
                config.deadline_slots),
        }

    n_users = len(topology.users)
    n_fbs = len(topology.fbss)
    layouts = {
        offset: sensing_layout(n_users, n_fbs, config.n_channels, offset)
        for offset in range(config.n_channels)
    }

    return BuiltScenario(
        scenario_hash=scenario_hash,
        csi_user_ids=csi_user_ids,
        csi_scales=csi_scales,
        etas=etas,
        sorted_user_ids=sorted(csi_user_ids),
        fbs_ids=sorted({static["fbs_id"]
                        for static in demands_static.values()}),
        interfering=topology.interference_graph.number_of_edges() > 0,
        demands_static=demands_static,
        sensing_layouts=layouts,
    )
