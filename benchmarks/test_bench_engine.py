"""Engine acceleration: scalar PHY/sensing oracle vs batched backend.

Runs the interfering-FBS scenario through the Monte-Carlo runner twice
-- once with every acceleration layer disabled (the scalar seed path:
per-observation ``SpectrumSensor.sense`` calls, per-channel fusion,
per-link fading draws) and once with the default batched backend --
verifies the two produce bit-identical per-run metrics, and records
the end-to-end speedup plus a per-phase breakdown into
``BENCH_engine.json``.

Read alongside ``BENCH_solver.json``: the solver benchmark pins the
allocation phase, this one pins the whole simulation loop.  The
``use_acceleration`` switch is global -- the scalar leg here also runs
the scalar solver -- so the per-phase breakdown is what attributes the
win: ``sensing``/``access``/``transmission`` are the batched
PHY/sensing backend, ``allocation`` is the solver's share.
"""

import json
from pathlib import Path

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro import obs
from repro.core import caches
from repro.core.accel import use_acceleration
from repro.core.batch import use_batching
from repro.experiments.scenarios import interfering_fbs_scenario
from repro.sim.checkpoint import run_metrics_to_dict
from repro.sim.engine import SimulationEngine
from repro.sim.runner import MonteCarloRunner

#: Required end-to-end engine speedup of the batched backend (ISSUE 4).
MIN_SPEEDUP = 1.3

#: Required allocation-phase speedup of cross-replication lockstep
#: batching over the per-replication scalar driver.  Measures 2.0-2.2x
#: at BATCH_BENCH_RUNS on a quiet machine; the floor sits under the
#: noise band so shared CI runners don't flake, and the perf-gate job
#: holds the committed trajectory to the measured value instead.
MIN_BATCHED_ALLOC_SPEEDUP = 1.7

#: Campaign width for the lockstep-batching A/B.  The stacked kernel's
#: win grows with batch width, and replications issue *different* solve
#: counts (the greedy allocator's evaluation count is data-dependent),
#: so early-finishing members thin the later rounds -- a too-small
#: campaign measures mostly that tail.  Real campaigns run tens of
#: replications (EXPERIMENTS.md; MAX_BATCH is 32), so benching at
#: fewer than 10 would understate the production width.
BATCH_BENCH_RUNS = max(BENCH_RUNS, 10)

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Where the speedup trajectory accumulates (uploaded by the CI job).
BENCH_JSON = _REPO_ROOT / "BENCH_engine.json"

#: Telemetry artifacts of the tracing-overhead leg (uploaded by CI).
BENCH_TRACE = _REPO_ROOT / "BENCH_trace.jsonl"
BENCH_METRICS = _REPO_ROOT / "BENCH_metrics.prom"


def _fingerprint(runs):
    """Deterministic serialisation of a run list for bit-identity checks."""
    return json.dumps([run_metrics_to_dict(run) for run in runs],
                      sort_keys=True)


def _timed_runs(config, n_runs=BENCH_RUNS):
    import time
    start = time.perf_counter()
    runs = MonteCarloRunner(config, n_runs=n_runs).run_all()
    return runs, time.perf_counter() - start


def _append_history(entry):
    """Append one measurement to the ``BENCH_engine.json`` trajectory."""
    history = []
    if BENCH_JSON.exists():
        try:
            history = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def _phase_breakdown(config, accelerated):
    """Per-phase seconds of one run under the chosen PHY/sensing backend."""
    with use_acceleration(accelerated):
        metrics = SimulationEngine(config).run()
    return {phase: round(seconds, 3)
            for phase, seconds in sorted(metrics.phase_seconds.items())}


def test_bench_engine_acceleration(benchmark):
    config = interfering_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")

    def ab_comparison():
        with use_acceleration(False):
            base_runs, base_s = _timed_runs(config)
        with use_acceleration(True):
            accel_runs, accel_s = _timed_runs(config)
        return base_runs, base_s, accel_runs, accel_s

    base_runs, base_s, accel_runs, accel_s = benchmark.pedantic(
        ab_comparison, rounds=1, iterations=1)
    identical = _fingerprint(base_runs) == _fingerprint(accel_runs)
    speedup = base_s / accel_s if accel_s > 0 else float("inf")
    scalar_phases = _phase_breakdown(config, accelerated=False)
    batched_phases = _phase_breakdown(config, accelerated=True)

    _append_history({
        "benchmark": "engine-acceleration",
        "scenario": "interfering",
        "runs": BENCH_RUNS,
        "gops": BENCH_GOPS,
        "seed": BENCH_SEED,
        "scalar_seconds": round(base_s, 3),
        "batched_seconds": round(accel_s, 3),
        "speedup": round(speedup, 3),
        "bit_identical": identical,
        "scalar_phase_seconds": scalar_phases,
        "batched_phase_seconds": batched_phases,
    })

    phase_rows = [
        f"{phase:<13}: {scalar_phases.get(phase, 0.0):7.3f} s -> "
        f"{batched_phases.get(phase, 0.0):7.3f} s"
        for phase in sorted(set(scalar_phases) | set(batched_phases))
    ]
    report("Engine acceleration: scalar PHY/sensing oracle vs batched backend",
           "\n".join([
               f"scenario         : interfering FBSs, proposed-fast, "
               f"{BENCH_RUNS} runs x {BENCH_GOPS} GOPs",
               f"scalar oracle    : {base_s:8.2f} s",
               f"batched backend  : {accel_s:8.2f} s",
               f"speedup          : {speedup:8.2f}x (required >= {MIN_SPEEDUP}x)",
               f"bit-identical    : {identical}",
               "phase breakdown (one run, scalar -> batched):",
               *phase_rows,
               f"trajectory       : {BENCH_JSON.name}",
           ]))

    assert identical, (
        "batched engine backend diverged from the scalar oracle -- the "
        "two paths must consume the RNG streams identically and produce "
        "bit-identical run metrics")
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x end-to-end speedup from the batched "
        f"PHY/sensing backend, measured {speedup:.2f}x")


def test_bench_batched_allocation(benchmark):
    """Cross-replication lockstep batching vs the per-replication driver.

    Both legs run the accelerated backend; only the lockstep batching
    switch differs, so the delta is exactly what ISSUE 8 added: one
    stacked subgradient kernel answering B sibling replications' solve
    requests per round instead of B sequential scalar solves.  The
    allocation-phase speedup is the headline number (batching touches
    nothing else); solver caches are re-scoped before each leg so both
    start equally cold.
    """
    config = interfering_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")

    def ab_comparison():
        with use_acceleration(True):
            caches.scope_to(("bench-alloc", "unbatched"))
            with use_batching(False):
                base_runs, base_s = _timed_runs(config, BATCH_BENCH_RUNS)
            caches.scope_to(("bench-alloc", "batched"))
            with use_batching(True):
                batched_runs, batched_s = _timed_runs(config,
                                                      BATCH_BENCH_RUNS)
        return base_runs, base_s, batched_runs, batched_s

    base_runs, base_s, batched_runs, batched_s = benchmark.pedantic(
        ab_comparison, rounds=1, iterations=1)
    identical = _fingerprint(base_runs) == _fingerprint(batched_runs)
    base_alloc = sum(r.phase_seconds.get("allocation", 0.0)
                     for r in base_runs)
    batched_alloc = sum(r.phase_seconds.get("allocation", 0.0)
                        for r in batched_runs)
    alloc_speedup = (base_alloc / batched_alloc
                     if batched_alloc > 0 else float("inf"))
    total_speedup = base_s / batched_s if batched_s > 0 else float("inf")

    # Lockstep driver counters, from a short metered (untimed) campaign.
    from repro.obs.metrics import enable_metrics, reset_metrics, \
        scoped_registry
    enable_metrics(True)
    try:
        with scoped_registry() as registry:
            with use_acceleration(True), use_batching(True):
                caches.scope_to(("bench-alloc", "metered"))
                MonteCarloRunner(config, n_runs=BATCH_BENCH_RUNS).run_all()
            counters = registry.counters()
    finally:
        enable_metrics(False)
        reset_metrics()
    lockstep = {
        "groups": int(counters.get("repro_lockstep_groups_total", 0)),
        "members": int(counters.get(
            "repro_lockstep_batch_members_total", 0)),
        "rounds": int(counters.get("repro_lockstep_rounds_total", 0)),
        "batched_solves": int(counters.get(
            "repro_lockstep_batched_solves_total", 0)),
        "escapes": int(counters.get("repro_lockstep_escapes_total", 0)),
    }

    _append_history({
        "benchmark": "allocation-batched",
        "scenario": "interfering",
        "runs": BATCH_BENCH_RUNS,
        "gops": BENCH_GOPS,
        "seed": BENCH_SEED,
        "unbatched_seconds": round(base_s, 3),
        "batched_seconds": round(batched_s, 3),
        "unbatched_alloc_seconds": round(base_alloc, 3),
        "batched_alloc_seconds": round(batched_alloc, 3),
        "alloc_speedup": round(alloc_speedup, 3),
        "end_to_end_speedup": round(total_speedup, 3),
        "bit_identical": identical,
        "lockstep": lockstep,
    })

    report("Batched allocation: per-replication driver vs lockstep kernel",
           "\n".join([
               f"scenario         : interfering FBSs, proposed-fast, "
               f"{BATCH_BENCH_RUNS} runs x {BENCH_GOPS} GOPs",
               f"unbatched        : {base_s:8.2f} s "
               f"(allocation {base_alloc:7.2f} s)",
               f"batched          : {batched_s:8.2f} s "
               f"(allocation {batched_alloc:7.2f} s)",
               f"allocation speedup: {alloc_speedup:7.2f}x "
               f"(required >= {MIN_BATCHED_ALLOC_SPEEDUP}x)",
               f"end-to-end speedup: {total_speedup:7.2f}x",
               f"bit-identical    : {identical}",
               f"lockstep         : {lockstep['groups']} group(s), "
               f"{lockstep['members']} members, {lockstep['rounds']} rounds, "
               f"{lockstep['batched_solves']} batched solves, "
               f"{lockstep['escapes']} escapes",
               f"trajectory       : {BENCH_JSON.name}",
           ]))

    assert identical, (
        "lockstep-batched campaign diverged from the per-replication "
        "driver -- the stacked kernel must answer every solve request "
        "bit-identically to the scalar solver")
    assert lockstep["batched_solves"] > 0, (
        "the metered campaign never reached the stacked kernel -- "
        "lockstep batching did not engage")
    assert alloc_speedup >= MIN_BATCHED_ALLOC_SPEEDUP, (
        f"expected >= {MIN_BATCHED_ALLOC_SPEEDUP}x allocation-phase "
        f"speedup from lockstep batching, measured {alloc_speedup:.2f}x")


def test_bench_tracing_overhead(benchmark):
    """Observability cost: the same accelerated run with tracing off vs on.

    The tracing-on leg runs under the full surface (``--profile`` spans
    plus metrics); both legs must produce bit-identical run metrics --
    telemetry is out-of-band by construction (DESIGN.md section 12) and
    this benchmark would catch any instrumentation point that leaks into
    the simulation.  The measured overhead lands in ``BENCH_engine.json``
    and the produced trace/metrics files are kept as CI artifacts.
    (The *disabled*-path cost -- obs imported but never configured, the
    state every other benchmark and the tier-1 suite runs in -- is the
    tracing-off leg here, i.e. it is already included in every number
    this file reports.)
    """
    config = interfering_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")
    for artifact in (BENCH_TRACE, BENCH_METRICS):
        if artifact.exists():
            artifact.unlink()

    def ab_comparison():
        # Batching off in both legs: an active tracer stands down from
        # lockstep (span nesting assumes one replication at a time), so
        # holding the driver constant isolates the instrumentation cost
        # from the batching win measured by test_bench_batched_allocation.
        with use_acceleration(True), use_batching(False):
            off_runs, off_s = _timed_runs(config)
            obs.configure(trace_path=str(BENCH_TRACE),
                          metrics_path=str(BENCH_METRICS), profile=True)
            try:
                on_runs, on_s = _timed_runs(config)
            finally:
                obs.shutdown()
        return off_runs, off_s, on_runs, on_s

    off_runs, off_s, on_runs, on_s = benchmark.pedantic(
        ab_comparison, rounds=1, iterations=1)
    identical = _fingerprint(off_runs) == _fingerprint(on_runs)
    overhead_pct = (on_s - off_s) / off_s * 100 if off_s > 0 else 0.0
    trace_events = len(obs.read_trace(str(BENCH_TRACE)))

    _append_history({
        "benchmark": "tracing-overhead",
        "scenario": "interfering",
        "runs": BENCH_RUNS,
        "gops": BENCH_GOPS,
        "seed": BENCH_SEED,
        "tracing_off_seconds": round(off_s, 3),
        "tracing_on_seconds": round(on_s, 3),
        "tracing_overhead_pct": round(overhead_pct, 2),
        "trace_events": trace_events,
        "bit_identical": identical,
    })

    report("Observability overhead: tracing+metrics off vs on (accelerated)",
           "\n".join([
               f"scenario         : interfering FBSs, proposed-fast, "
               f"{BENCH_RUNS} runs x {BENCH_GOPS} GOPs",
               f"tracing off      : {off_s:8.2f} s",
               f"tracing on       : {on_s:8.2f} s  (profile spans + metrics)",
               f"overhead         : {overhead_pct:8.2f} %",
               f"trace events     : {trace_events}",
               f"bit-identical    : {identical}",
               f"artifacts        : {BENCH_TRACE.name}, {BENCH_METRICS.name}",
           ]))

    assert identical, (
        "run metrics diverged with tracing enabled -- an instrumentation "
        "point is leaking into the simulation (RNG stream or results)")
