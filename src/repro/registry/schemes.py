"""Typed registry of allocation schemes.

A scheme is a name, an allocator factory, and a set of capability flags
the execution layers consult instead of hard-coded name lists:

* ``batchable`` -- the allocator exposes ``allocate_iter`` yielding
  :class:`~repro.core.batch.SolveRequest` objects, so replications may
  advance in lockstep (:mod:`repro.sim.lockstep`).  The lockstep driver
  verifies the claim at group-formation time and refuses (with a
  counter) allocators that cannot actually yield.
* ``warm_startable`` -- the factory accepts ``warm_start=True``; the
  engine forwards the config's ``warm_start`` switch only to schemes
  carrying this flag.
* ``fallback_eligible`` -- the scheme is closed-form and cannot fail to
  converge, so it may terminate every engine's degradation chain
  (:func:`repro.sim.fallback.fallback_chain_for`).
* ``greedy_channels`` -- in interfering deployments the engine runs the
  paper's Table III greedy channel allocation (and the eq. (23) bound)
  for this scheme; schemes without the flag get the colour-partition
  channel phase instead.
* ``accepts_options`` -- the factory takes keyword options (solver
  parameters); factories without the flag reject any kwargs with a
  :class:`~repro.utils.errors.ConfigurationError`, preserving the
  historical ``get_allocator`` contract.

Built-in schemes register themselves when their defining module is
imported; :func:`scheme_registry` imports those modules lazily on first
use, so third-party code can call :func:`register_scheme` at any point
before (or after) that and have its scheme validated, listed, swept,
and conformance-tested exactly like the built-ins.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class SchemeInfo:
    """One registered allocation scheme.

    Attributes
    ----------
    name:
        Registry name; the allocator the factory builds must expose the
        same string as its ``.name``.
    factory:
        Zero-or-keyword-argument callable returning a fresh allocator
        (an object with ``allocate(problem) -> Allocation``).
    batchable / warm_startable / fallback_eligible / greedy_channels /
    accepts_options:
        Capability flags; see the module docstring.
    description:
        One-line human description for ``repro schemes``.
    """

    name: str
    factory: Callable[..., object]
    batchable: bool = False
    warm_startable: bool = False
    fallback_eligible: bool = False
    greedy_channels: bool = False
    accepts_options: bool = False
    description: str = ""

    def create(self, **kwargs):
        """Instantiate the allocator, enforcing the options contract."""
        if kwargs and not self.accepts_options:
            raise ConfigurationError(
                f"{self.name} accepts no options, got {kwargs}")
        return self.factory(**kwargs)

    @property
    def flags(self) -> Tuple[str, ...]:
        """The capability flags set on this scheme, for display."""
        return tuple(
            label for label, value in (
                ("batchable", self.batchable),
                ("warm-startable", self.warm_startable),
                ("fallback-eligible", self.fallback_eligible),
                ("greedy-channels", self.greedy_channels),
            ) if value)


class SchemeRegistry:
    """Name-keyed collection of :class:`SchemeInfo` entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, SchemeInfo] = {}

    def register(self, info: SchemeInfo) -> SchemeInfo:
        """Add a scheme; duplicate names are a configuration error."""
        if not info.name:
            raise ConfigurationError("scheme name must be non-empty")
        if info.name in self._entries:
            raise ConfigurationError(
                f"scheme {info.name!r} is already registered")
        self._entries[info.name] = info
        return info

    def get(self, name: str) -> SchemeInfo:
        """Look up a scheme; unknown names list what *is* registered."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scheme {name!r}; registered schemes: "
                f"{self.names()}") from None

    def create(self, name: str, **kwargs):
        """Instantiate the named scheme's allocator."""
        return self.get(name).create(**kwargs)

    def names(self) -> Tuple[str, ...]:
        """Registered scheme names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[SchemeInfo]:
        return iter(list(self._entries.values()))

    def __len__(self) -> int:
        return len(self._entries)

    @contextmanager
    def temporarily(self, info: SchemeInfo):
        """Scoped registration (tests register throwaway schemes)."""
        self.register(info)
        try:
            yield info
        finally:
            self._entries.pop(info.name, None)


#: The process-wide scheme registry.
_SCHEMES = SchemeRegistry()

#: Whether the built-in scheme modules have been imported yet.
_BUILTINS_LOADED = False


def register_scheme(info: SchemeInfo) -> SchemeInfo:
    """Register a scheme with the process-wide registry.

    Safe to call from a module's import-time body (the built-ins do);
    does not trigger the lazy built-in load itself.
    """
    return _SCHEMES.register(info)


def scheme_registry() -> SchemeRegistry:
    """The process-wide registry, with built-ins loaded on first use.

    The built-in allocator modules register themselves at import time;
    importing them lazily here (rather than at this module's import)
    keeps the registry free of import cycles -- config validation,
    engine construction, the CLI, and the lockstep planner all call
    this accessor, and any of them may be the first.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        # The allocator module registers the paper's four schemes and
        # pulls in the graph-coloring module at its own bottom, so one
        # import completes the built-in set.
        import repro.core.allocator  # noqa: F401
    return _SCHEMES
