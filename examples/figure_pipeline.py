#!/usr/bin/env python
"""Full figure pipeline: run -> persist -> reload -> chart.

Shows the workflow a downstream user follows when regenerating one of
the paper's figures for their own write-up: run the sweep, save the
result as JSON (so reruns can be diffed), reload it, and render both the
numeric table and an ASCII chart.

Run with:  python examples/figure_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.experiments.fig6 import run_fig6c
from repro.experiments.plotting import chart_sweep
from repro.experiments.report import format_sweep
from repro.experiments.results_io import load_results, save_results


def main() -> None:
    print("Running Fig. 6(c) (PSNR vs common-channel bandwidth, "
          "interfering FBSs)...\n")
    result = run_fig6c(n_runs=3, n_gops=1, seed=7)

    path = Path(tempfile.gettempdir()) / "repro_fig6c.json"
    save_results(result, path)
    print(f"Saved result data to {path} "
          f"({path.stat().st_size} bytes of JSON)\n")

    reloaded = load_results(path)
    assert reloaded.series("proposed-fast") == result.series("proposed-fast")

    print(format_sweep(reloaded, upper_bound=True, value_format="B0={}"))
    print()
    print(chart_sweep(reloaded, include_upper_bound=True))


if __name__ == "__main__":
    main()
