"""Testing utilities shipped with the library.

:mod:`repro.testing.faults` provides the deterministic fault-injection
harness used by the robustness suite (``tests/robustness/``) to prove the
simulator's degradation paths end-to-end.  It is part of the installable
package so downstream users can exercise the same failure modes against
their own scenarios.
"""

from repro.testing.faults import FaultPlan, corrupt_json_file

__all__ = ["FaultPlan", "corrupt_json_file"]
