"""Graph-coloring allocation scheme (hierarchical decomposition).

Sadr & Adve's "Hierarchical Resource Allocation in Femtocell Networks
using Graph Algorithms" splits resource allocation into a cluster-level
graph problem and a per-cluster convex problem.  The registry entry here
follows that decomposition within this codebase's slot model:

1. **Cluster level** -- channels are reused across FBS clusters by
   colouring the interference graph (:func:`interference_coloring`);
   FBSs of one colour class are mutually non-adjacent and may share
   channels freely.  In interfering deployments the engine runs this
   phase for every scheme without the ``greedy_channels`` capability,
   so the allocator itself stays slot-local.
2. **Per-cluster level** -- users are assigned to MBS or FBS by the
   local channel-condition rule (the same rule heuristic1 uses), then
   the slot's airtime is split by *exact water-filling* over that fixed
   assignment (:func:`~repro.core.reference.solve_given_assignment`),
   which rides the accelerated kernels in :mod:`repro.core.accel` when
   acceleration is on.

The result sits strictly between heuristic1 (same assignment, equal
shares) and the proposed scheme (jointly optimal assignment + shares):
it inherits the cheap distributed assignment but recovers the optimal
time shares for it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import networkx as nx

from repro.core.heuristics import fbs_condition, mbs_condition
from repro.core.problem import Allocation, SlotProblem
from repro.core.reference import solve_given_assignment
from repro.registry.schemes import SchemeInfo, register_scheme


def interference_coloring(graph: nx.Graph,
                          nodes: Optional[Iterable[int]] = None, *,
                          strategy: str = "largest_first") -> Dict[int, int]:
    """Greedy-colour (a subgraph of) an interference graph.

    Parameters
    ----------
    graph:
        Interference graph; vertices are FBS ids, edges mark mutual
        interference.
    nodes:
        Restrict colouring to this vertex subset (default: all).
    strategy:
        Ordering strategy for the greedy colouring.  The default
        ``largest_first`` guarantees at most ``max_degree + 1`` colours
        (greedy colouring never needs more than Δ+1 regardless of
        order; largest-first additionally matches the assignment the
        baseline channel partition has always produced).

    Returns
    -------
    dict
        ``{fbs_id: color index}``; adjacent vertices never share a
        colour, and colour indices are dense from 0.
    """
    target = graph if nodes is None else graph.subgraph(nodes)
    return nx.greedy_color(target, strategy=strategy)


class GraphColoringAllocator:
    """Fixed-assignment water-filling allocator (see module docstring).

    The cluster-level colouring happens in the engine's channel phase;
    this object handles the per-cluster subproblem: pick each user's
    serving station by local channel conditions, then solve the slot's
    time-share program exactly for that assignment.
    """

    name = "graph-coloring"

    def allocate(self, problem: SlotProblem) -> Allocation:
        """Assign users by the local rule, then water-fill exactly."""
        mbs_users = {
            user.user_id for user in problem.users
            if mbs_condition(user) > fbs_condition(
                user, problem.g_for_user(user))}
        return solve_given_assignment(problem, mbs_users)


register_scheme(SchemeInfo(
    name="graph-coloring",
    factory=GraphColoringAllocator,
    description="Hierarchical scheme: colour the interference graph for "
                "cluster-level channel reuse, then exact water-filling "
                "per cluster (Sadr & Adve).",
))
