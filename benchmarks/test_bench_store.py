"""Scenario store: cold build vs cached (memory / disk) build cost.

Measures how long :func:`repro.sim.build.build_scenario` takes on the
interfering scenario cold, against a memory-warm :class:`ScenarioStore`
hit and a disk-warm workspace load, then verifies the cached artifact
drives the engine to bit-identical metrics.  The measurement trajectory
accumulates in ``BENCH_store.json`` (uploaded by the CI workspace job).

The disk tier is gated by a persistence floor
(:data:`~repro.store.scenario_store.DEFAULT_DISK_FLOOR_SECONDS`): builds
cheaper than the floor stay memory-tier only, because loading them back
costs more than rebuilding (the ``disk_speedup: 0.76`` pessimization
earlier entries in the trajectory recorded).  This bench asserts both
sides of that contract: the cheap bench scenario is *skipped* at the
default floor, and the floor itself exceeds the measured disk round-trip
-- so any build the store chooses to persist is, by construction, at
least as expensive to rebuild as to load (``disk_speedup >= 1`` for
every persisted artifact).
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import BENCH_GOPS, BENCH_SEED, report
from repro.experiments.scenarios import interfering_fbs_scenario
from repro.sim.build import build_scenario
from repro.sim.checkpoint import run_metrics_to_dict
from repro.sim.engine import SimulationEngine
from repro.store.confighash import scenario_hash
from repro.store.scenario_store import (
    DEFAULT_DISK_FLOOR_SECONDS,
    ScenarioStore,
)
from repro.store.workspace import FileWorkspace

#: Required speedup of a memory-cached build over a cold build.
MIN_CACHED_SPEEDUP = 5.0

#: Timing loop length (per-build cost is small; averaging steadies it).
ROUNDS = 20

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Where the build-cost trajectory accumulates (uploaded by CI).
BENCH_JSON = _REPO_ROOT / "BENCH_store.json"


def _append_history(entry):
    """Append one measurement to the ``BENCH_store.json`` trajectory."""
    history = []
    if BENCH_JSON.exists():
        try:
            history = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def _timed(fn, rounds=ROUNDS):
    start = time.perf_counter()
    for _ in range(rounds):
        result = fn()
    return result, (time.perf_counter() - start) / rounds


def test_bench_store_build_cache(benchmark, tmp_path):
    config = interfering_fbs_scenario(
        n_gops=BENCH_GOPS, seed=BENCH_SEED, scheme="proposed-fast")
    ref = scenario_hash(config)
    workspace = FileWorkspace(tmp_path / "ws")

    def measure():
        # Cold: the full derivation (CSI scales, R-D demands, sensing
        # layouts), as every replication paid before the build/run split.
        cold_built, cold_s = _timed(
            lambda: build_scenario(config, scenario_hash=ref))
        # Memory-warm: what a replication pays against the store.
        store = ScenarioStore(workspace=workspace, disk_floor_seconds=0.0)
        store.get_or_build(config)
        cached_built, cached_s = _timed(lambda: store.get_or_build(config))
        # Disk-warm: first touch of a fresh process over a warmed
        # workspace (a --jobs worker, or a rerun next session).  Floor 0
        # forces persistence of the cheap bench artifact so the tier is
        # measurable at all.
        def disk_load():
            fresh = ScenarioStore(workspace=workspace,
                                  disk_floor_seconds=0.0)
            return fresh.get_or_build(config)
        disk_built, disk_s = _timed(disk_load)
        return cold_built, cold_s, cached_built, cached_s, disk_built, disk_s

    (cold_built, cold_s, cached_built, cached_s,
     disk_built, disk_s) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The floor decision: at the *default* floor this build is too cheap
    # to earn disk persistence -- the fix for the recorded disk-tier
    # pessimization.
    gated = ScenarioStore(workspace=FileWorkspace(tmp_path / "gated"))
    gated_built = gated.get_or_build(config)
    persisted = (gated.workspace.scenario_path(gated_built.scenario_hash)
                 .exists())

    # The cached artifact must drive the engine exactly like a cold one.
    cold_metrics = SimulationEngine(config, built=cold_built).run()
    cached_metrics = SimulationEngine(config, built=cached_built).run()
    disk_metrics = SimulationEngine(config, built=disk_built).run()
    fingerprints = {json.dumps(run_metrics_to_dict(m), sort_keys=True)
                    for m in (cold_metrics, cached_metrics, disk_metrics)}
    identical = len(fingerprints) == 1

    cached_speedup = cold_s / cached_s if cached_s > 0 else float("inf")
    disk_speedup_floor0 = cold_s / disk_s if disk_s > 0 else float("inf")

    _append_history({
        "benchmark": "store-build-cache",
        "scenario": "interfering",
        "gops": BENCH_GOPS,
        "seed": BENCH_SEED,
        "rounds": ROUNDS,
        "cold_build_ms": round(cold_s * 1e3, 4),
        "cached_build_ms": round(cached_s * 1e3, 4),
        "disk_load_ms": round(disk_s * 1e3, 4),
        "cached_speedup": round(cached_speedup, 2),
        "disk_speedup_floor0": round(disk_speedup_floor0, 2),
        "disk_floor_ms": round(DEFAULT_DISK_FLOOR_SECONDS * 1e3, 4),
        "persisted_at_default_floor": persisted,
        "persist_skips": gated.persist_skips,
        "bit_identical": identical,
    })

    report("Scenario store: cold vs cached build", "\n".join([
        f"scenario         : interfering FBSs, {BENCH_GOPS} GOPs",
        f"cold build       : {cold_s * 1e3:10.4f} ms",
        f"memory-cached    : {cached_s * 1e3:10.4f} ms "
        f"({cached_speedup:8.1f}x, required >= {MIN_CACHED_SPEEDUP}x)",
        f"disk-loaded      : {disk_s * 1e3:10.4f} ms "
        f"({disk_speedup_floor0:8.1f}x at floor 0)",
        f"disk floor       : {DEFAULT_DISK_FLOOR_SECONDS * 1e3:10.4f} ms "
        f"(persisted at default floor: {persisted})",
        f"bit-identical    : {identical}",
        f"trajectory       : {BENCH_JSON.name}",
    ]))

    assert identical, (
        "a cached scenario build drove the engine to different metrics "
        "than a cold build -- the store must be a pure accelerator")
    assert cached_speedup >= MIN_CACHED_SPEEDUP, (
        f"expected a memory-cached build to be >= {MIN_CACHED_SPEEDUP}x "
        f"faster than a cold build, measured {cached_speedup:.2f}x")
    # The cheap bench build must be *skipped* at the default floor: its
    # measured cost sits well under the floor, and persisting it is
    # exactly the pessimization the floor exists to prevent.
    assert not persisted and gated.persist_skips == 1, (
        f"expected the {cold_s * 1e3:.3f} ms bench build to skip disk "
        f"persistence at the default "
        f"{DEFAULT_DISK_FLOOR_SECONDS * 1e3:.1f} ms floor")
    # And the floor itself must cover the measured disk round-trip:
    # every artifact the store chooses to persist (build >= floor) is
    # then at least as expensive to rebuild as to load, so disk loads
    # are never slower than cold builds for persisted scenarios.
    assert disk_s <= DEFAULT_DISK_FLOOR_SECONDS, (
        f"disk round-trip {disk_s * 1e3:.3f} ms exceeds the "
        f"{DEFAULT_DISK_FLOOR_SECONDS * 1e3:.1f} ms persistence floor -- "
        f"persisted artifacts could load slower than they rebuild")
