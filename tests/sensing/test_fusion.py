"""Tests for Bayesian fusion (eqs. (2)-(4))."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing.detector import SensingResult, SpectrumSensor
from repro.sensing.fusion import fuse_iterative, fuse_posterior
from repro.spectrum.markov import BUSY, IDLE
from repro.utils.errors import ConfigurationError


def _result(observation, eps=0.3, delta=0.3, channel=0):
    return SensingResult(channel=channel, observation=observation,
                         false_alarm=eps, miss_detection=delta)


class TestClosedForm:
    def test_no_observations_gives_prior(self):
        assert fuse_posterior(0.4, []) == pytest.approx(0.6)

    def test_single_idle_observation_eq2(self):
        # eq. (2) with L=1, Theta=0: [1 + eta/(1-eta) * delta/(1-eps)]^-1
        eta, eps, delta = 0.4, 0.3, 0.2
        expected = 1.0 / (1.0 + eta / (1 - eta) * delta / (1 - eps))
        assert fuse_posterior(eta, [_result(IDLE, eps, delta)]) == pytest.approx(expected)

    def test_single_busy_observation_eq2(self):
        eta, eps, delta = 0.4, 0.3, 0.2
        expected = 1.0 / (1.0 + eta / (1 - eta) * (1 - delta) / eps)
        assert fuse_posterior(eta, [_result(BUSY, eps, delta)]) == pytest.approx(expected)

    def test_idle_observations_raise_posterior(self):
        eta = 0.5
        posteriors = [fuse_posterior(eta, [_result(IDLE)] * k) for k in range(5)]
        assert all(b > a for a, b in zip(posteriors, posteriors[1:]))

    def test_busy_observations_lower_posterior(self):
        eta = 0.5
        posteriors = [fuse_posterior(eta, [_result(BUSY)] * k) for k in range(5)]
        assert all(b < a for a, b in zip(posteriors, posteriors[1:]))

    def test_extreme_priors(self):
        assert fuse_posterior(0.0, [_result(BUSY)]) == 1.0
        assert fuse_posterior(1.0, [_result(IDLE)]) == 0.0

    def test_perfect_sensor_is_decisive(self):
        perfect_idle = _result(IDLE, eps=0.0, delta=0.0)
        perfect_busy = _result(BUSY, eps=0.0, delta=0.0)
        assert fuse_posterior(0.5, [perfect_idle]) == 1.0
        assert fuse_posterior(0.5, [perfect_busy]) == 0.0

    def test_mixed_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_posterior(0.5, [_result(IDLE, channel=0), _result(IDLE, channel=1)])

    def test_many_observations_numerically_stable(self):
        posterior = fuse_posterior(0.5, [_result(IDLE)] * 5000)
        assert posterior == pytest.approx(1.0)
        posterior = fuse_posterior(0.5, [_result(BUSY)] * 5000)
        assert posterior == pytest.approx(0.0)


class TestIterativeEquivalence:
    """eqs. (3)-(4) must agree exactly with the batch form (2)."""

    def test_all_length3_observation_patterns(self):
        for pattern in itertools.product((IDLE, BUSY), repeat=3):
            results = [_result(obs) for obs in pattern]
            assert fuse_iterative(0.4, results) == pytest.approx(
                fuse_posterior(0.4, results), abs=1e-12)

    @given(
        eta=st.floats(0.05, 0.95),
        pattern=st.lists(st.sampled_from([IDLE, BUSY]), min_size=0, max_size=8),
        eps=st.floats(0.05, 0.95),
        delta=st.floats(0.05, 0.95),
    )
    @settings(max_examples=100)
    def test_property_equivalence(self, eta, pattern, eps, delta):
        results = [_result(obs, eps, delta) for obs in pattern]
        assert fuse_iterative(eta, results) == pytest.approx(
            fuse_posterior(eta, results), abs=1e-10)

    @given(
        eta=st.floats(0.1, 0.9),
        pattern=st.lists(st.sampled_from([IDLE, BUSY]), min_size=2, max_size=6),
    )
    @settings(max_examples=50)
    def test_property_order_invariance(self, eta, pattern):
        # Bayes fusion of conditionally independent results cannot depend
        # on arrival order.
        results = [_result(obs) for obs in pattern]
        reversed_results = list(reversed(results))
        assert fuse_posterior(eta, results) == pytest.approx(
            fuse_posterior(eta, reversed_results), abs=1e-12)

    def test_empty_iterative_gives_prior(self):
        assert fuse_iterative(0.3, []) == pytest.approx(0.7)


class TestCalibration:
    def test_posterior_is_calibrated_monte_carlo(self):
        """Among slots with fused posterior ~p, the channel is idle ~p often.

        This validates eq. (2) end to end against the generative model:
        Markov-stationary occupancy + noisy sensors.
        """
        rng = np.random.default_rng(0)
        eta = 0.4
        sensors = [SpectrumSensor(0.3, 0.25, rng=rng) for _ in range(3)]
        buckets = {}
        for _ in range(30000):
            truly_busy = rng.random() < eta
            results = [s.sense(0, BUSY if truly_busy else IDLE) for s in sensors]
            posterior = fuse_posterior(eta, results)
            key = round(posterior, 3)
            hits, total = buckets.get(key, (0, 0))
            buckets[key] = (hits + (not truly_busy), total + 1)
        for posterior, (hits, total) in buckets.items():
            if total >= 1000:
                assert hits / total == pytest.approx(posterior, abs=0.04)
