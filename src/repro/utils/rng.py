"""Random-number-generator plumbing.

The simulation engine needs *reproducible yet independent* randomness for
each stochastic subsystem (primary-user channel occupancy, sensing noise,
fading).  Rather than sharing a single global generator -- which would make
results depend on call order -- every subsystem receives its own
:class:`numpy.random.Generator` spawned from one root seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

import numpy as np

#: Anything acceptable as a source of randomness in public APIs.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_streams(seed: RandomState, names: Iterable[str]) -> Dict[str, np.random.Generator]:
    """Create one independent generator per name from a single root seed.

    Streams are derived with :meth:`numpy.random.SeedSequence.spawn`, which
    guarantees statistical independence between children; the mapping is
    deterministic in both the root seed and the *order* of ``names``.

    Parameters
    ----------
    seed:
        Root seed (``None`` draws fresh OS entropy).
    names:
        Stream labels, e.g. ``["occupancy", "sensing", "fading"]``.

    Returns
    -------
    dict
        ``{name: Generator}`` with one independent stream per name.
    """
    names = list(names)
    if len(set(names)) != len(names):
        raise ValueError(f"stream names must be unique, got {names!r}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream; keeps the
        # "thread one generator through everything" use case working.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    children = root.spawn(len(names))
    return {name: np.random.default_rng(child) for name, child in zip(names, children)}


def batched_uniform(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` uniforms in one call, consuming the stream like ``n``
    scalar ``rng.random()`` calls.

    This is the contract the batched PHY/sensing backend is built on:
    numpy's ``Generator.random(size=n)`` fills the output buffer by
    repeating the exact per-element draw of the scalar call, so the bit
    stream -- and therefore every subsequent draw from ``rng`` -- is
    identical whether a slot's uniforms are drawn one at a time (the
    scalar oracle) or as one array (the batched backend).  Asserted by
    ``tests/utils/test_rng.py`` and relied on for the byte-identical
    ``--jobs N`` checkpoint guarantee.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return rng.random(int(n))


def batched_exponential(rng: np.random.Generator, scales) -> np.ndarray:
    """Draw one exponential per entry of ``scales`` in a single call.

    Same stream-consumption contract as :func:`batched_uniform`: numpy's
    ``Generator.exponential(scale=array)`` loops over the output buffer
    in index order calling the same ziggurat sampler as the scalar
    ``rng.exponential(scale)`` call, so ``batched_exponential(rng, s)``
    is bit-identical to ``[rng.exponential(x) for x in s]`` and leaves
    ``rng`` in the same state.  Used for the per-slot block-fading
    margin draws of the batched engine backend.
    """
    scales = np.asarray(scales, dtype=float)
    return rng.exponential(scales)


def derive_seed(seed: Optional[int], run_index: int,
                attempt: int = 0) -> Optional[int]:
    """Deterministic per-run seed for Monte-Carlo replication ``run_index``.

    Returns ``None`` when ``seed`` is ``None`` so unseeded experiments stay
    fully random.

    Parameters
    ----------
    seed:
        Root seed of the experiment.
    run_index:
        Replication index.
    attempt:
        Retry counter.  ``attempt=0`` reproduces the historical
        per-run seeds exactly; a retried replication (after a
        :class:`~repro.utils.errors.ReproError`) passes ``attempt=1`` to
        draw a fresh-but-deterministic seed that is independent of the
        failed attempt's.
    """
    if seed is None:
        return None
    if run_index < 0:
        raise ValueError(f"run_index must be non-negative, got {run_index}")
    if attempt < 0:
        raise ValueError(f"attempt must be non-negative, got {attempt}")
    # SeedSequence composition keeps runs independent even for adjacent
    # run indices (unlike naive ``seed + run_index`` arithmetic).  The
    # attempt counter is only appended when non-zero so attempt 0 keeps
    # the exact seeds produced before retries existed.
    entropy = [seed, run_index] if attempt == 0 else [seed, run_index, attempt]
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])
