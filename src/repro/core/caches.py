"""Scoping of process-global solver caches to the scenario in flight.

Several hot-path caches are process-global by design -- the compiled
slot-problem LRU (:mod:`repro.core.reference`), the ``fast_solve`` /
batched-request solver instances (:mod:`repro.core.dual`,
:mod:`repro.core.batch`), and the video R-D slot-increment table
(:mod:`repro.video.sequences`).  All of them are keyed by *value*
(problem contents, solver parameters, sequence name), so stale entries
can never corrupt results -- but a long-lived worker (the
:class:`~repro.exec.supervisor.SupervisedExecutor` keeps one process per
job slot for the whole campaign) walking a multi-scenario sweep
accumulates entries for every scenario it ever touched and its memory
grows without bound.

:func:`scope_to` is the fix: executors call it at cell dispatch with the
cell's scenario identity (its ``scenario_ref`` content hash, or a
config-instance token when the store is off); when the identity changes,
every solver cache is dropped.  Within one scenario -- the common case,
including every replication of a campaign -- the caches persist exactly
as before.
"""

from __future__ import annotations

from typing import Optional

#: Identity of the scenario the caches currently serve.
_SCOPE: Optional[object] = None


def clear_solver_caches() -> None:
    """Drop every process-global solver/table cache unconditionally."""
    from repro.core import batch, dual, reference
    from repro.video import sequences

    reference._COMPILE_CACHE.clear()
    dual._fast_solver.cache_clear()
    batch._solver_for.cache_clear()
    sequences.reset_rd_table()


def scope_to(token: object) -> bool:
    """Scope the solver caches to ``token``; clear them on a change.

    Returns ``True`` when the caches were cleared (the scope changed).
    Tokens are compared by equality: a scenario hash string keeps one
    scenario's replications warm across cells, workers, and campaigns,
    while distinct scenarios evict each other on transition.
    """
    global _SCOPE
    if token == _SCOPE:
        return False
    clear_solver_caches()
    _SCOPE = token
    return True
