"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An input, parameter, or scenario configuration is invalid.

    Inherits from :class:`ValueError` so that call sites which validate
    scalar arguments behave like idiomatic Python APIs.
    """


class InfeasibleProblemError(ReproError):
    """A resource-allocation problem instance has no feasible solution."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final value of the convergence criterion.
    """

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
