"""ScenarioStore behaviour: counters, disk tier, switches, fallbacks."""

import pytest

from repro.experiments.scenarios import single_fbs_scenario
from repro.obs.metrics import enable_metrics, reset_metrics, scoped_registry
from repro.sim.build import build_scenario
from repro.store.confighash import scenario_hash
from repro.store.scenario_store import (
    ENV_STORE,
    ENV_WORKSPACE,
    ScenarioStore,
    activate_workspace,
    built_for,
    default_store,
    reset_default_store,
    run_scenario,
    scenario_engine,
    set_default_store,
    store_enabled,
    use_store,
)
from repro.store.workspace import FileWorkspace


@pytest.fixture
def config():
    return single_fbs_scenario(n_gops=1, seed=20260807)


@pytest.fixture(autouse=True)
def isolated_default_store(monkeypatch):
    """Each test gets a pristine process-global store and environment."""
    monkeypatch.delenv(ENV_STORE, raising=False)
    monkeypatch.delenv(ENV_WORKSPACE, raising=False)
    reset_default_store()
    yield
    reset_default_store()


class TestStoreCounters:
    def test_miss_then_hits(self, config):
        store = ScenarioStore()
        first = store.get_or_build(config)
        second = store.get_or_build(config)
        assert first is second
        assert (store.misses, store.hits, store.disk_loads) == (1, 1, 0)
        assert len(store) == 1
        assert scenario_hash(config) in store

    def test_schemes_and_seeds_share_one_build(self, config):
        store = ScenarioStore()
        store.get_or_build(config)
        store.get_or_build(config.with_scheme("heuristic1"))
        store.get_or_build(config.with_seed(99))
        assert (store.misses, store.hits) == (1, 2)

    def test_clear_drops_memory(self, config):
        store = ScenarioStore()
        store.get_or_build(config)
        store.clear()
        assert len(store) == 0
        store.get_or_build(config)
        assert store.misses == 2

    def test_obs_counter_rides_the_registry(self, config):
        enable_metrics(True)
        try:
            with scoped_registry() as registry:
                store = ScenarioStore()
                store.get_or_build(config)
                store.get_or_build(config)
                counters = registry.counters()
        finally:
            enable_metrics(False)
            reset_metrics()
        assert counters[
            'repro_scenario_store_requests_total{result="miss"}'] == 1.0
        assert counters[
            'repro_scenario_store_requests_total{result="hit"}'] == 1.0


class TestDiskTier:
    def test_fresh_store_loads_from_workspace(self, config, tmp_path):
        workspace = FileWorkspace(tmp_path / "ws")
        # Floor 0: persist unconditionally so the disk tier is exercised
        # regardless of how fast this machine builds the tiny fixture.
        warm = ScenarioStore(workspace=workspace, disk_floor_seconds=0.0)
        built = warm.get_or_build(config)
        assert workspace.scenario_path(built.scenario_hash).exists()

        cold = ScenarioStore(workspace=workspace, disk_floor_seconds=0.0)
        loaded = cold.get_or_build(config)
        assert (cold.misses, cold.disk_loads) == (0, 1)
        # Disk round-trip is exact (JSON float64 shortest-repr).
        assert loaded.to_payload() == built.to_payload()
        # ...and the load lands in memory: next lookup is a pure hit.
        cold.get_or_build(config)
        assert cold.hits == 1

    def test_cheap_build_skips_disk_persistence(self, config, tmp_path):
        workspace = FileWorkspace(tmp_path / "ws")
        # An unreachably high floor: the tiny fixture build is always
        # cheaper, so it must stay memory-tier only.
        store = ScenarioStore(workspace=workspace, disk_floor_seconds=1e6)
        built = store.get_or_build(config)
        assert store.persist_skips == 1
        assert not workspace.scenario_path(built.scenario_hash).exists()
        # The memory tier still serves the artifact.
        store.get_or_build(config)
        assert store.hits == 1

    def test_disk_floor_env_override(self, config, tmp_path, monkeypatch):
        from repro.store.scenario_store import ENV_DISK_FLOOR

        monkeypatch.setenv(ENV_DISK_FLOOR, "0")
        workspace = FileWorkspace(tmp_path / "ws")
        store = ScenarioStore(workspace=workspace)
        assert store.disk_floor_seconds == 0.0
        built = store.get_or_build(config)
        assert workspace.scenario_path(built.scenario_hash).exists()
        assert store.persist_skips == 0

    def test_corrupt_artifact_degrades_to_miss(self, config, tmp_path):
        workspace = FileWorkspace(tmp_path / "ws")
        ref = scenario_hash(config)
        workspace.scenario_path(ref).write_text("{not json")
        store = ScenarioStore(workspace=workspace)
        built = store.get_or_build(config)
        assert store.misses == 1
        assert built.scenario_hash == ref


class TestSwitchesAndDefaults:
    def test_built_for_returns_artifact_by_default(self, config):
        built = built_for(config)
        assert built is not None
        assert built.scenario_hash == scenario_hash(config)

    def test_use_store_scopes_the_switch(self, config):
        assert store_enabled()
        with use_store(False):
            assert not store_enabled()
            assert built_for(config) is None
        assert store_enabled()

    def test_env_disables_the_store(self, config, monkeypatch):
        monkeypatch.setenv(ENV_STORE, "0")
        assert not store_enabled()
        assert built_for(config) is None

    def test_default_store_attaches_env_workspace(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_WORKSPACE, str(tmp_path / "ws"))
        reset_default_store()
        store = default_store()
        assert isinstance(store.workspace, FileWorkspace)
        assert store.workspace.root == tmp_path / "ws"

    def test_activate_workspace_exports_env(self, tmp_path, monkeypatch):
        import os
        workspace = activate_workspace(tmp_path / "ws")
        assert isinstance(workspace, FileWorkspace)
        assert os.environ[ENV_WORKSPACE] == str(workspace.root)
        assert default_store().workspace is workspace

    def test_set_default_store_round_trip(self):
        replacement = ScenarioStore()
        set_default_store(replacement)
        assert default_store() is replacement

    def test_unhashable_config_builds_inline(self, config):
        class Opaque:  # no nodes/edges, not a dataclass: unhashable
            pass

        weird = config.replace(topology=config.topology)
        object.__setattr__(weird, "topology", Opaque())
        assert built_for(weird) is None


class TestSplitEntryPoints:
    def test_run_scenario_matches_direct_engine(self, config):
        from repro.sim.engine import SimulationEngine
        direct = SimulationEngine(config).run()
        split = run_scenario(config)
        assert split.per_user_psnr == direct.per_user_psnr
        assert split.mean_psnr == direct.mean_psnr

    def test_scenario_engine_accepts_explicit_build(self, config):
        built = build_scenario(config)
        engine = scenario_engine(config, built=built)
        metrics = engine.run()
        assert metrics.per_user_psnr

    def test_scenario_engine_uses_explicit_store(self, config):
        store = ScenarioStore()
        scenario_engine(config, store=store)
        assert store.misses == 1
        scenario_engine(config, store=store)
        assert store.hits == 1
