"""Property-based tests for sensing fusion and channel access.

Hypothesis fuzzes priors, sensor error profiles (including the exact
0/1 corners), observation sequences, and collision caps:

* fused beliefs must always be valid probabilities, in the scalar and
  the batched fusion alike;
* the access rule must keep the per-channel expected collision
  probability ``(1 - P_A) * P_D`` under the cap ``gamma_m`` (eq. 6),
  for the probabilistic and the hard-threshold policy, scalar and
  batched alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing.access import AccessPolicy, HardThresholdAccessPolicy
from repro.sensing.detector import SensingResult
from repro.sensing.fusion import (
    fuse_iterative,
    fuse_posterior,
    fuse_posteriors_batched,
)

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
# Error rates with the degenerate corners over-weighted: the 0/1 values
# trigger the zero/infinite likelihood-ratio short-circuits.
error_rates = st.one_of(st.sampled_from([0.0, 1.0]), probabilities)
observation_vectors = st.lists(st.integers(0, 1), min_size=0, max_size=12)


def _results(observations, false_alarm, miss_detection):
    return [
        SensingResult(channel=0, observation=obs, false_alarm=false_alarm,
                      miss_detection=miss_detection, sensor_id=k)
        for k, obs in enumerate(observations)
    ]


@settings(max_examples=300)
@given(eta=probabilities, false_alarm=error_rates,
       miss_detection=error_rates, observations=observation_vectors)
def test_fused_belief_is_valid_probability(eta, false_alarm,
                                           miss_detection, observations):
    results = _results(observations, false_alarm, miss_detection)
    posterior = fuse_posterior(eta, results)
    assert 0.0 <= posterior <= 1.0
    iterative = fuse_iterative(eta, results)
    assert 0.0 <= iterative <= 1.0


@settings(max_examples=300)
@given(etas=st.lists(probabilities, min_size=1, max_size=8),
       false_alarm=error_rates, miss_detection=error_rates,
       observations=observation_vectors, data=st.data())
def test_batched_fused_beliefs_are_valid_and_match_scalar(
        etas, false_alarm, miss_detection, observations, data):
    n_channels = len(etas)
    matrix = np.zeros((n_channels, len(observations)), dtype=np.int8)
    counts = np.zeros(n_channels, dtype=np.int64)
    for m in range(n_channels):
        counts[m] = data.draw(st.integers(0, len(observations)),
                              label=f"count[{m}]")
        matrix[m, :counts[m]] = observations[:counts[m]]
    posteriors = fuse_posteriors_batched(
        etas, matrix, counts, false_alarm, miss_detection)
    assert np.all(posteriors >= 0.0)
    assert np.all(posteriors <= 1.0)
    for m in range(n_channels):
        scalar = fuse_posterior(
            etas[m], _results(matrix[m, :counts[m]].tolist(),
                              false_alarm, miss_detection))
        assert posteriors[m] == scalar


# The collision product gamma/(1-P_A) * (1-P_A) may round one ulp above
# gamma; allow exactly that much headroom.
def _cap_with_slack(gamma):
    return gamma + np.spacing(max(gamma, np.finfo(float).tiny))


@settings(max_examples=300)
@given(caps=st.lists(st.floats(min_value=1e-9, max_value=1.0,
                               allow_nan=False), min_size=1, max_size=8),
       data=st.data())
def test_probabilistic_policy_respects_collision_cap(caps, data):
    policy = AccessPolicy(caps)
    posteriors = np.array([
        data.draw(probabilities, label=f"posterior[{m}]")
        for m in range(len(caps))
    ])
    for probs in (policy.access_probabilities(posteriors),
                  np.array([policy.access_probability(m, float(posteriors[m]))
                            for m in range(len(caps))])):
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)
        for m, gamma in enumerate(caps):
            collision = (1.0 - posteriors[m]) * probs[m]
            assert collision <= _cap_with_slack(gamma)


@settings(max_examples=300)
@given(caps=st.lists(st.floats(min_value=1e-9, max_value=1.0,
                               allow_nan=False), min_size=1, max_size=8),
       data=st.data())
def test_threshold_policy_respects_collision_cap(caps, data):
    policy = HardThresholdAccessPolicy(caps)
    posteriors = np.array([
        data.draw(probabilities, label=f"posterior[{m}]")
        for m in range(len(caps))
    ])
    for probs in (policy.access_probabilities(posteriors),
                  np.array([policy.access_probability(m, float(posteriors[m]))
                            for m in range(len(caps))])):
        assert set(np.unique(probs)) <= {0.0, 1.0}
        for m, gamma in enumerate(caps):
            collision = (1.0 - posteriors[m]) * probs[m]
            assert collision <= _cap_with_slack(gamma)


@settings(max_examples=100)
@given(gamma=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
       posterior=probabilities)
def test_probabilistic_policy_is_maximal_under_the_cap(gamma, posterior):
    """Eq. (7): P_D is the *largest* probability satisfying the cap."""
    policy = AccessPolicy([gamma])
    prob = policy.access_probability(0, posterior)
    busy = 1.0 - posterior
    if busy <= gamma:
        assert prob == 1.0
    else:
        assert prob == gamma / busy
