"""Tests for the performance bounds (Theorem 2 and eq. (23))."""

import numpy as np
import pytest

from repro.core.bounds import (
    GreedyStep,
    GreedyTrace,
    closed_form_upper_bound,
    theorem2_factor,
    theorem2_lower_bound,
    tighter_upper_bound,
    verify_bound_holds,
)
from repro.core.dual import fast_solve
from repro.core.greedy import GreedyChannelAllocator, exhaustive_channel_optimum
from repro.net.interference import interference_graph_from_edges
from repro.utils.errors import ConfigurationError
from tests.core.test_greedy import chain_graph, chain_problem


class TestTheorem2Factor:
    def test_chain_graph(self):
        # D_max = 2 (FBS 2) => factor 1/3.
        assert theorem2_factor(chain_graph()) == pytest.approx(1.0 / 3.0)

    def test_edgeless_graph_is_optimal(self):
        graph = interference_graph_from_edges([1, 2, 3], [])
        assert theorem2_factor(graph) == 1.0

    def test_fig2_graph(self):
        graph = interference_graph_from_edges([1, 2, 3, 4], [(3, 4)])
        assert theorem2_factor(graph) == pytest.approx(0.5)


class TestTraceArithmetic:
    def _trace(self):
        steps = (
            GreedyStep(fbs_id=1, channel=0, gain=0.5, degree=1),
            GreedyStep(fbs_id=2, channel=1, gain=0.3, degree=2,
                       conflict_gain_sum=0.2),
        )
        return GreedyTrace(steps=steps, q_empty=1.0, q_final=1.8)

    def test_total_gain(self):
        assert self._trace().total_gain == pytest.approx(0.8)

    def test_bound_term_prefers_evaluated(self):
        trace = self._trace()
        # Step 1 falls back to D * Delta = 0.5; step 2 uses 0.2.
        assert tighter_upper_bound(trace) == pytest.approx(1.8 + 0.5 + 0.2)

    def test_closed_form_ignores_evaluated(self):
        trace = self._trace()
        assert closed_form_upper_bound(trace) == pytest.approx(1.8 + 0.5 + 0.6)
        assert closed_form_upper_bound(trace) >= tighter_upper_bound(trace)

    def test_lower_bound_formula(self):
        trace = self._trace()
        factor = theorem2_factor(chain_graph())
        expected = trace.q_empty + factor * (tighter_upper_bound(trace) - trace.q_empty)
        assert theorem2_lower_bound(trace, chain_graph()) == pytest.approx(expected)

    def test_negative_gain_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyStep(fbs_id=1, channel=0, gain=-0.5, degree=1)

    def test_negative_conflict_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyStep(fbs_id=1, channel=0, gain=0.5, degree=1,
                       conflict_gain_sum=-0.1)


class TestBoundsAgainstTrueOptimum:
    """eq. (23) and Theorem 2 must hold against the exhaustive optimum."""

    @pytest.mark.parametrize("seed", range(6))
    def test_bounds_hold_on_random_chain_instances(self, seed):
        graph = chain_graph()
        rng = np.random.default_rng(100 + seed)
        problem = chain_problem(seed=seed, n_users_per_fbs=1)
        channels = [0, 1]
        posteriors = {m: float(0.4 + 0.6 * rng.random()) for m in channels}
        greedy = GreedyChannelAllocator(graph, solver=fast_solve).allocate(
            problem, channels, posteriors)
        _alloc, q_opt = exhaustive_channel_optimum(
            problem, channels, posteriors, graph, solver=fast_solve)
        assert verify_bound_holds(greedy.trace, q_opt, graph)
        # The closed-form (23) is also an upper bound on the optimum.
        assert q_opt <= closed_form_upper_bound(greedy.trace) + 1e-7

    def test_bound_tight_when_no_interference(self):
        graph = interference_graph_from_edges([1, 2, 3], [])
        problem = chain_problem(seed=42, n_users_per_fbs=1)
        posteriors = {0: 0.9, 1: 0.7}
        greedy = GreedyChannelAllocator(graph, solver=fast_solve).allocate(
            problem, [0, 1], posteriors)
        # D_max = 0: every step's bound term vanishes and greedy is optimal.
        assert tighter_upper_bound(greedy.trace) == pytest.approx(
            greedy.trace.q_final)
        _alloc, q_opt = exhaustive_channel_optimum(
            problem, [0, 1], posteriors, graph, solver=fast_solve)
        assert greedy.trace.q_final == pytest.approx(q_opt, abs=1e-7)
