"""Tests for the sequence library."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.video.sequences import SEQUENCE_LIBRARY, VideoSequence, get_sequence
from repro.video.rd_model import MgsRateDistortion


class TestLibrary:
    def test_paper_sequences_present(self):
        for name in ("bus", "mobile", "harbor"):
            seq = get_sequence(name)
            assert seq.resolution == (352, 288)  # CIF, Section V
            assert seq.gop_size == 16

    def test_lookup_case_insensitive(self):
        assert get_sequence("Bus") is get_sequence("bus")

    def test_unknown_sequence_lists_available(self):
        with pytest.raises(ConfigurationError, match="bus"):
            get_sequence("nosuchvideo")

    def test_mobile_is_hardest(self):
        # Published MGS orderings: Mobile has the lowest base-layer PSNR.
        alphas = {name: seq.rd.alpha_db for name, seq in SEQUENCE_LIBRARY.items()}
        assert alphas["mobile"] == min(alphas.values())

    def test_bus_has_steepest_slope_of_paper_trio(self):
        betas = {name: get_sequence(name).rd.beta_db_per_mbps
                 for name in ("bus", "mobile", "harbor")}
        assert betas["bus"] == max(betas.values())

    def test_all_sequences_saturate(self):
        # Finite enhancement layers: see module docstring (saturation is
        # the mechanism penalising winner-take-all schedulers).
        for seq in SEQUENCE_LIBRARY.values():
            assert seq.rd.max_rate_mbps < float("inf")
            assert 35.0 < seq.rd.max_psnr_db < 50.0

    def test_gop_duration(self):
        seq = get_sequence("bus")
        assert seq.gop_duration_s == pytest.approx(16.0 / 30.0)

    def test_base_psnr_property(self):
        seq = get_sequence("harbor")
        assert seq.base_psnr_db == seq.rd.alpha_db


class TestVideoSequenceValidation:
    def test_invalid_gop(self):
        with pytest.raises(ConfigurationError):
            VideoSequence("x", (352, 288), 30.0, 0, MgsRateDistortion(30, 30))

    def test_invalid_frame_rate(self):
        with pytest.raises(ConfigurationError):
            VideoSequence("x", (352, 288), 0.0, 16, MgsRateDistortion(30, 30))

    def test_invalid_resolution(self):
        with pytest.raises(ConfigurationError):
            VideoSequence("x", (0, 288), 30.0, 16, MgsRateDistortion(30, 30))
