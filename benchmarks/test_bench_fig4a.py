"""Fig. 4(a) -- convergence of the dual variables (Table I).

Paper claim: both multipliers converge to their optimal values within a
few hundred iterations of the distributed subgradient iteration.
"""

from benchmarks.conftest import BENCH_SEED, report
from repro.experiments.fig4 import run_fig4a
from repro.experiments.report import format_convergence


def test_bench_fig4a(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4a(seed=BENCH_SEED), rounds=1, iterations=1)
    report(
        f"Fig. 4(a): dual-variable trace "
        f"(converged={result.converged} after {result.iterations} iterations)",
        format_convergence(result.trace, result.stations))

    assert result.converged
    assert 50 <= result.iterations <= 2000
    # Multipliers settle: total movement over the last 10% of iterations
    # is a tiny fraction of the total movement.
    import numpy as np
    moves = np.abs(np.diff(result.trace, axis=0)).sum(axis=1)
    tail = max(1, len(moves) // 10)
    assert moves[-tail:].sum() < 0.05 * moves.sum()
