#!/usr/bin/env python
"""Spectrum-sensing building blocks and the false-alarm/miss trade-off.

Shows the sensing substrate in isolation -- no video, no allocation:

1. Bayesian fusion (eqs. (2)-(4)): how the idle posterior sharpens as
   more sensing results arrive, and the exact agreement of the batch and
   iterative forms.
2. The collision-capped access policy (eqs. (6)-(7)): empirical per-slot
   collision probability stays below gamma for any sensing quality.
3. The Fig. 6(b) trade-off: expected available channels ``G_t`` across
   (epsilon, delta) operating points.

Run with:  python examples/sensing_tradeoff.py
"""

import numpy as np

from repro.sensing import (
    AccessPolicy,
    SpectrumSensor,
    fuse_iterative,
    fuse_posterior,
)
from repro.sensing.access import CollisionTracker
from repro.spectrum import Spectrum

ETA = 0.4          # channel utilisation by primary users
GAMMA = 0.2        # collision cap
N_CHANNELS = 8
N_SLOTS = 4000


def fusion_demo() -> None:
    print("1) Bayesian fusion of sensing results (eta = %.1f, eps = delta = 0.3)" % ETA)
    rng = np.random.default_rng(1)
    sensor = SpectrumSensor(false_alarm=0.3, miss_detection=0.3, rng=rng)
    results = [sensor.sense(channel=0, true_state=0) for _ in range(6)]
    for count in range(len(results) + 1):
        batch = fuse_posterior(ETA, results[:count])
        iterative = fuse_iterative(ETA, results[:count])
        observations = [r.observation for r in results[:count]]
        assert abs(batch - iterative) < 1e-12
        print(f"   after {count} results {observations}: P_A = {batch:.4f}")
    print()


def collision_demo() -> None:
    print(f"2) Collision cap: empirical collision rate vs gamma = {GAMMA}")
    rng = np.random.default_rng(2)
    spectrum = Spectrum(N_CHANNELS, p01=0.4, p10=0.3, rng=3)
    policy = AccessPolicy(np.full(N_CHANNELS, GAMMA), rng=4)
    sensors = [SpectrumSensor(0.3, 0.3, sensor_id=i, rng=rng) for i in range(3)]
    tracker = CollisionTracker(N_CHANNELS)
    for _ in range(N_SLOTS):
        state = spectrum.advance()
        posteriors = []
        for m in range(N_CHANNELS):
            results = [s.sense(m, int(state.occupancy[m])) for s in sensors]
            posteriors.append(fuse_posterior(spectrum.utilizations[m], results))
        decision = policy.decide(posteriors)
        tracker.record(decision, state.occupancy)
    rates = tracker.collision_rates()
    print(f"   per-channel collision rates over {N_SLOTS} slots: "
          f"min {rates.min():.3f}, mean {rates.mean():.3f}, max {rates.max():.3f}\n")


def tradeoff_demo() -> None:
    print("3) Sensing-error trade-off (the Fig. 6(b) operating points)")
    pairs = ((0.2, 0.48), (0.24, 0.38), (0.3, 0.3), (0.38, 0.24), (0.48, 0.2))
    for eps, delta in pairs:
        rng = np.random.default_rng(5)
        spectrum = Spectrum(N_CHANNELS, p01=0.4, p10=0.3, rng=6)
        policy = AccessPolicy(np.full(N_CHANNELS, GAMMA), rng=7)
        sensors = [SpectrumSensor(eps, delta, sensor_id=i, rng=rng) for i in range(3)]
        g_values = []
        for _ in range(1000):
            state = spectrum.advance()
            posteriors = [
                fuse_posterior(spectrum.utilizations[m],
                               [s.sense(m, int(state.occupancy[m])) for s in sensors])
                for m in range(N_CHANNELS)
            ]
            g_values.append(policy.decide(posteriors).expected_available)
        print(f"   eps={eps:4.2f} delta={delta:4.2f}: "
              f"mean G_t = {np.mean(g_values):.2f} expected available channels")


def main() -> None:
    fusion_demo()
    collision_demo()
    tradeoff_demo()


if __name__ == "__main__":
    main()
