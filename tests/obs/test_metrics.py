"""MetricsRegistry: primitives, snapshot/absorb merging, scoping."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    accumulate_phase_seconds,
    enable_metrics,
    format_phase_seconds,
    global_registry,
    metrics_enabled,
    sample_name,
    scoped_registry,
    split_sample_name,
)


class TestPrimitives:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_totals(self):
        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.sum == 110.5
        assert histogram.count == 4

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))

    def test_boundary_observation_lands_in_le_bucket(self):
        histogram = Histogram(buckets=(1.0, 5.0))
        histogram.observe(5.0)
        assert histogram.counts == [0, 1, 0]


class TestSampleNames:
    def test_labels_sorted_into_canonical_key(self):
        key = sample_name("repro_degradations_total",
                          {"cause": "solver", "allocator": "greedy"})
        assert key == 'repro_degradations_total{allocator="greedy",cause="solver"}'
        assert split_sample_name(key) == (
            "repro_degradations_total", 'allocator="greedy",cause="solver"')

    def test_unlabelled_name_round_trips(self):
        assert sample_name("repro_slots_total", {}) == "repro_slots_total"
        assert split_sample_name("repro_slots_total") == ("repro_slots_total", "")


class TestRegistry:
    def test_same_name_and_labels_return_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", scheme="fast")
        b = registry.counter("hits", scheme="fast")
        assert a is b
        assert registry.counter("hits", scheme="slow") is not a
        assert len(registry) == 2

    def test_histogram_bucket_drift_raises(self):
        registry = MetricsRegistry()
        registry.histogram("latency", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("latency", buckets=(1.0, 3.0))

    def test_snapshot_absorb_round_trip(self):
        source = MetricsRegistry()
        source.counter("solves", converged="true").inc(3)
        source.gauge("parallelism").set(1.7)
        source.histogram("iters", buckets=(10.0, 100.0)).observe(42)
        target = MetricsRegistry()
        target.absorb(source.snapshot())
        assert target.counters() == {'solves{converged="true"}': 3.0}
        assert target.gauges() == {"parallelism": 1.7}
        histogram = target.histograms()["iters"]
        assert histogram.counts == [0, 1, 0]
        assert histogram.sum == 42.0

    def test_merge_across_replications_adds_counts(self):
        # The sweep-level fold: one registry per replication, all merged
        # into the parent -- totals must be the sums.
        total = MetricsRegistry()
        for iterations in (30, 70, 200):
            replication = MetricsRegistry()
            replication.counter("repro_solver_iterations_total").inc(iterations)
            replication.histogram(
                "repro_solver_iterations",
                buckets=(50.0, 100.0)).observe(iterations)
            total.merge(replication)
        assert total.counters() == {"repro_solver_iterations_total": 300.0}
        histogram = total.histograms()["repro_solver_iterations"]
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3

    def test_absorb_bucket_layout_mismatch_raises(self):
        source = MetricsRegistry()
        source.histogram("iters", buckets=(1.0,)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("iters", buckets=(2.0,))
        with pytest.raises(ValueError):
            target.absorb(source.snapshot())


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not metrics_enabled()

    def test_enable_disable(self):
        enable_metrics(True)
        assert metrics_enabled()
        enable_metrics(False)
        assert not metrics_enabled()

    def test_scoped_registry_swaps_and_restores(self):
        outer = global_registry()
        outer.counter("outer").inc()
        with scoped_registry() as inner:
            assert global_registry() is inner
            assert inner is not outer
            global_registry().counter("inner").inc()
        assert global_registry() is outer
        assert "inner" not in outer.counters()
        assert inner.counters() == {"inner": 1.0}

    def test_scoped_registry_restores_on_exception(self):
        outer = global_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert global_registry() is outer


class TestPhaseHelpers:
    def test_accumulate_folds_into_totals(self):
        totals = {}
        accumulate_phase_seconds(totals, {"sensing": 1.0, "allocation": 2.0})
        accumulate_phase_seconds(totals, {"allocation": 0.5, "transmission": 3.0})
        assert totals == {"sensing": 1.0, "allocation": 2.5, "transmission": 3.0}

    def test_format_matches_report_fragment(self):
        rendered = format_phase_seconds({"sensing": 1.0, "allocation": 2.5})
        assert rendered == "sensing 1.00 s; allocation 2.50 s"
