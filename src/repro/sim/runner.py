"""Monte-Carlo replication harness.

Runs a scenario several times with independent (but deterministically
derived) seeds and summarises the runs -- the paper averages 10 runs per
point and reports 95% confidence intervals (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.sim.config import ScenarioConfig
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsSummary, RunMetrics, summarize_runs
from repro.utils.errors import ConfigurationError
from repro.utils.rng import derive_seed


class MonteCarloRunner:
    """Replicated simulation of one scenario.

    Parameters
    ----------
    config:
        The scenario; its ``seed`` is the root from which per-run seeds
        are derived (run ``r`` uses ``SeedSequence([seed, r])``).
    n_runs:
        Number of independent replications (paper default: 10).
    """

    def __init__(self, config: ScenarioConfig, *, n_runs: int = 10) -> None:
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        self.config = config
        self.n_runs = int(n_runs)

    def run_all(self) -> List[RunMetrics]:
        """Execute every replication and return the per-run metrics."""
        runs = []
        for run_index in range(self.n_runs):
            seed = derive_seed(self.config.seed, run_index)
            engine = SimulationEngine(self.config.with_seed(seed))
            runs.append(engine.run())
        return runs

    def summary(self) -> MetricsSummary:
        """Execute every replication and summarise with CIs."""
        return summarize_runs(self.run_all())


@dataclass
class SweepResult:
    """Results of sweeping one scenario parameter across several schemes.

    Attributes
    ----------
    parameter:
        Name of the swept parameter (e.g. ``"n_channels"``).
    values:
        The sweep points, in order.
    summaries:
        ``{scheme: [MetricsSummary per sweep point]}``.
    """

    parameter: str
    values: Sequence[object]
    summaries: Dict[str, List[MetricsSummary]] = field(default_factory=dict)

    def series(self, scheme: str) -> List[float]:
        """Mean-PSNR series of one scheme across the sweep."""
        return [summary.mean_psnr.mean for summary in self.summaries[scheme]]

    def upper_bound_series(self, scheme: str = "proposed") -> List[float]:
        """Eq. (23) upper-bound series (meaningful for the proposed scheme)."""
        return [summary.upper_bound_psnr.mean for summary in self.summaries[scheme]]


def sweep(base_config: ScenarioConfig, parameter: str, values: Sequence[object],
          schemes: Sequence[str], *, n_runs: int = 10,
          configure: Callable[[ScenarioConfig, object], ScenarioConfig] = None
          ) -> SweepResult:
    """Sweep one parameter across several schemes.

    Parameters
    ----------
    base_config:
        Template scenario.
    parameter:
        Attribute of :class:`ScenarioConfig` to vary (ignored if a custom
        ``configure`` is supplied).
    values:
        Sweep points.
    schemes:
        Allocation schemes to evaluate at every point.
    n_runs:
        Replications per point per scheme.
    configure:
        Optional hook ``(config, value) -> config`` for sweeps that touch
        more than a single attribute (e.g. utilisation sweeps also rebuild
        ``p01``).

    Notes
    -----
    All schemes at a sweep point share the same root seed, so they face
    identical channel occupancy, sensing noise, and fading -- the paired
    comparison the paper's figures rely on.
    """
    result = SweepResult(parameter=parameter, values=list(values))
    for scheme in schemes:
        result.summaries[scheme] = []
    for value in values:
        if configure is not None:
            point_config = configure(base_config, value)
        else:
            point_config = base_config.replace(**{parameter: value})
        for scheme in schemes:
            runner = MonteCarloRunner(point_config.with_scheme(scheme), n_runs=n_runs)
            result.summaries[scheme].append(runner.summary())
    return result
