"""Tests for the slot-problem data model."""

import math

import pytest

from repro.core.problem import (
    Allocation,
    SlotProblem,
    UserDemand,
    check_feasible,
    evaluate_objective,
)
from repro.utils.errors import ConfigurationError
from tests.conftest import make_problem, make_user


class TestUserDemand:
    def test_valid(self):
        user = make_user()
        assert user.fbs_id == 1

    def test_mbs_id_rejected(self):
        with pytest.raises(ConfigurationError):
            make_user(fbs_id=0)

    def test_nonpositive_state_rejected(self):
        with pytest.raises(ConfigurationError):
            make_user(w_prev=0.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            make_user(success_mbs=1.2)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            make_user(r_mbs=-0.1)

    def test_zero_rates_allowed(self):
        # Saturated GOP: no data left to send.
        user = make_user(r_mbs=0.0, r_fbs=0.0)
        assert user.r_mbs == 0.0

    def test_csi_optional_and_validated(self):
        assert make_user().csi_mbs is None
        assert make_user(csi_mbs=1.5, csi_fbs=0.2).csi_mbs == 1.5
        with pytest.raises(ConfigurationError):
            make_user(csi_mbs=-1.0)


class TestSlotProblem:
    def test_structure(self):
        problem = make_problem(4, n_fbss=2)
        assert problem.n_users == 4
        assert problem.fbs_ids == [1, 2]
        assert len(problem.users_of_fbs(1)) == 2

    def test_g_for_user(self):
        problem = make_problem(2, g=3.5)
        assert problem.g_for_user(problem.users[0]) == 3.5

    def test_with_expected_channels(self):
        problem = make_problem(2)
        updated = problem.with_expected_channels({1: 9.0})
        assert updated.expected_channels[1] == 9.0
        assert problem.expected_channels[1] == 2.0  # original untouched

    def test_empty_users_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotProblem(users=[], expected_channels={})

    def test_duplicate_users_rejected(self):
        users = [make_user(0), make_user(0)]
        with pytest.raises(ConfigurationError):
            SlotProblem(users=users, expected_channels={1: 1.0})

    def test_missing_g_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotProblem(users=[make_user(fbs_id=2)], expected_channels={1: 1.0})

    def test_negative_g_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotProblem(users=[make_user()], expected_channels={1: -0.5})


class TestObjective:
    def test_expected_log_gain(self):
        user = make_user(w_prev=30.0, success_mbs=0.8, r_mbs=1.0)
        problem = SlotProblem(users=[user], expected_channels={1: 2.0})
        allocation = Allocation(mbs_user_ids={0}, rho_mbs={0: 0.5}, rho_fbs={})
        expected = 0.8 * (math.log(30.5) - math.log(30.0))
        assert evaluate_objective(problem, allocation) == pytest.approx(expected)

    def test_zero_allocation_zero_objective(self):
        problem = make_problem(3)
        allocation = Allocation(mbs_user_ids=set(), rho_mbs={}, rho_fbs={})
        assert evaluate_objective(problem, allocation) == pytest.approx(0.0)

    def test_only_selected_branch_counts(self):
        user = make_user(w_prev=30.0, success_fbs=0.9, r_fbs=1.0)
        problem = SlotProblem(users=[user], expected_channels={1: 2.0})
        # User on FBS: any stray rho_mbs value is ignored by the objective.
        allocation = Allocation(mbs_user_ids=set(), rho_mbs={0: 0.7}, rho_fbs={0: 0.5})
        expected = 0.9 * (math.log(30.0 + 0.5 * 2.0) - math.log(30.0))
        assert evaluate_objective(problem, allocation) == pytest.approx(expected)


class TestFeasibility:
    def test_feasible_passes(self):
        problem = make_problem(2)
        allocation = Allocation(mbs_user_ids={0}, rho_mbs={0: 1.0}, rho_fbs={1: 1.0})
        check_feasible(problem, allocation)

    def test_mbs_oversubscription_detected(self):
        problem = make_problem(2)
        allocation = Allocation(mbs_user_ids={0, 1},
                                rho_mbs={0: 0.7, 1: 0.7}, rho_fbs={})
        with pytest.raises(ConfigurationError, match="common-channel"):
            check_feasible(problem, allocation)

    def test_fbs_oversubscription_detected(self):
        problem = make_problem(2)
        allocation = Allocation(mbs_user_ids=set(), rho_mbs={},
                                rho_fbs={0: 0.6, 1: 0.6})
        with pytest.raises(ConfigurationError, match="FBS 1"):
            check_feasible(problem, allocation)

    def test_negative_share_detected(self):
        problem = make_problem(1)
        allocation = Allocation(mbs_user_ids={0}, rho_mbs={0: -0.2}, rho_fbs={})
        with pytest.raises(ConfigurationError, match="negative"):
            check_feasible(problem, allocation)

    def test_stray_share_on_unselected_station_detected(self):
        problem = make_problem(1)
        allocation = Allocation(mbs_user_ids={0}, rho_mbs={0: 0.5},
                                rho_fbs={0: 0.5})
        with pytest.raises(ConfigurationError, match="Theorem 1"):
            check_feasible(problem, allocation)


class TestAllocationHelpers:
    def test_time_share_and_uses_mbs(self):
        problem = make_problem(2)
        allocation = Allocation(mbs_user_ids={0}, rho_mbs={0: 0.4}, rho_fbs={1: 0.6})
        assert allocation.uses_mbs(0)
        assert not allocation.uses_mbs(1)
        assert allocation.time_share(problem.users[0]) == 0.4
        assert allocation.time_share(problem.users[1]) == 0.6
