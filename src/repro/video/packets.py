"""NAL-unit packetisation of MGS streams.

MGS scalability is *NAL-unit granular* (Section I): a GOP's enhancement
data is a sequence of discrete NAL units of decreasing significance, and
receivers decode any prefix of that sequence.  The paper's scheduler sends
packets in decreasing significance order with retransmissions, discarding
overdue ones.

The allocation algorithms operate on the fluid rate model of eq. (9), but
the simulator uses this module to account for the discrete NAL boundary:
the realised quality of a GOP is the PSNR of the largest fully received
NAL prefix, which is eq. (9) rounded down to a packet boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.utils.errors import ConfigurationError
from repro.video.sequences import VideoSequence


@dataclass(frozen=True)
class NalPacket:
    """One MGS NAL unit of a GOP's enhancement data.

    Attributes
    ----------
    index:
        Significance rank within the GOP (0 = most significant).
    size_bits:
        Payload size in bits.
    psnr_gain_db:
        Quality added when this unit (and all more significant ones) is
        received -- the linear model's slope times the unit's rate share.
    """

    index: int
    size_bits: int
    psnr_gain_db: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"index must be non-negative, got {self.index}")
        if self.size_bits <= 0:
            raise ConfigurationError(f"size_bits must be positive, got {self.size_bits}")
        if self.psnr_gain_db < 0:
            raise ConfigurationError(
                f"psnr_gain_db must be non-negative, got {self.psnr_gain_db}")


def packetize_gop(sequence: VideoSequence, *, enhancement_rate_mbps: float,
                  packet_size_bits: int = 8000) -> List[NalPacket]:
    """Split one GOP's enhancement layer into NAL packets.

    Parameters
    ----------
    sequence:
        The encoded sequence (provides GOP duration and the R-D slope).
    enhancement_rate_mbps:
        Encoding rate of the MGS enhancement layer.
    packet_size_bits:
        Nominal NAL-unit size; the last unit absorbs the remainder.

    Returns
    -------
    list of NalPacket
        Units in decreasing significance order.  Under the linear model
        every received bit is worth the same quality, so each unit's gain
        is proportional to its size.
    """
    if enhancement_rate_mbps < 0:
        raise ConfigurationError(
            f"enhancement_rate_mbps must be non-negative, got {enhancement_rate_mbps}")
    if packet_size_bits <= 0:
        raise ConfigurationError(
            f"packet_size_bits must be positive, got {packet_size_bits}")
    total_bits = int(round(enhancement_rate_mbps * 1e6 * sequence.gop_duration_s))
    if total_bits == 0:
        return []
    db_per_bit = (sequence.rd.beta_db_per_mbps
                  / (1e6 * sequence.gop_duration_s))
    packets: List[NalPacket] = []
    offset = 0
    index = 0
    while offset < total_bits:
        size = min(packet_size_bits, total_bits - offset)
        packets.append(NalPacket(
            index=index,
            size_bits=size,
            psnr_gain_db=db_per_bit * size,
        ))
        offset += size
        index += 1
    return packets


def received_psnr(sequence: VideoSequence, packets: List[NalPacket],
                  received_count: int) -> float:
    """GOP PSNR when the first ``received_count`` packets arrived in order.

    This is eq. (9) quantised to the NAL boundary: base-layer quality plus
    the gains of the fully received significance prefix.
    """
    if received_count < 0:
        raise ConfigurationError(
            f"received_count must be non-negative, got {received_count}")
    received_count = min(received_count, len(packets))
    gain = sum(packet.psnr_gain_db for packet in packets[:received_count])
    return sequence.base_psnr_db + gain
