"""Spectrum sensing and opportunistic access.

Implements Section III-B (per-sensor hypothesis tests with false-alarm and
miss-detection probabilities, Bayesian fusion of multiple sensing results,
eqs. (2)-(4)) and Section III-C (the probabilistic access policy that caps
primary-user collision probability, eqs. (5)-(7)).
"""

from repro.sensing.access import AccessDecision, AccessPolicy
from repro.sensing.assignment import assign_sensors_round_robin
from repro.sensing.detector import SensingResult, SpectrumSensor
from repro.sensing.fusion import (
    fuse_iterative,
    fuse_posterior,
    posterior_idle_probability,
)

__all__ = [
    "AccessDecision",
    "AccessPolicy",
    "SensingResult",
    "SpectrumSensor",
    "assign_sensors_round_robin",
    "fuse_iterative",
    "fuse_posterior",
    "posterior_idle_probability",
]
