"""The repro.* logger hierarchy and its handler lifecycle."""

import io
import logging

import pytest

from repro.obs.logging import (
    ROOT_LOGGER,
    configure_logging,
    get_logger,
    reset_logging,
    resolve_level,
)


class TestHierarchy:
    def test_names_root_under_repro(self):
        assert get_logger("sim.runner").name == "repro.sim.runner"

    def test_module_dunder_name_used_as_is(self):
        assert get_logger("repro.exec.executor").name == "repro.exec.executor"
        assert get_logger(ROOT_LOGGER).name == ROOT_LOGGER

    def test_silent_by_default(self):
        # Library contract: a NullHandler on the root, nothing on stderr.
        root = logging.getLogger(ROOT_LOGGER)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestResolveLevel:
    def test_names_and_ints(self):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("WARNING") == logging.WARNING
        assert resolve_level(logging.ERROR) == logging.ERROR

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_level("chatty")


class TestConfigureLogging:
    def test_child_messages_reach_configured_stream(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("sim.runner").info("sweep %s: %d cells", "fig4b", 30)
        output = stream.getvalue()
        assert "repro.sim.runner" in output
        assert "sweep fig4b: 30 cells" in output
        assert "INFO" in output

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        logger = get_logger("sim.fallback")
        logger.info("invisible")
        logger.warning("slot 3: proposed degraded")
        output = stream.getvalue()
        assert "invisible" not in output
        assert "degraded" in output

    def test_reconfigure_replaces_handler_not_stacks(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("info", stream=first)
        configure_logging("info", stream=second)
        get_logger("cli").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_reset_removes_handler(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        reset_logging()
        get_logger("cli").info("after reset")
        assert stream.getvalue() == ""
