"""Fig. 6(a) -- quality vs utilisation, three interfering FBSs.

Paper claims: all curves decrease with eta; proposed best; heuristic 2
(global decisions) above heuristic 1 (local decisions); the eq. (23)
upper bound sits above the proposed curve.
"""

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.experiments.fig6 import run_fig6a
from repro.experiments.report import format_sweep


def test_bench_fig6a(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6a(n_runs=BENCH_RUNS, n_gops=BENCH_GOPS, seed=BENCH_SEED),
        rounds=1, iterations=1)
    report("Fig. 6(a): Y-PSNR (dB) vs utilisation eta, interfering FBSs",
           format_sweep(result, upper_bound=True, value_format="eta={}"))

    proposed = result.series("proposed-fast")
    bound = result.upper_bound_series("proposed-fast")
    # Decreasing in eta; proposed wins overall; bound dominates proposed.
    assert proposed[0] > proposed[-1]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(proposed) > mean(result.series("heuristic1"))
    assert mean(proposed) > mean(result.series("heuristic2"))
    for ub, value in zip(bound, proposed):
        assert ub >= value - 1e-9
