"""Per-sensor spectrum-detection model.

Section III-B models each sensing attempt as a binary hypothesis test on
channel ``m`` -- ``H0`` (idle) vs ``H1`` (busy) -- characterised by two
error probabilities:

* **false alarm** ``epsilon``:  ``Pr{Theta = 1 | H0}`` -- an idle channel is
  reported busy and a spectrum opportunity is wasted;
* **miss detection** ``delta``:  ``Pr{Theta = 0 | H1}`` -- a busy channel is
  reported idle, risking collision with primary users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spectrum.markov import BUSY, IDLE
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomState, as_generator, batched_uniform
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class SensingResult:
    """One sensing observation ``Theta_i^m`` with its error profile.

    Attributes
    ----------
    channel:
        Licensed-channel index that was sensed.
    observation:
        Reported state: 0 (idle) or 1 (busy); the paper's ``Theta``.
    false_alarm:
        The reporting sensor's false-alarm probability ``epsilon_i^m``.
    miss_detection:
        The reporting sensor's miss-detection probability ``delta_i^m``.
    sensor_id:
        Identifier of the sensing node (CR user or FBS antenna).
    """

    channel: int
    observation: int
    false_alarm: float
    miss_detection: float
    sensor_id: int = -1

    def __post_init__(self) -> None:
        if self.observation not in (IDLE, BUSY):
            raise ConfigurationError(
                f"observation must be 0 or 1, got {self.observation!r}")
        check_probability(self.false_alarm, "false_alarm")
        check_probability(self.miss_detection, "miss_detection")

    @property
    def likelihood_ratio(self) -> float:
        """Likelihood ratio ``Pr{Theta | H1} / Pr{Theta | H0}``.

        This is the per-observation factor inside the product of eq. (2):
        ``delta^(1-Theta) (1-delta)^Theta / (eps^Theta (1-eps)^(1-Theta))``.
        """
        if self.observation == BUSY:
            numerator = 1.0 - self.miss_detection
            denominator = self.false_alarm
        else:
            numerator = self.miss_detection
            denominator = 1.0 - self.false_alarm
        if denominator == 0.0:
            return np.inf if numerator > 0.0 else 1.0
        return numerator / denominator


class SpectrumSensor:
    """A sensing front end with fixed error probabilities.

    Each CR user carries one software-radio transceiver and senses exactly
    one licensed channel per slot; each FBS has ``M`` antennas and may sense
    all channels (Section III-A/B).  Both are modelled by this class -- the
    owner decides how many channels to sense per slot.

    Parameters
    ----------
    false_alarm:
        ``epsilon`` -- probability of reporting busy when the channel is idle.
    miss_detection:
        ``delta`` -- probability of reporting idle when the channel is busy.
    sensor_id:
        Identifier propagated into :class:`SensingResult`.
    rng:
        Randomness source for observation noise.
    """

    def __init__(self, false_alarm: float, miss_detection: float, *,
                 sensor_id: int = -1, rng: RandomState = None) -> None:
        self.false_alarm = check_probability(false_alarm, "false_alarm")
        self.miss_detection = check_probability(miss_detection, "miss_detection")
        self.sensor_id = int(sensor_id)
        self._rng = as_generator(rng)

    def sense(self, channel: int, true_state: int) -> SensingResult:
        """Observe ``channel`` whose true occupancy is ``true_state``.

        Returns a noisy :class:`SensingResult` according to the sensor's
        error probabilities.
        """
        if true_state not in (IDLE, BUSY):
            raise ConfigurationError(f"true_state must be 0 or 1, got {true_state!r}")
        if true_state == IDLE:
            observation = BUSY if self._rng.random() < self.false_alarm else IDLE
        else:
            observation = IDLE if self._rng.random() < self.miss_detection else BUSY
        return SensingResult(
            channel=int(channel),
            observation=observation,
            false_alarm=self.false_alarm,
            miss_detection=self.miss_detection,
            sensor_id=self.sensor_id,
        )

    def sense_batched(self, true_states) -> np.ndarray:
        """Batched counterpart of :meth:`sense` over many observations.

        Consumes the sensor's RNG stream exactly like the equivalent
        sequence of scalar :meth:`sense` calls (one uniform per
        observation, in order), so the two are interchangeable
        mid-simulation.  Returns the raw observation vector instead of
        :class:`SensingResult` objects -- skipping the per-observation
        dataclass construction is most of the batched backend's win.
        """
        return sense_observations_batched(
            true_states, self.false_alarm, self.miss_detection, rng=self._rng)

    def error_profile(self) -> tuple:
        """The ``(epsilon, delta)`` pair of this sensor."""
        return (self.false_alarm, self.miss_detection)

    def __repr__(self) -> str:
        return (f"SpectrumSensor(id={self.sensor_id}, epsilon={self.false_alarm}, "
                f"delta={self.miss_detection})")


def sense_observations_batched(true_states, false_alarm: float,
                               miss_detection: float, *,
                               rng: RandomState = None) -> np.ndarray:
    """Realise many sensing observations with one RNG call.

    ``true_states[k]`` is the true occupancy seen by observation ``k``;
    all observations share one ``(epsilon, delta)`` error profile (the
    paper's evaluation uses identical sensors).  The function draws
    ``len(true_states)`` uniforms via :func:`~repro.utils.rng.batched_uniform`
    and applies the same decision rule as :meth:`SpectrumSensor.sense`:

    * idle channel: report busy iff ``u < epsilon`` (false alarm);
    * busy channel: report idle iff ``u < delta`` (miss detection).

    Because the uniform draws and the comparisons are identical to the
    scalar path's, the returned observation vector -- and the RNG state
    afterwards -- are bit-identical to the equivalent ``sense`` loop.
    """
    false_alarm = check_probability(false_alarm, "false_alarm")
    miss_detection = check_probability(miss_detection, "miss_detection")
    states = np.asarray(true_states)
    if states.ndim != 1:
        raise ConfigurationError(
            f"true_states must be one-dimensional, got shape {states.shape}")
    invalid = (states != IDLE) & (states != BUSY)
    if states.size and invalid.any():
        raise ConfigurationError(
            f"true_state must be 0 or 1, got {states[invalid][0]!r}")
    draws = batched_uniform(as_generator(rng), states.size)
    # idle: observation = (u < eps); busy: observation = not (u < delta).
    observations = np.where(states == IDLE,
                            draws < false_alarm,
                            ~(draws < miss_detection))
    return observations.astype(np.int8)
