"""Tests for the exhaustive reference oracle."""

import pytest

from repro.core.problem import check_feasible
from repro.core.reference import exhaustive_reference_solution, solve_given_assignment
from repro.utils.errors import ConfigurationError
from tests.conftest import make_problem, make_user
from repro.core.problem import SlotProblem


class TestSolveGivenAssignment:
    def test_assignment_respected(self):
        problem = make_problem(3)
        allocation = solve_given_assignment(problem, {0, 2})
        assert allocation.mbs_user_ids == {0, 2}
        assert set(allocation.rho_mbs) == {0, 2}
        assert set(allocation.rho_fbs) == {1}
        check_feasible(problem, allocation)

    def test_unknown_user_rejected(self):
        problem = make_problem(2)
        with pytest.raises(ConfigurationError):
            solve_given_assignment(problem, {99})

    def test_empty_assignment_all_on_fbs(self):
        problem = make_problem(3)
        allocation = solve_given_assignment(problem, set())
        assert not allocation.rho_mbs
        assert sum(allocation.rho_fbs.values()) == pytest.approx(1.0)

    def test_per_fbs_budgets_independent(self):
        problem = make_problem(4, n_fbss=2)
        allocation = solve_given_assignment(problem, set())
        for fbs_id in (1, 2):
            cell = problem.users_of_fbs(fbs_id)
            total = sum(allocation.rho_fbs[u.user_id] for u in cell)
            assert total == pytest.approx(1.0)

    def test_zero_g_fbs_gets_zero_value_users(self):
        users = [make_user(0, success_fbs=0.9, r_fbs=1.0)]
        problem = SlotProblem(users=users, expected_channels={1: 0.0})
        allocation = solve_given_assignment(problem, set())
        assert allocation.objective == pytest.approx(0.0)


class TestExhaustive:
    def test_beats_every_assignment(self):
        problem = make_problem(4, n_fbss=2, seed=3)
        best = exhaustive_reference_solution(problem)
        import itertools
        ids = [u.user_id for u in problem.users]
        for pattern in itertools.product((False, True), repeat=4):
            assignment = {i for i, on in zip(ids, pattern) if on}
            candidate = solve_given_assignment(problem, assignment)
            assert candidate.objective <= best.objective + 1e-12

    def test_guard_against_large_instances(self):
        problem = make_problem(5)
        with pytest.raises(ConfigurationError):
            exhaustive_reference_solution(problem, max_users=4)

    def test_single_user(self):
        problem = make_problem(1, seed=9)
        best = exhaustive_reference_solution(problem)
        check_feasible(problem, best)
        assert best.objective >= 0.0
