"""OFDM slot-rate model (Section IV-A).

The paper adopts OFDM across the licensed channels: an FBS transmitting to
user ``j`` for a fraction ``rho`` of the slot on ``G_t`` (expected)
available channels of bandwidth ``B1`` delivers ``rho * G_t * B1`` Mbps of
video data; the MBS delivers ``rho * B0`` on the single common channel.
The constants ``R_{0,j} = beta_j B0 / T`` and ``R_{1,j} = beta_j B1 / T``
in problem (10) fold the video's rate-distortion slope ``beta_j`` and the
GOP deadline ``T`` into per-slot *PSNR increments*; those live in
:mod:`repro.video.rd_model`.  Here we keep the raw throughput arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_in_range, check_positive


def slot_rate_mbps(time_share: float, bandwidth_mbps: float,
                   expected_channels: float = 1.0) -> float:
    """Throughput of one link in one slot.

    Parameters
    ----------
    time_share:
        Fraction ``rho`` of the slot allocated to the link, in ``[0, 1]``.
    bandwidth_mbps:
        Per-channel capacity (``B0`` for the MBS link, ``B1`` for FBS links).
    expected_channels:
        ``G_t`` for FBS links (OFDM across all accessed channels); 1 for
        the single common channel.
    """
    time_share = check_in_range(time_share, "time_share", 0.0, 1.0)
    bandwidth_mbps = check_positive(bandwidth_mbps, "bandwidth_mbps", allow_zero=True)
    if expected_channels < 0.0:
        raise ConfigurationError(
            f"expected_channels must be non-negative, got {expected_channels}")
    return time_share * bandwidth_mbps * float(expected_channels)


def slot_rates_mbps(time_shares, bandwidth_mbps: float,
                    expected_channels=1.0) -> np.ndarray:
    """Vectorized :func:`slot_rate_mbps` over many links at once.

    Element-identical to the scalar function (the ``rho * B * G``
    product is the same IEEE-754 multiplication chain); used when a
    sweep or scheduler needs every link's slot throughput in one shot.
    """
    shares = np.asarray(time_shares, dtype=float)
    if shares.size and (np.any(shares < 0.0) or np.any(shares > 1.0)):
        raise ConfigurationError(
            f"time shares must lie in [0, 1], got range "
            f"[{shares.min()!r}, {shares.max()!r}]")
    bandwidth_mbps = check_positive(bandwidth_mbps, "bandwidth_mbps", allow_zero=True)
    expected = np.asarray(expected_channels, dtype=float)
    if expected.size and np.any(expected < 0.0):
        raise ConfigurationError(
            f"expected_channels must be non-negative, got min {expected.min()!r}")
    return shares * bandwidth_mbps * expected


def gop_bits(bandwidth_mbps: float, n_slots: int, slot_duration_s: float = 1e-2) -> float:
    """Total bits deliverable on one channel over a GOP window of ``n_slots``.

    Utility for packet-level accounting in :mod:`repro.video.packets`.
    """
    bandwidth_mbps = check_positive(bandwidth_mbps, "bandwidth_mbps", allow_zero=True)
    slot_duration_s = check_positive(slot_duration_s, "slot_duration_s")
    if n_slots < 0:
        raise ConfigurationError(f"n_slots must be non-negative, got {n_slots}")
    return bandwidth_mbps * 1e6 * slot_duration_s * n_slots
