"""Exact reference solvers ("oracles") for the per-slot problem.

Two building blocks:

* :func:`water_filling` -- given the binary base-station assignment, each
  base station's subproblem is a weighted log-utility water-filling over
  the slot simplex, solved exactly in closed form by a breakpoint scan on
  the KKT multiplier.
* :func:`exhaustive_reference_solution` -- enumerate all ``2^K`` binary
  assignments (Theorem 1: the optimal ``p`` is binary, so this search is
  exact for problem (12)/(17)) and water-fill each.  Exponential in ``K``,
  intended for tests and small instances only.

The distributed dual algorithm (Tables I/II) is validated against these in
the test suite; the greedy bound checks of Theorem 2 use them to compute
true optima on small interfering instances.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence, Tuple

from repro.core.problem import Allocation, SlotProblem, UserDemand
from repro.utils.errors import ConfigurationError



def water_filling(weights: Sequence[float], bases: Sequence[float],
                  slopes: Sequence[float]) -> Tuple[List[float], float]:
    """Maximise ``sum_j weights_j * [log(bases_j + rho_j slopes_j) - log(bases_j)]``.

    Subject to ``sum_j rho_j <= 1`` and ``rho >= 0``.  This is the
    per-base-station subproblem of (12)/(17) once the assignment is fixed:
    ``weights`` are link success probabilities ``bar P^F``, ``bases`` the
    PSNR states ``W_j``, ``slopes`` the effective per-slot increments
    (``R_{0,j}`` on the MBS, ``G_i * R_{i,j}`` on an FBS).  The
    ``- log(bases_j)`` normalisation makes the value the expected
    log-PSNR *gain* (see :mod:`repro.core.problem`); it is constant in
    ``rho`` and does not affect the optimiser.

    Returns
    -------
    (rho, value):
        The optimal shares and the attained objective value.  Users with
        zero weight or zero slope receive zero share and contribute zero
        value.
    """
    n = len(weights)
    if not (len(bases) == len(slopes) == n):
        raise ConfigurationError(
            f"weights/bases/slopes must have equal length, got "
            f"{n}/{len(bases)}/{len(slopes)}")
    for j in range(n):
        if bases[j] <= 0:
            raise ConfigurationError(f"bases[{j}] must be positive, got {bases[j]}")
        if weights[j] < 0 or slopes[j] < 0:
            raise ConfigurationError("weights and slopes must be non-negative")
    active = [j for j in range(n) if weights[j] > 0 and slopes[j] > 0]
    rho = [0.0] * n
    if active:
        # KKT: rho_j(lam) = (w_j / lam - c_j)^+ with c_j = W_j / s_j; the
        # budget always binds under log utility, so lam solves
        # sum_{j in S} (w_j / lam - c_j) = 1 over the active set
        # S = {j : w_j / c_j > lam}.  Scanning users in decreasing order
        # of their activation breakpoint w_j / c_j, exactly one prefix
        # yields lam = sum(w) / (1 + sum(c)) consistent with its own
        # membership -- an exact O(K log K) water-filling.
        costs = {j: bases[j] / slopes[j] for j in active}
        order = sorted(active, key=lambda j: weights[j] / costs[j], reverse=True)
        weight_sum = 0.0
        cost_sum = 0.0
        lam = None
        members = 0
        for position, j in enumerate(order):
            weight_sum += weights[j]
            cost_sum += costs[j]
            candidate = weight_sum / (1.0 + cost_sum)
            next_breakpoint = (weights[order[position + 1]] / costs[order[position + 1]]
                               if position + 1 < len(order) else 0.0)
            if candidate >= next_breakpoint:
                lam = candidate
                members = position + 1
                break
        if lam is None or lam <= 0.0:
            # Subnormal weights/slopes underflowed the water level; the
            # utilities involved are ~0, so any feasible choice is optimal
            # to machine precision -- serve the best-breakpoint user.
            rho[order[0]] = 1.0
        else:
            raw = [max(0.0, weights[j] / lam - costs[j]) for j in order[:members]]
            raw_total = sum(raw)
            if raw_total > 0.0:
                # Snap the rounding residual onto the simplex boundary.
                raw = [r / raw_total for r in raw]
            for j, share in zip(order[:members], raw):
                rho[j] = share
    value = sum(weights[j] * math.log1p(rho[j] * slopes[j] / bases[j]) for j in range(n))
    return rho, value


def solve_given_assignment(problem: SlotProblem, mbs_user_ids) -> Allocation:
    """Exact solution of (17) for a fixed binary base-station assignment.

    Parameters
    ----------
    problem:
        The slot problem.
    mbs_user_ids:
        Users with ``p_j = 1`` (scheduled on the MBS); everyone else is on
        their associated FBS.
    """
    mbs_user_ids = set(mbs_user_ids)
    known = {user.user_id for user in problem.users}
    unknown = mbs_user_ids - known
    if unknown:
        raise ConfigurationError(f"assignment references unknown users {sorted(unknown)}")
    rho_mbs: Dict[int, float] = {}
    rho_fbs: Dict[int, float] = {}
    objective = 0.0

    mbs_users = [user for user in problem.users if user.user_id in mbs_user_ids]
    shares, value = water_filling(
        [user.success_mbs for user in mbs_users],
        [user.w_prev for user in mbs_users],
        [user.r_mbs for user in mbs_users],
    ) if mbs_users else ([], 0.0)
    for user, share in zip(mbs_users, shares):
        rho_mbs[user.user_id] = share
    objective += value

    for fbs_id in problem.fbs_ids:
        cell_users = [user for user in problem.users_of_fbs(fbs_id)
                      if user.user_id not in mbs_user_ids]
        if not cell_users:
            continue
        g_i = problem.expected_channels[fbs_id]
        shares, value = water_filling(
            [user.success_fbs for user in cell_users],
            [user.w_prev for user in cell_users],
            [g_i * user.r_fbs for user in cell_users],
        )
        for user, share in zip(cell_users, shares):
            rho_fbs[user.user_id] = share
        objective += value

    return Allocation(mbs_user_ids=mbs_user_ids, rho_mbs=rho_mbs,
                      rho_fbs=rho_fbs, objective=objective)


def exhaustive_reference_solution(problem: SlotProblem, *,
                                  max_users: int = 16) -> Allocation:
    """Globally optimal solution by enumerating all binary assignments.

    By Theorem 1 the optimum of (12)/(17) has every ``p_j`` in ``{0, 1}``,
    so enumerating the ``2^K`` assignments and exactly water-filling each
    is an exact (if exponential) algorithm.

    Raises
    ------
    ConfigurationError
        If ``K > max_users`` -- the guard against accidentally launching an
        exponential search on a large instance.
    """
    if problem.n_users > max_users:
        raise ConfigurationError(
            f"exhaustive search limited to {max_users} users, got {problem.n_users}")
    user_ids = [user.user_id for user in problem.users]
    best: Allocation = None
    for pattern in itertools.product((False, True), repeat=len(user_ids)):
        assignment = {uid for uid, on_mbs in zip(user_ids, pattern) if on_mbs}
        candidate = solve_given_assignment(problem, assignment)
        if best is None or candidate.objective > best.objective:
            best = candidate
    return best
