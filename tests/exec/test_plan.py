"""Tests for sweep planning: flattening, determinism, picklability."""

import pickle

import pytest

from repro.exec.plan import (
    CAMPAIGN_PARAMETER,
    Cell,
    ensure_picklable,
    plan_campaign,
    plan_sweep,
)
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.runner import execute_run
from repro.utils.errors import ConfigurationError


class TestPlanSweep:
    def test_grid_is_complete_and_ordered(self, single_config):
        plan = plan_sweep(single_config, "n_channels", [4, 8],
                          ["heuristic1", "heuristic2"], n_runs=3)
        assert plan.n_cells == 2 * 2 * 3
        # Historical serial loop order: point, then scheme, then run.
        expected = [
            (point, scheme, run)
            for point in (0, 1)
            for scheme in ("heuristic1", "heuristic2")
            for run in (0, 1, 2)
        ]
        actual = [(c.point_index, c.scheme, c.run_index) for c in plan.cells]
        assert actual == expected

    def test_keys_unique_and_canonical(self, single_config):
        plan = plan_sweep(single_config, "n_channels", [4, 8],
                          ["heuristic1"], n_runs=2)
        keys = [cell.key for cell in plan.cells]
        assert len(set(keys)) == plan.n_cells
        assert keys[0] == SweepCheckpoint.cell_key("heuristic1", 0, 0)

    def test_configs_are_derived(self, single_config):
        plan = plan_sweep(single_config, "n_channels", [4, 8],
                          ["heuristic1", "heuristic2"], n_runs=1)
        for cell in plan.cells:
            assert cell.config.scheme == cell.scheme
            assert cell.config.n_channels == (4, 8)[cell.point_index]
            assert cell.config.seed == single_config.seed

    def test_configure_hook_applied_at_plan_time(self, single_config):
        from repro.experiments.scenarios import utilization_to_p01
        plan = plan_sweep(
            single_config, "utilization", [0.3, 0.6], ["heuristic1"],
            n_runs=1,
            configure=lambda cfg, eta: cfg.replace(p01=utilization_to_p01(eta)))
        p01s = [cell.config.p01 for cell in plan.cells]
        assert p01s == [utilization_to_p01(0.3), utilization_to_p01(0.6)]
        # The lambda never needs to cross a process boundary: the derived
        # configs themselves pickle fine.
        ensure_picklable(plan.cells)

    def test_planning_is_deterministic(self, single_config):
        a = plan_sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=2)
        b = plan_sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=2)
        assert [c.key for c in a.cells] == [c.key for c in b.cells]

    def test_empty_grid_rejected(self, single_config):
        with pytest.raises(ConfigurationError):
            plan_sweep(single_config, "n_channels", [], ["heuristic1"])
        with pytest.raises(ConfigurationError):
            plan_sweep(single_config, "n_channels", [4], [])
        with pytest.raises(ConfigurationError):
            plan_sweep(single_config, "n_channels", [4], ["heuristic1"],
                       n_runs=0)


class TestPlanCampaign:
    def test_one_cell_per_replication(self, single_config):
        plan = plan_campaign(single_config, 4)
        assert plan.parameter == CAMPAIGN_PARAMETER
        assert plan.n_cells == 4
        assert [c.run_index for c in plan.cells] == [0, 1, 2, 3]
        assert all(c.scheme == single_config.scheme for c in plan.cells)
        assert all(c.point_index == 0 for c in plan.cells)

    def test_invalid_n_runs(self, single_config):
        with pytest.raises(ConfigurationError):
            plan_campaign(single_config, 0)


class TestPicklability:
    def test_plain_config_round_trips_through_pickle(self, single_config):
        """A paper-scenario config survives the process boundary exactly."""
        cell = Cell(scheme="heuristic1", point_index=0, run_index=1,
                    config=single_config.with_scheme("heuristic1"))
        restored = pickle.loads(pickle.dumps(cell))
        assert restored.key == cell.key
        assert restored.config.seed == cell.config.seed
        assert restored.config.n_channels == cell.config.n_channels
        # The restored config drives the engine to the identical result.
        original, _ = execute_run(cell.config, cell.run_index)
        roundtrip, _ = execute_run(restored.config, restored.run_index)
        assert roundtrip.mean_psnr == original.mean_psnr
        assert roundtrip.per_user_psnr == original.per_user_psnr

    def test_non_picklable_config_raises_clearly(self, single_config):
        poisoned = single_config.replace(fault_plan=lambda slot: False)
        cell = Cell(scheme=poisoned.scheme, point_index=0, run_index=0,
                    config=poisoned)
        with pytest.raises(ConfigurationError, match="--jobs 1"):
            ensure_picklable([cell])
