"""Complexity/scaling measurements of the core algorithms.

Verifies the paper's complexity statements empirically:

* the per-user subproblem of Table I is closed form, so one subgradient
  iteration is O(K) -- solve time grows roughly linearly in K;
* the greedy channel allocation's Q-evaluation count stays within the
  paper's O(N^2 M^2) worst case (and far below it with the
  best-channel-per-FBS reduction).
"""

import time

import numpy as np

from benchmarks.conftest import report
from repro.core.dual import DualDecompositionSolver, fast_solve
from repro.core.greedy import GreedyChannelAllocator
from repro.core.problem import SlotProblem, UserDemand
from repro.net.interference import interference_graph_from_edges


def make_problem(n_users, n_fbss=1, seed=0):
    rng = np.random.default_rng(seed)
    users = [
        UserDemand(
            user_id=j, fbs_id=1 + j % n_fbss,
            w_prev=26.0 + 8.0 * rng.random(),
            success_mbs=0.5 + 0.4 * rng.random(),
            success_fbs=0.6 + 0.4 * rng.random(),
            r_mbs=float(0.5 + rng.random()),
            r_fbs=float(0.5 + rng.random()))
        for j in range(n_users)
    ]
    return SlotProblem(users=users,
                       expected_channels={i: 2.0 for i in range(1, n_fbss + 1)})


def dual_scaling():
    solver = DualDecompositionSolver()
    rows = []
    for n_users in (2, 8, 32, 128):
        problem = make_problem(n_users)
        start = time.perf_counter()
        solution = solver.solve(problem)
        elapsed = time.perf_counter() - start
        rows.append((n_users, solution.iterations, elapsed))
    return rows


def test_bench_dual_scaling(benchmark):
    rows = benchmark.pedantic(dual_scaling, rounds=1, iterations=1)
    lines = [f"K={n:<5} iterations={iters:<6} wall={elapsed * 1e3:8.2f} ms"
             for n, iters, elapsed in rows]
    report("Scaling: Table I/II solve vs number of users K", "\n".join(lines))
    # 64x more users must not cost anywhere near 64^2 more time
    # (vectorised closed-form subproblems).
    assert rows[-1][2] < rows[0][2] * 64 * 8 + 1.0


def greedy_scaling():
    rows = []
    for n_fbss, n_channels in ((2, 4), (3, 6), (4, 8), (5, 10)):
        chain = interference_graph_from_edges(
            list(range(1, n_fbss + 1)),
            [(i, i + 1) for i in range(1, n_fbss)])
        problem = make_problem(2 * n_fbss, n_fbss=n_fbss, seed=n_fbss)
        posteriors = {m: 0.5 + 0.4 * (m % 3) / 3 for m in range(n_channels)}
        allocator = GreedyChannelAllocator(chain, solver=fast_solve)
        result = allocator.allocate(problem, list(range(n_channels)), posteriors)
        worst_case = (n_fbss * n_channels) ** 2
        rows.append((n_fbss, n_channels, result.evaluations, worst_case))
    return rows


def test_bench_greedy_scaling(benchmark):
    rows = benchmark.pedantic(greedy_scaling, rounds=1, iterations=1)
    lines = [f"N={n_fbss} M={n_channels}: Q evaluations {evals:>5} "
             f"(paper worst case O(N^2 M^2) = {worst})"
             for n_fbss, n_channels, evals, worst in rows]
    report("Scaling: Table III greedy Q-evaluations vs (N, M)", "\n".join(lines))
    for _n, _m, evals, worst in rows:
        assert evals <= worst
