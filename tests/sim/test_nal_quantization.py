"""Tests for NAL-unit quantised quality accounting."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.utils.errors import ConfigurationError
from repro.video.gop import GopClock
from repro.video.rd_model import MgsRateDistortion
from repro.video.sequences import VideoSequence


def make_clock(quantum=0.5, deadline=2, alpha=30.0):
    seq = VideoSequence("t", (352, 288), 30.0, 16,
                        MgsRateDistortion(alpha, 30.0, max_rate_mbps=1.0))
    return GopClock(seq, deadline, quantum_db=quantum)


class TestGopClockQuantum:
    def test_records_whole_quanta_only(self):
        clock = make_clock(quantum=0.5, deadline=1)
        clock.add_quality(1.74)
        clock.tick()
        assert clock.completed_gop_psnrs == [pytest.approx(31.5)]

    def test_exact_multiple_unchanged(self):
        clock = make_clock(quantum=0.5, deadline=1)
        clock.add_quality(2.0)
        clock.tick()
        assert clock.completed_gop_psnrs == [pytest.approx(32.0)]

    def test_zero_quantum_is_fluid(self):
        clock = make_clock(quantum=0.0, deadline=1)
        clock.add_quality(1.74)
        clock.tick()
        assert clock.completed_gop_psnrs == [pytest.approx(31.74)]

    def test_accumulator_not_quantised_mid_window(self):
        clock = make_clock(quantum=0.5, deadline=3)
        clock.add_quality(0.3)
        assert clock.psnr_db == pytest.approx(30.3)

    def test_negative_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            make_clock(quantum=-0.1)


class TestEngineIntegration:
    def test_quantised_never_beats_fluid(self, single_config):
        """Quantisation only discards partially received units."""
        fluid = SimulationEngine(single_config).run()
        quantised = SimulationEngine(
            single_config.replace(nal_quantized=True)).run()
        for user_id in fluid.per_user_psnr:
            assert (quantised.per_user_psnr[user_id]
                    <= fluid.per_user_psnr[user_id] + 1e-9)

    def test_coarser_units_cost_more(self, single_config):
        fine = SimulationEngine(
            single_config.replace(nal_quantized=True, nal_packet_bits=2000)).run()
        coarse = SimulationEngine(
            single_config.replace(nal_quantized=True, nal_packet_bits=64000)).run()
        assert coarse.mean_psnr <= fine.mean_psnr + 1e-9

    def test_quantum_matches_packet_arithmetic(self, single_config):
        """The engine's quantum equals the per-packet gain of the
        packetiser for the same payload size."""
        from repro.video.packets import packetize_gop
        from repro.video.sequences import get_sequence
        config = single_config.replace(nal_quantized=True)
        engine = SimulationEngine(config)
        user = config.topology.users[0]
        sequence = get_sequence(user.sequence_name)
        packets = packetize_gop(sequence, enhancement_rate_mbps=0.3,
                                packet_size_bits=config.nal_packet_bits)
        assert engine.clocks[user.user_id].quantum_db == pytest.approx(
            packets[0].psnr_gain_db)

    def test_invalid_packet_bits(self, single_config):
        with pytest.raises(ConfigurationError):
            single_config.replace(nal_packet_bits=0)
