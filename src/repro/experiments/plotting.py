"""Terminal (ASCII) charts for experiment sweeps.

The benchmark harness and CLI print numeric tables; this module adds a
dependency-free visual rendering so the figure *shapes* -- who is on
top, where curves cross, how fast they fall -- can be eyeballed straight
from a terminal, mirroring the paper's line plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sim.runner import SweepResult
from repro.utils.errors import ConfigurationError

#: Glyphs assigned to series, in order.
_MARKERS = "oxv*#@+%"


def ascii_chart(series: Dict[str, Sequence[float]], *, height: int = 12,
                width: int = 60, y_label: str = "") -> str:
    """Render named series as an ASCII line chart.

    Parameters
    ----------
    series:
        ``{name: values}``; all series must have equal length >= 2.
    height, width:
        Canvas size in characters (plot area, excluding axes).
    y_label:
        Label printed above the y-axis.

    Returns
    -------
    str
        A multi-line chart with a legend; series are drawn as marker
        glyphs, later series over earlier ones on collisions.
    """
    if not series:
        raise ConfigurationError("series must be non-empty")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"all series must have equal length, got {sorted(lengths)}")
    n_points = lengths.pop()
    if n_points < 2:
        raise ConfigurationError("series need at least two points")
    if height < 2 or width < n_points:
        raise ConfigurationError(
            f"canvas {width}x{height} too small for {n_points} points")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(
            f"at most {len(_MARKERS)} series supported, got {len(series)}")

    all_values = [v for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0  # flat chart: centre it

    canvas = [[" "] * width for _ in range(height)]
    columns = [round(i * (width - 1) / (n_points - 1)) for i in range(n_points)]

    def row_of(value: float) -> int:
        fraction = (value - low) / (high - low)
        return (height - 1) - round(fraction * (height - 1))

    legend = []
    for marker, (name, values) in zip(_MARKERS, series.items()):
        legend.append(f"{marker} = {name}")
        for index, value in enumerate(values):
            canvas[row_of(value)][columns[index]] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            axis_value = f"{high:7.2f} |"
        elif row_index == height - 1:
            axis_value = f"{low:7.2f} |"
        else:
            axis_value = "        |"
        lines.append(axis_value + "".join(row))
    lines.append("        +" + "-" * width)
    lines.append("          " + "   ".join(legend))
    return "\n".join(lines)


def chart_sweep(result: SweepResult, *, include_upper_bound: bool = False,
                height: int = 12, width: int = 60) -> str:
    """Chart a :class:`SweepResult`'s mean-PSNR series.

    Parameters
    ----------
    result:
        The sweep to chart.
    include_upper_bound:
        Add the eq. (23) bound series of the first scheme.
    """
    from repro.experiments.report import bound_reference_scheme

    series: Dict[str, List[float]] = {}
    if include_upper_bound:
        reference = bound_reference_scheme(list(result.summaries))
        series["upper bound"] = result.upper_bound_series(reference)
    for scheme in result.summaries:
        series[scheme] = result.series(scheme)
    x_values = ", ".join(str(v) for v in result.values)
    chart = ascii_chart(series, height=height, width=width,
                        y_label="Y-PSNR (dB)")
    return f"{chart}\n          x: {result.parameter} = {x_values}"
