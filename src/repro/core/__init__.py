"""Resource-allocation core: the paper's primary contribution.

* :mod:`repro.core.problem` -- the per-slot convex program (problems (12)
  and (17)) decomposed from the multistage stochastic program (10).
* :mod:`repro.core.dual` -- the optimum-achieving distributed algorithm
  (Tables I and II) via dual decomposition and projected subgradients.
* :mod:`repro.core.greedy` -- the greedy FBS-channel allocation for
  interfering FBSs (Table III).
* :mod:`repro.core.bounds` -- Theorem 2's ``1/(1+D_max)`` guarantee and the
  tighter data-dependent upper bound of eq. (23).
* :mod:`repro.core.heuristics` -- the paper's two comparison schemes.
* :mod:`repro.core.reference` -- exact oracle solver (exhaustive partition
  + water-filling) used to validate the distributed algorithm in tests.
* :mod:`repro.core.allocator` -- scheme registry / facade used by the
  simulation engine.
"""

from repro.core.allocator import SCHEMES, get_allocator
from repro.core.bounds import GreedyTrace, theorem2_factor, tighter_upper_bound
from repro.core.dual import DualDecompositionSolver, DualSolution, fast_solve, flip_polish
from repro.core.greedy import GreedyChannelAllocator, GreedyResult
from repro.core.heuristics import EqualAllocationHeuristic, MultiuserDiversityHeuristic
from repro.core.problem import Allocation, SlotProblem, UserDemand
from repro.core.reference import exhaustive_reference_solution, water_filling

__all__ = [
    "Allocation",
    "DualDecompositionSolver",
    "DualSolution",
    "EqualAllocationHeuristic",
    "GreedyChannelAllocator",
    "GreedyResult",
    "GreedyTrace",
    "MultiuserDiversityHeuristic",
    "SCHEMES",
    "SlotProblem",
    "UserDemand",
    "exhaustive_reference_solution",
    "fast_solve",
    "flip_polish",
    "get_allocator",
    "theorem2_factor",
    "tighter_upper_bound",
    "water_filling",
]
