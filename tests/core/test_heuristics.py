"""Tests for the comparison schemes (Section V)."""

import pytest

from repro.core.heuristics import (
    EqualAllocationHeuristic,
    MultiuserDiversityHeuristic,
    fbs_condition,
    mbs_condition,
)
from repro.core.problem import SlotProblem, check_feasible
from tests.conftest import make_problem, make_user


class TestConditions:
    def test_expected_rate_conditions(self):
        user = make_user(success_mbs=0.8, r_mbs=1.0, success_fbs=0.9, r_fbs=0.5)
        assert mbs_condition(user) == pytest.approx(0.8)
        assert fbs_condition(user, 2.0) == pytest.approx(0.9)

    def test_saturated_user_has_zero_condition(self):
        user = make_user(r_mbs=0.0, r_fbs=0.0)
        assert mbs_condition(user) == 0.0
        assert fbs_condition(user, 3.0) == 0.0


class TestEqualAllocation:
    def test_equal_shares_per_station(self):
        users = [
            make_user(0, success_mbs=0.9, r_mbs=2.0, success_fbs=0.5, r_fbs=0.1),
            make_user(1, success_mbs=0.9, r_mbs=2.0, success_fbs=0.5, r_fbs=0.1),
            make_user(2, success_mbs=0.1, r_mbs=0.1, success_fbs=0.9, r_fbs=2.0),
        ]
        problem = SlotProblem(users=users, expected_channels={1: 1.0})
        allocation = EqualAllocationHeuristic().allocate(problem)
        # Users 0, 1 prefer the MBS; user 2 the FBS.
        assert allocation.mbs_user_ids == {0, 1}
        assert allocation.rho_mbs[0] == pytest.approx(0.5)
        assert allocation.rho_mbs[1] == pytest.approx(0.5)
        assert allocation.rho_fbs[2] == pytest.approx(1.0)
        check_feasible(problem, allocation)

    def test_tie_goes_to_fbs(self):
        user = make_user(0, success_mbs=0.8, r_mbs=1.0, success_fbs=0.8, r_fbs=1.0)
        problem = SlotProblem(users=[user], expected_channels={1: 1.0})
        allocation = EqualAllocationHeuristic().allocate(problem)
        assert not allocation.uses_mbs(0)

    def test_feasible_on_random_instances(self):
        import numpy as np
        from tests.conftest import random_problem
        rng = np.random.default_rng(7)
        for _ in range(30):
            problem = random_problem(rng)
            allocation = EqualAllocationHeuristic().allocate(problem)
            check_feasible(problem, allocation)
            assert allocation.objective == allocation.objective  # not NaN

    def test_objective_below_optimum(self):
        from repro.core.reference import exhaustive_reference_solution
        problem = make_problem(4, n_fbss=2, seed=1)
        heuristic = EqualAllocationHeuristic().allocate(problem)
        optimum = exhaustive_reference_solution(problem)
        assert heuristic.objective <= optimum.objective + 1e-9


class TestMultiuserDiversity:
    def test_single_winner_per_station(self):
        problem = make_problem(6, n_fbss=2, seed=4)
        allocation = MultiuserDiversityHeuristic().allocate(problem)
        check_feasible(problem, allocation)
        # At most one MBS user at full share; one winner per FBS.
        assert len(allocation.rho_mbs) <= 1
        for share in allocation.rho_mbs.values():
            assert share == 1.0
        for fbs_id in problem.fbs_ids:
            winners = [u for u in problem.users_of_fbs(fbs_id)
                       if allocation.rho_fbs.get(u.user_id, 0.0) > 0.0]
            assert len(winners) <= 1

    def test_picks_by_link_quality(self):
        users = [
            make_user(0, success_mbs=0.6, success_fbs=0.7),
            make_user(1, success_mbs=0.9, success_fbs=0.99),
        ]
        problem = SlotProblem(users=users, expected_channels={1: 2.0})
        allocation = MultiuserDiversityHeuristic().allocate(problem)
        # User 1 has the best macro link -> MBS; FBS then serves user 0
        # (single transceiver: the MBS winner cannot also use the FBS).
        assert allocation.rho_mbs == {1: 1.0}
        assert allocation.rho_fbs == {0: 1.0}

    def test_video_agnostic(self):
        # Identical links, wildly different video slopes: the pick must
        # not change (channel-only ranking).
        users_a = [make_user(0, r_fbs=2.0, success_fbs=0.9),
                   make_user(1, r_fbs=0.1, success_fbs=0.8)]
        users_b = [make_user(0, r_fbs=0.1, success_fbs=0.9),
                   make_user(1, r_fbs=2.0, success_fbs=0.8)]
        for users in (users_a, users_b):
            problem = SlotProblem(users=users, expected_channels={1: 2.0})
            allocation = MultiuserDiversityHeuristic().allocate(problem)
            fbs_winners = set(allocation.rho_fbs)
            assert 0 in fbs_winners or allocation.rho_mbs.get(0) == 1.0

    def test_no_channels_no_fbs_service(self):
        problem = make_problem(2, g=0.0)
        allocation = MultiuserDiversityHeuristic().allocate(problem)
        assert not allocation.rho_fbs

    def test_feasible_on_random_instances(self):
        import numpy as np
        from tests.conftest import random_problem
        rng = np.random.default_rng(8)
        for _ in range(30):
            problem = random_problem(rng)
            allocation = MultiuserDiversityHeuristic().allocate(problem)
            check_feasible(problem, allocation)
