"""Global switch for the accelerated solver hot path.

The per-slot allocation stack has two implementations of its inner
numerics:

* the **scalar oracle** -- the original, straight-from-the-paper code
  (pure-Python water-filling, per-iteration helper calls in the dual
  subgradient loop, no caching).  It is kept verbatim as the reference
  against which everything else is validated.
* the **accelerated path** -- numpy-vectorised water-filling breakpoint
  scan, a compiled per-problem representation with per-group result
  caching (:class:`repro.core.reference.CompiledSlotProblem`), and a
  hoisted-invariant subgradient iteration kernel in
  :mod:`repro.core.dual`.

Both produce **bit-identical** results (asserted by the test suite and
by ``benchmarks/test_bench_solver.py``); the switch exists so the
benchmark can time one against the other and so an operator can fall
back to the oracle when debugging numerics.  The accelerated path is on
by default.
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def acceleration_enabled() -> bool:
    """Whether the accelerated solver path is active (default ``True``)."""
    return _ENABLED


@contextmanager
def use_acceleration(enabled: bool):
    """Context manager forcing the accelerated path on or off.

    Used by the solver benchmark to run the scalar oracle and the
    accelerated path on identical inputs, and by tests that assert the
    two are bit-identical.  Not thread-safe (the flag is process-global);
    the simulation workers each run in their own process, so the switch
    composes fine with ``--jobs``.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous
