"""Scenario configuration for the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.net.topology import Topology
from repro.registry.schemes import scheme_registry
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything the engine needs to simulate one scenario.

    Defaults follow the paper's first evaluation scenario (Section V-A):
    ``M = 8`` channels with ``P01 = 0.4``, ``P10 = 0.3`` (utilisation
    ``eta ~ 0.571``), collision cap ``gamma = 0.2``, sensing errors
    ``epsilon = delta = 0.3``, GOP deadline ``T = 10`` slots, and 0.3 Mbps
    per channel.

    Attributes
    ----------
    topology:
        The resolved network (nodes, association, link budgets,
        interference graph).
    scheme:
        Allocation scheme; any name in
        :func:`~repro.registry.schemes.scheme_registry` (built-ins:
        ``proposed``, ``proposed-fast``, ``heuristic1``, ``heuristic2``,
        ``graph-coloring``).
    n_channels:
        Number of licensed channels ``M``.
    p01, p10:
        Occupancy-chain transition probabilities (identical across
        channels, as in the paper's evaluation).
    channel_utilizations:
        Optional per-channel stationary utilisations ``eta_m`` (length
        ``n_channels``).  When set, channel ``m``'s ``p01`` is derived
        from its utilisation and the shared ``p10`` as
        ``eta_m * p10 / (1 - eta_m)`` -- heterogeneous occupancy as in
        Chowdhury's adaptive femtocell/macrocell resource management.
        ``None`` (default) keeps the paper's homogeneous chain.
    gamma:
        Maximum allowable collision probability with primary users.
    common_bandwidth_mbps, licensed_bandwidth_mbps:
        ``B0`` and ``B1``.
    false_alarm, miss_detection:
        Sensing error probabilities ``epsilon`` and ``delta`` (identical
        across sensors, as in the paper's evaluation).
    deadline_slots:
        GOP delivery deadline ``T``.
    n_gops:
        Simulation horizon in GOP windows (total slots =
        ``n_gops * deadline_slots``).
    realized_throughput:
        ``False`` (paper mode): the PSNR recursion uses the expected
        channel count ``G_t`` exactly as written under problem (10).
        ``True`` (ablation): licensed-channel throughput counts only
        channels that were truly idle, so misdetected collisions destroy
        the slot's licensed payload.
    access_policy:
        ``"probabilistic"`` (paper, eq. 7) or ``"threshold"`` (A1
        ablation: deterministic access iff the busy posterior clears the
        cap).
    single_observation_fusion:
        A2 ablation: fuse only the first sensing result per channel
        instead of all of them (quantifies the value of cooperative
        multi-sensor fusion, eqs. 3-4).
    belief_tracking:
        Extension: carry each channel's posterior across slots through
        the Markov transition matrix instead of restarting from the
        stationary prior ``eta_m`` every slot (see
        :mod:`repro.sensing.belief`).
    rd_variability:
        Extension: per-GOP encoding-complexity variation (sigma of the
        lognormal AR(1) trace in :mod:`repro.video.traces`); 0 (default)
        reproduces the paper's constant R-D model.
    rd_trace_phi:
        AR(1) correlation of the complexity trace between GOPs.
    nal_quantized:
        Extension: record each GOP's quality at NAL-unit granularity (the
        defining property of MGS, Section I) -- only fully received
        enhancement units count.  ``False`` keeps the paper's fluid
        rate model.
    nal_packet_bits:
        Nominal NAL-unit payload when ``nal_quantized`` is on.
    memoize_q:
        Cache the greedy channel allocation's ``Q(c)`` evaluations within
        each slot (see :class:`repro.core.greedy.GreedyChannelAllocator`).
        Results are bit-identical either way; off only for benchmarking
        the unmemoized path.
    warm_start:
        Carry the dual solvers' multipliers across consecutive slots
        (greedy ``Q`` evaluations, the proposed allocator, and the
        eq. (23) relaxation bound solve).  Per-slot problems drift
        slowly, so warm dual points cut subgradient iterations
        substantially -- but the iterate path changes, so results are
        near-identical rather than bit-identical to cold runs (the
        solver benchmark asserts equal-or-better per-slot objectives).
        Off by default to preserve reproducibility guarantees.
    seed:
        Root RNG seed; ``None`` for fresh entropy.
    fault_plan:
        Optional fault-injection schedule (duck-typed; see
        :class:`repro.testing.faults.FaultPlan`).  ``None`` (the default)
        injects nothing.  The engine consults it through three hooks --
        ``forces_nonconvergence(slot)``, ``poisons_fading(slot)`` and
        ``sensing_outage(slot, n_channels)`` -- and the Monte-Carlo
        runner announces replications via ``begin_run(run_index,
        attempt)`` when the plan defines it.
    generator, generator_params:
        Identity stamp set by
        :meth:`~repro.registry.scenarios.ScenarioRegistry.build`: the
        registered scenario generator's name and its (sorted) build
        parameters.  Part of ``scenario_hash``/``config_hash``, so two
        generators can never alias one hash; ``None`` for configs built
        directly (hash identity unchanged from before the registry).
    """

    topology: Topology
    scheme: str = "proposed"
    n_channels: int = 8
    p01: float = 0.4
    p10: float = 0.3
    gamma: float = 0.2
    common_bandwidth_mbps: float = 0.3
    licensed_bandwidth_mbps: float = 0.3
    false_alarm: float = 0.3
    miss_detection: float = 0.3
    deadline_slots: int = 10
    n_gops: int = 3
    realized_throughput: bool = False
    access_policy: str = "probabilistic"
    single_observation_fusion: bool = False
    belief_tracking: bool = False
    rd_variability: float = 0.0
    rd_trace_phi: float = 0.8
    nal_quantized: bool = False
    nal_packet_bits: int = 8000
    memoize_q: bool = True
    warm_start: bool = False
    seed: Optional[int] = 7
    fault_plan: Optional[object] = None
    channel_utilizations: Optional[Tuple[float, ...]] = None
    generator: Optional[str] = None
    generator_params: Optional[Tuple[Tuple[str, object], ...]] = None

    def __post_init__(self) -> None:
        registry = scheme_registry()
        if self.scheme not in registry:
            raise ConfigurationError(
                f"scheme must be one of {registry.names()}, "
                f"got {self.scheme!r}")
        if self.access_policy not in ("probabilistic", "threshold"):
            raise ConfigurationError(
                f"access_policy must be 'probabilistic' or 'threshold', "
                f"got {self.access_policy!r}")
        if self.n_channels < 1:
            raise ConfigurationError(
                f"n_channels must be >= 1, got {self.n_channels}")
        if self.deadline_slots < 1:
            raise ConfigurationError(
                f"deadline_slots must be >= 1, got {self.deadline_slots}")
        if self.n_gops < 1:
            raise ConfigurationError(f"n_gops must be >= 1, got {self.n_gops}")
        check_probability(self.p01, "p01")
        check_probability(self.p10, "p10")
        check_probability(self.gamma, "gamma")
        check_probability(self.false_alarm, "false_alarm")
        check_probability(self.miss_detection, "miss_detection")
        check_positive(self.common_bandwidth_mbps, "common_bandwidth_mbps")
        check_positive(self.licensed_bandwidth_mbps, "licensed_bandwidth_mbps")
        check_positive(self.rd_variability, "rd_variability", allow_zero=True)
        check_probability(self.rd_trace_phi, "rd_trace_phi", allow_one=False)
        if self.nal_packet_bits <= 0:
            raise ConfigurationError(
                f"nal_packet_bits must be positive, got {self.nal_packet_bits}")
        if self.channel_utilizations is not None:
            etas = tuple(float(eta) for eta in self.channel_utilizations)
            object.__setattr__(self, "channel_utilizations", etas)
            if len(etas) != self.n_channels:
                raise ConfigurationError(
                    f"channel_utilizations must have n_channels="
                    f"{self.n_channels} entries, got {len(etas)}")
            for index, eta in enumerate(etas):
                check_probability(eta, f"channel_utilizations[{index}]",
                                  allow_zero=False, allow_one=False)
                p01 = eta * self.p10 / (1.0 - eta)
                if p01 > 1.0:
                    raise ConfigurationError(
                        f"channel_utilizations[{index}]={eta} implies "
                        f"p01={p01:.4f} > 1 with p10={self.p10}; lower the "
                        f"utilisation or p10")
            if self.belief_tracking:
                raise ConfigurationError(
                    "channel_utilizations is incompatible with "
                    "belief_tracking (the belief tracker assumes one "
                    "shared transition chain)")
        if self.generator_params is not None:
            params = tuple((str(key), value)
                           for key, value in self.generator_params)
            object.__setattr__(self, "generator_params", params)

    @property
    def n_slots(self) -> int:
        """Total simulated slots."""
        return self.n_gops * self.deadline_slots

    @property
    def utilization(self) -> float:
        """Stationary channel utilisation ``eta`` implied by (p01, p10)."""
        return self.p01 / (self.p01 + self.p10)

    @property
    def channel_p01(self):
        """Per-channel ``p01``: the scalar, or the tuple derived from
        ``channel_utilizations`` (``eta_m * p10 / (1 - eta_m)``)."""
        if self.channel_utilizations is None:
            return self.p01
        return tuple(eta * self.p10 / (1.0 - eta)
                     for eta in self.channel_utilizations)

    def with_scheme(self, scheme: str) -> "ScenarioConfig":
        """Copy of this config running a different allocation scheme."""
        return replace(self, scheme=scheme)

    def with_seed(self, seed: Optional[int]) -> "ScenarioConfig":
        """Copy of this config with a different root seed."""
        return replace(self, seed=seed)

    def replace(self, **changes) -> "ScenarioConfig":
        """General-purpose copy-with-changes (dataclass ``replace``)."""
        return replace(self, **changes)
