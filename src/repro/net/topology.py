"""Network topology: placement, association, and link budgets.

Combines the node layer with the PHY substrate to produce, for every CR
user, the two per-slot success probabilities the allocation problem needs:
``bar P^F_{0,j}`` (MBS -> user on the common channel) and
``bar P^F_{i,j}`` (associated FBS -> user on licensed channels), both from
eq. (8) with Rayleigh block fading and log-distance path loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.net.interference import build_interference_graph
from repro.net.nodes import CrUser, FemtoBaseStation, MacroBaseStation, distance
from repro.phy.fading import RayleighFading
from repro.phy.pathloss import LogDistancePathLoss, db_to_linear, mean_sinr_db
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LinkBudget:
    """PHY parameters shared by all links of one tier.

    Attributes
    ----------
    pathloss:
        Path-loss model for the tier.
    noise_dbm:
        Thermal-noise floor.
    decode_threshold_db:
        SINR decoding threshold ``H`` in dB (eq. 8).
    """

    pathloss: LogDistancePathLoss
    noise_dbm: float = -100.0
    decode_threshold_db: float = 5.0


#: Outdoor macro tier: higher path-loss exponent, long links.  With the
#: default scenario geometry (femtocells ~250-350 m from the MBS) this
#: yields macro-link success probabilities around 0.75-0.85.
DEFAULT_MACRO_BUDGET = LinkBudget(
    pathloss=LogDistancePathLoss(exponent=3.5, reference_loss_db=37.0),
    decode_threshold_db=15.0)
#: Indoor femto tier: short links through one wall (extra 10 dB in the
#: reference loss), mild in-home exponent.  With users 6-15 m from their
#: FBS this yields femto-link success probabilities around 0.8-0.97 --
#: lossy enough that fading matters, as the paper's evaluation needs.
DEFAULT_FEMTO_BUDGET = LinkBudget(
    pathloss=LogDistancePathLoss(exponent=2.5, reference_loss_db=47.0),
    decode_threshold_db=15.0)


@dataclass
class Topology:
    """A fully resolved network: nodes, association, links, interference.

    Attributes
    ----------
    mbs:
        The macro base station.
    fbss:
        Femto base stations, keyed position in the list is arbitrary; use
        ``fbs_id`` for identity.
    users:
        CR users with their ``fbs_id`` association resolved.
    interference_graph:
        Graph over ``fbs_id`` values (Definition 1).
    mbs_success:
        ``{user_id: bar P^F_{0,j}}`` -- per-slot success probability of the
        MBS link to each user.
    fbs_success:
        ``{user_id: bar P^F_{i,j}}`` -- success probability from the user's
        associated FBS.
    mbs_margin, fbs_margin:
        ``{user_id: mean SINR / H}`` (linear) -- the mean decoding margin
        of each link.  Under Rayleigh fading the realised margin is
        exponential with this mean, the link decodes iff it exceeds 1,
        and ``success = exp(-1 / margin)``; the simulation engine draws
        per-slot margin realisations from these.
    """

    mbs: MacroBaseStation
    fbss: List[FemtoBaseStation]
    users: List[CrUser]
    interference_graph: nx.Graph
    mbs_success: Dict[int, float] = field(default_factory=dict)
    fbs_success: Dict[int, float] = field(default_factory=dict)
    mbs_margin: Dict[int, float] = field(default_factory=dict)
    fbs_margin: Dict[int, float] = field(default_factory=dict)

    @property
    def n_fbss(self) -> int:
        """Number of femto base stations ``N``."""
        return len(self.fbss)

    @property
    def n_users(self) -> int:
        """Number of CR users ``K``."""
        return len(self.users)

    def fbs_by_id(self, fbs_id: int) -> FemtoBaseStation:
        """Look up an FBS by its identifier."""
        for fbs in self.fbss:
            if fbs.fbs_id == fbs_id:
                return fbs
        raise ConfigurationError(f"no FBS with id {fbs_id}")

    def users_of_fbs(self, fbs_id: int) -> List[CrUser]:
        """The set ``U_i`` of users associated with FBS ``fbs_id``."""
        return [user for user in self.users if user.fbs_id == fbs_id]


def associate_nearest(users: Sequence[CrUser],
                      fbss: Sequence[FemtoBaseStation]) -> List[CrUser]:
    """Associate each user with its nearest FBS (Section IV-B).

    Returns new :class:`CrUser` instances with ``fbs_id`` filled in; users
    already carrying an explicit association are left unchanged.
    """
    if not fbss:
        raise ConfigurationError("at least one FBS is required for association")
    resolved = []
    for user in users:
        if user.fbs_id is not None:
            resolved.append(user)
            continue
        nearest = min(fbss, key=lambda fbs: distance(fbs.position, user.position))
        resolved.append(CrUser(
            user_id=user.user_id,
            position=user.position,
            sequence_name=user.sequence_name,
            fbs_id=nearest.fbs_id,
        ))
    return resolved


def link_margin(tx_power_dbm: float, link_distance_m: float,
                budget: LinkBudget) -> float:
    """Mean decoding margin ``E[X] / H`` (linear) of one link.

    Mean SINR comes from the log-distance model; dividing by the decoding
    threshold normalises the block-fading draw so the link decodes iff
    the realised margin exceeds 1.
    """
    link_distance_m = check_positive(link_distance_m, "link_distance_m")
    sinr_db = mean_sinr_db(tx_power_dbm, link_distance_m, budget.pathloss,
                           noise_dbm=budget.noise_dbm)
    return db_to_linear(sinr_db - budget.decode_threshold_db)


def link_success_probability(tx_power_dbm: float, link_distance_m: float,
                             budget: LinkBudget) -> float:
    """``bar P^F`` of one Rayleigh link from the tier's link budget.

    Mean SINR comes from the log-distance model; the Rayleigh CDF at the
    decoding threshold gives the loss probability of eq. (8).
    """
    margin = link_margin(tx_power_dbm, link_distance_m, budget)
    fading = RayleighFading(mean_sinr=margin)
    return 1.0 - fading.cdf(1.0)


def build_topology(mbs: MacroBaseStation, fbss: Sequence[FemtoBaseStation],
                   users: Sequence[CrUser], *,
                   macro_budget: LinkBudget = DEFAULT_MACRO_BUDGET,
                   femto_budget: LinkBudget = DEFAULT_FEMTO_BUDGET,
                   interference_graph: Optional[nx.Graph] = None) -> Topology:
    """Resolve association, link budgets, and the interference graph.

    Parameters
    ----------
    mbs, fbss, users:
        The nodes.  Users without an explicit ``fbs_id`` are associated
        with their nearest FBS.
    macro_budget, femto_budget:
        Per-tier PHY parameters.
    interference_graph:
        Explicit graph (to reproduce the paper's stated topologies); built
        from coverage-disk overlap when omitted.

    Raises
    ------
    ConfigurationError
        On duplicate ids, unknown associations, or empty node sets.
    """
    if not users:
        raise ConfigurationError("at least one CR user is required")
    user_ids = [user.user_id for user in users]
    if len(set(user_ids)) != len(user_ids):
        raise ConfigurationError(f"duplicate user_id values in {user_ids}")
    resolved = associate_nearest(users, fbss)
    fbs_ids = {fbs.fbs_id for fbs in fbss}
    for user in resolved:
        if user.fbs_id not in fbs_ids:
            raise ConfigurationError(
                f"user {user.user_id} is associated with unknown FBS {user.fbs_id}")
    graph = interference_graph if interference_graph is not None else (
        build_interference_graph(list(fbss)))
    topology = Topology(
        mbs=mbs, fbss=list(fbss), users=resolved, interference_graph=graph)
    for user in resolved:
        mbs_distance = distance(mbs.position, user.position)
        topology.mbs_margin[user.user_id] = link_margin(
            mbs.tx_power_dbm, mbs_distance, macro_budget)
        topology.mbs_success[user.user_id] = math.exp(
            -1.0 / topology.mbs_margin[user.user_id])
        fbs = topology.fbs_by_id(user.fbs_id)
        fbs_distance = distance(fbs.position, user.position)
        topology.fbs_margin[user.user_id] = link_margin(
            fbs.tx_power_dbm, fbs_distance, femto_budget)
        topology.fbs_success[user.user_id] = math.exp(
            -1.0 / topology.fbs_margin[user.user_id])
    return topology
