"""Seed-stability regression: golden SlotRecord fingerprints.

A fixed seed must keep producing the same simulation trajectory across
refactors -- any change to how the engine consumes its RNG streams
(order, count, or batching of draws) silently changes *every* sampled
result, which no unit test notices.  This suite pins sha256
fingerprints of canonicalised SlotRecord streams for two reference
scenarios against goldens committed in ``tests/data/``.

Floats are formatted to 12 significant digits before hashing: enough
precision that any reordered or dropped RNG draw (values differ in the
leading digits) changes the fingerprint, while platform-level libm
differences in the last bits do not.

To regenerate after an *intentional* trajectory change::

    PYTHONPATH=src python -m tests.sim.test_seed_stability

and review the diff of ``tests/data/seed_stability.json`` like code.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.citygrid import city_grid_scenario
from repro.experiments.scenarios import (
    interfering_fbs_scenario,
    single_fbs_scenario,
)
from repro.sim.engine import SimulationEngine

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "seed_stability.json"

SCENARIOS = {
    "single_fbs": lambda: single_fbs_scenario(
        n_gops=1, n_channels=4, seed=20260806),
    "interfering_fbs": lambda: interfering_fbs_scenario(
        n_gops=1, n_channels=4, seed=20260806),
    "graph_coloring": lambda: interfering_fbs_scenario(
        n_gops=1, n_channels=4, seed=20260806, scheme="graph-coloring"),
    "city_grid": lambda: city_grid_scenario(
        rows=2, cols=2, users_per_fbs=2, n_channels=4, n_gops=1,
        seed=20260806),
}


def _f(value):
    """Canonical 12-significant-digit rendering of a float."""
    return float("%.12g" % float(value))


def _canonical_record(record):
    return {
        "slot": record.slot,
        "occupancy": [int(x) for x in record.occupancy],
        "posteriors": [_f(x) for x in record.access.posteriors],
        "access_probabilities": [_f(x) for x in
                                 record.access.access_probabilities],
        "decisions": [int(x) for x in record.access.decisions],
        "channel_allocation": {
            str(fbs): sorted(int(c) for c in channels)
            for fbs, channels in sorted(record.channel_allocation.items())
        },
        "expected_channels": {
            str(fbs): _f(g)
            for fbs, g in sorted(record.problem.expected_channels.items())
        },
        "users": [
            {
                "user_id": user.user_id,
                "fbs_id": user.fbs_id,
                "w_prev": _f(user.w_prev),
                "success_mbs": _f(user.success_mbs),
                "success_fbs": _f(user.success_fbs),
                "r_mbs": _f(user.r_mbs),
                "r_fbs": _f(user.r_fbs),
                "csi_mbs": None if user.csi_mbs is None else _f(user.csi_mbs),
                "csi_fbs": None if user.csi_fbs is None else _f(user.csi_fbs),
            }
            for user in record.problem.users
        ],
        "mbs_user_ids": sorted(record.allocation.mbs_user_ids),
        "rho_mbs": {str(j): _f(r)
                    for j, r in sorted(record.allocation.rho_mbs.items())},
        "rho_fbs": {str(j): _f(r)
                    for j, r in sorted(record.allocation.rho_fbs.items())},
        "increments": {str(j): _f(v)
                       for j, v in sorted(record.increments.items())},
        "bound_gap": _f(record.bound_gap),
    }


def compute_fingerprint(config):
    """sha256 over the canonical JSON of the full SlotRecord stream."""
    engine = SimulationEngine(config)
    records = [_canonical_record(engine.step())
               for _ in range(config.n_slots)]
    payload = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest(), records


def _load_goldens():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fingerprint_matches_golden(name):
    goldens = _load_goldens()
    fingerprint, records = compute_fingerprint(SCENARIOS[name]())
    golden = goldens["fingerprints"][name]
    assert fingerprint == golden, (
        f"seed-stability fingerprint changed for scenario {name!r}: "
        f"{fingerprint} != golden {golden}. The engine's sampled "
        f"trajectory moved -- either an RNG-consumption regression, or an "
        f"intentional change that requires regenerating the goldens "
        f"(see this module's docstring). First slot now: "
        f"{json.dumps(records[0], sort_keys=True)[:400]}")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_first_slot_matches_golden(name):
    """A readable subset of the golden, so diffs localise the drift."""
    goldens = _load_goldens()
    _, records = compute_fingerprint(SCENARIOS[name]())
    assert records[0] == goldens["first_slots"][name]


def test_goldens_cover_exactly_the_scenarios():
    goldens = _load_goldens()
    assert sorted(goldens["fingerprints"]) == sorted(SCENARIOS)
    assert sorted(goldens["first_slots"]) == sorted(SCENARIOS)


def regenerate():
    """Rewrite the golden file from the current implementation."""
    fingerprints, first_slots = {}, {}
    for name, build in SCENARIOS.items():
        fingerprint, records = compute_fingerprint(build())
        fingerprints[name] = fingerprint
        first_slots[name] = records[0]
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as handle:
        json.dump({"fingerprints": fingerprints, "first_slots": first_slots},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    regenerate()
