"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    ConfidenceInterval,
    RunningMean,
    jain_fairness_index,
    mean_confidence_interval,
)


class TestMeanConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.n_samples == 1

    def test_constant_samples_zero_width(self):
        ci = mean_confidence_interval([2.0] * 10)
        assert ci.half_width == pytest.approx(0.0)

    def test_known_t_interval(self):
        # n=4, std=1: half-width = t_{0.975,3} * 1/2 = 3.182 * 0.5
        samples = [0.0, 0.0, 2.0, 2.0]  # mean 1, sd = 1.1547
        ci = mean_confidence_interval(samples)
        sem = np.std(samples, ddof=1) / 2.0
        assert ci.mean == pytest.approx(1.0)
        assert ci.half_width == pytest.approx(3.18245 * sem, rel=1e-4)

    def test_coverage_monte_carlo(self):
        # ~95% of intervals from a normal sample should contain the mean.
        rng = np.random.default_rng(0)
        hits = sum(
            mean_confidence_interval(rng.normal(3.0, 1.0, size=10)).contains(3.0)
            for _ in range(400)
        )
        assert 0.90 <= hits / 400 <= 0.99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, float("nan")])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_interval_endpoints(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.95, n_samples=5)
        assert ci.low == 8.0
        assert ci.high == 12.0
        assert ci.contains(9.0)
        assert not ci.contains(12.5)
        assert "95% CI" in str(ci)


class TestRunningMean:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=100)
        running = RunningMean()
        running.update_many(data)
        assert running.count == 100
        assert running.mean == pytest.approx(float(np.mean(data)))
        assert running.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert running.std == pytest.approx(float(np.std(data, ddof=1)))

    def test_empty_defaults(self):
        running = RunningMean()
        assert running.count == 0
        assert running.mean == 0.0
        assert running.variance == 0.0

    def test_rejects_nan(self):
        running = RunningMean()
        with pytest.raises(ValueError):
            running.update(float("inf"))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_matches_batch(self, values):
        running = RunningMean()
        running.update_many(values)
        assert math.isclose(running.mean, float(np.mean(values)),
                            rel_tol=1e-9, abs_tol=1e-6)


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness_index([5.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([1.0, -1.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_property_bounds(self, values):
        index = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-12 <= index <= 1.0 + 1e-12
