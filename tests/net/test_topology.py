"""Tests for topology resolution and link budgets."""

import math

import pytest

from repro.net.nodes import CrUser, FemtoBaseStation, MacroBaseStation
from repro.net.topology import (
    DEFAULT_FEMTO_BUDGET,
    DEFAULT_MACRO_BUDGET,
    associate_nearest,
    build_topology,
    link_margin,
    link_success_probability,
)
from repro.utils.errors import ConfigurationError


def small_network():
    mbs = MacroBaseStation(position=(0.0, 0.0))
    fbss = [FemtoBaseStation(1, (280.0, 0.0)), FemtoBaseStation(2, (350.0, 0.0))]
    users = [
        CrUser(0, (285.0, 0.0), "bus"),
        CrUser(1, (352.0, 4.0), "mobile"),
    ]
    return mbs, fbss, users


class TestAssociation:
    def test_nearest_fbs_chosen(self):
        mbs, fbss, users = small_network()
        resolved = associate_nearest(users, fbss)
        assert resolved[0].fbs_id == 1
        assert resolved[1].fbs_id == 2

    def test_explicit_association_preserved(self):
        _mbs, fbss, _users = small_network()
        user = CrUser(0, (285.0, 0.0), "bus", fbs_id=2)
        resolved = associate_nearest([user], fbss)
        assert resolved[0].fbs_id == 2

    def test_no_fbss_rejected(self):
        with pytest.raises(ConfigurationError):
            associate_nearest([CrUser(0, (0.0, 0.0), "bus")], [])


class TestLinkBudget:
    def test_success_consistent_with_margin(self):
        # Rayleigh: success = exp(-1 / mean_margin).
        margin = link_margin(0.0, 12.0, DEFAULT_FEMTO_BUDGET)
        success = link_success_probability(0.0, 12.0, DEFAULT_FEMTO_BUDGET)
        assert success == pytest.approx(math.exp(-1.0 / margin))

    def test_success_decreases_with_distance(self):
        near = link_success_probability(0.0, 6.0, DEFAULT_FEMTO_BUDGET)
        far = link_success_probability(0.0, 25.0, DEFAULT_FEMTO_BUDGET)
        assert near > far

    def test_macro_links_in_meaningful_range(self):
        # Link budgets are calibrated so losses matter (Section V regime).
        success = link_success_probability(43.0, 280.0, DEFAULT_MACRO_BUDGET)
        assert 0.5 < success < 0.95

    def test_invalid_distance(self):
        with pytest.raises(ConfigurationError):
            link_margin(0.0, 0.0, DEFAULT_FEMTO_BUDGET)


class TestBuildTopology:
    def test_full_resolution(self):
        mbs, fbss, users = small_network()
        topology = build_topology(mbs, fbss, users)
        assert topology.n_users == 2
        assert topology.n_fbss == 2
        for user in topology.users:
            assert 0.0 < topology.mbs_success[user.user_id] < 1.0
            assert 0.0 < topology.fbs_success[user.user_id] < 1.0
            assert topology.mbs_margin[user.user_id] > 0.0
            # Femto links are shorter/better than macro links here.
            assert (topology.fbs_success[user.user_id]
                    > topology.mbs_success[user.user_id])

    def test_interference_graph_from_geometry(self):
        mbs, fbss, users = small_network()
        topology = build_topology(mbs, fbss, users)
        assert topology.interference_graph.number_of_edges() == 0

    def test_explicit_graph_wins(self):
        import networkx as nx
        mbs, fbss, users = small_network()
        graph = nx.Graph()
        graph.add_nodes_from([1, 2])
        graph.add_edge(1, 2)
        topology = build_topology(mbs, fbss, users, interference_graph=graph)
        assert topology.interference_graph.has_edge(1, 2)

    def test_users_of_fbs(self):
        mbs, fbss, users = small_network()
        topology = build_topology(mbs, fbss, users)
        assert [u.user_id for u in topology.users_of_fbs(1)] == [0]

    def test_fbs_lookup(self):
        mbs, fbss, users = small_network()
        topology = build_topology(mbs, fbss, users)
        assert topology.fbs_by_id(2).position == (350.0, 0.0)
        with pytest.raises(ConfigurationError):
            topology.fbs_by_id(99)

    def test_duplicate_user_ids_rejected(self):
        mbs, fbss, _ = small_network()
        users = [CrUser(0, (285.0, 0.0), "bus"), CrUser(0, (286.0, 0.0), "bus")]
        with pytest.raises(ConfigurationError):
            build_topology(mbs, fbss, users)

    def test_unknown_association_rejected(self):
        mbs, fbss, _ = small_network()
        users = [CrUser(0, (285.0, 0.0), "bus", fbs_id=9)]
        with pytest.raises(ConfigurationError):
            build_topology(mbs, fbss, users)

    def test_no_users_rejected(self):
        mbs, fbss, _ = small_network()
        with pytest.raises(ConfigurationError):
            build_topology(mbs, fbss, [])
