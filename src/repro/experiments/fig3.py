"""Fig. 3 -- per-user received video quality, single FBS.

The paper's first result: with one FBS and three CR users (Bus, Mobile,
Harbor), the proposed scheme beats both heuristics for every user -- by
up to 4.3 dB -- and balances quality across users far better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenarios import single_fbs_scenario
from repro.obs.logging import get_logger
from repro.sim.runner import MonteCarloRunner
from repro.utils.stats import ConfidenceInterval

logger = get_logger(__name__)

#: Schemes compared in the figure, in plot order.
FIG3_SCHEMES = ("proposed-fast", "heuristic1", "heuristic2")


@dataclass(frozen=True)
class Fig3Row:
    """One bar group of Fig. 3: one scheme's per-user PSNRs.

    Attributes
    ----------
    scheme:
        Scheme name.
    per_user_psnr:
        ``{user_id: ConfidenceInterval}`` of mean GOP PSNR (dB).
    fairness:
        Jain index CI across users (the paper's "well balanced" claim).
    n_failed:
        Replications lost after their retry (excluded from the CIs);
        surfaced so the CLI's ``--fail-on-error`` contract covers this
        figure too.  Not serialised by ``results_io`` -- the on-disk
        format is unchanged.
    """

    scheme: str
    per_user_psnr: Dict[int, ConfidenceInterval]
    fairness: ConfidenceInterval
    n_failed: int = 0


def run_fig3(*, n_runs: int = 10, n_gops: int = 3, seed: int = 7,
             schemes: Sequence[str] = FIG3_SCHEMES,
             jobs: Optional[int] = None,
             cell_timeout: Optional[float] = None,
             deadline: Optional[float] = None,
             workspace=None) -> List[Fig3Row]:
    """Regenerate Fig. 3's data.

    Returns one row per scheme with per-user confidence intervals; all
    schemes share root seeds (paired comparison).  ``jobs`` spreads each
    scheme's replications over worker processes (see :mod:`repro.exec`);
    the rows are identical at every worker count.  ``cell_timeout`` /
    ``deadline`` enable the supervised executor's watchdog budgets.
    ``workspace`` activates a managed artifact workspace (see
    :mod:`repro.store.workspace`); all three schemes share one cached
    scenario build in it.
    """
    logger.info("fig3: %d runs x %d GOPs, seed %s, schemes %s, jobs %s",
                n_runs, n_gops, seed, list(schemes), jobs)
    rows = []
    for scheme in schemes:
        config = single_fbs_scenario(n_gops=n_gops, seed=seed, scheme=scheme)
        summary = MonteCarloRunner(config, n_runs=n_runs, jobs=jobs,
                                   cell_timeout=cell_timeout,
                                   deadline=deadline,
                                   workspace=workspace).summary()
        rows.append(Fig3Row(
            scheme=scheme,
            per_user_psnr=summary.per_user_psnr,
            fairness=summary.fairness,
            n_failed=summary.n_failed,
        ))
    return rows


def max_improvement_db(rows: Sequence[Fig3Row]) -> float:
    """Largest per-user gain of the proposed scheme over any heuristic.

    The paper reports up to 4.3 dB; the reproduction's value is recorded
    in EXPERIMENTS.md.
    """
    proposed = next(r for r in rows if r.scheme.startswith("proposed"))
    heuristics = [r for r in rows if not r.scheme.startswith("proposed")]
    if not heuristics:
        raise ValueError("need at least one heuristic row")
    return max(
        proposed.per_user_psnr[user].mean - row.per_user_psnr[user].mean
        for row in heuristics
        for user in proposed.per_user_psnr
    )
