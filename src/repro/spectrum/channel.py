"""Channel and spectrum-band definitions.

The paper's spectrum (Section III-A) consists of ``M + 1`` synchronously
slotted channels: channel 0 is the common unlicensed channel (capacity
``B0`` Mbps, exclusively used by the CR network for the MBS downlink and
control traffic) and channels 1..M are licensed channels (capacity ``B1``
Mbps each) owned by the primary network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.spectrum.markov import BUSY, IDLE, OccupancyChain
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomState, spawn_streams
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class ChannelState:
    """Snapshot of the licensed spectrum in one time slot.

    Attributes
    ----------
    slot:
        Time-slot index the snapshot belongs to.
    occupancy:
        Length-``M`` int array; ``occupancy[m] == 1`` iff licensed channel
        ``m`` is busy with a primary transmission (the paper's ``S_m(t)``).
    """

    slot: int
    occupancy: np.ndarray

    @property
    def idle_channels(self) -> np.ndarray:
        """Indices of channels truly idle in this slot."""
        return np.flatnonzero(self.occupancy == IDLE)

    @property
    def busy_channels(self) -> np.ndarray:
        """Indices of channels truly busy in this slot."""
        return np.flatnonzero(self.occupancy == BUSY)

    def is_idle(self, channel: int) -> bool:
        """Whether licensed channel ``channel`` is truly idle."""
        return bool(self.occupancy[channel] == IDLE)


class LicensedChannel:
    """One licensed channel: an occupancy chain plus its parameters.

    Parameters
    ----------
    index:
        Channel index in 1..M space; stored 0-based within :class:`Spectrum`
        arrays but kept here for reporting.
    p01, p10:
        Markov transition probabilities (Section III-A).
    bandwidth_mbps:
        Channel capacity ``B1`` in Mbps.
    max_collision_probability:
        The primary-protection cap ``gamma_m`` of eq. (6).
    rng:
        Randomness source for the occupancy chain.
    """

    def __init__(self, index: int, p01: float, p10: float, bandwidth_mbps: float,
                 max_collision_probability: float, *, rng: RandomState = None) -> None:
        if index < 0:
            raise ConfigurationError(f"index must be non-negative, got {index}")
        self.index = int(index)
        self.bandwidth_mbps = check_positive(bandwidth_mbps, "bandwidth_mbps")
        self.max_collision_probability = check_probability(
            max_collision_probability, "max_collision_probability")
        self.chain = OccupancyChain(p01, p10, rng=rng)

    @property
    def utilization(self) -> float:
        """Stationary primary-user utilisation eta_m (eq. 1)."""
        return self.chain.utilization

    @property
    def state(self) -> int:
        """Current occupancy state (0 idle / 1 busy)."""
        return self.chain.state

    def __repr__(self) -> str:
        return (f"LicensedChannel(index={self.index}, eta={self.utilization:.3f}, "
                f"B1={self.bandwidth_mbps} Mbps, gamma={self.max_collision_probability})")


class Spectrum:
    """The full spectrum: one common channel plus ``M`` licensed channels.

    This is the authoritative source of *true* channel occupancy during a
    simulation; sensing (Section III-B) only ever sees noisy observations
    of it.

    Parameters
    ----------
    n_licensed:
        Number of licensed channels ``M``.
    p01, p10:
        Markov transition probabilities, either scalars (applied to every
        channel, as in the paper's evaluation) or length-``M`` sequences.
    licensed_bandwidth_mbps:
        Per-channel capacity ``B1``.
    common_bandwidth_mbps:
        Common-channel capacity ``B0``.
    max_collision_probability:
        Collision cap ``gamma`` (scalar or per-channel).
    rng:
        Root randomness; each channel gets an independent child stream.
    """

    def __init__(self, n_licensed: int, p01, p10, *, licensed_bandwidth_mbps: float = 0.3,
                 common_bandwidth_mbps: float = 0.3, max_collision_probability=0.2,
                 rng: RandomState = None) -> None:
        if n_licensed <= 0:
            raise ConfigurationError(f"n_licensed must be positive, got {n_licensed}")
        self.n_licensed = int(n_licensed)
        self.common_bandwidth_mbps = check_positive(
            common_bandwidth_mbps, "common_bandwidth_mbps")
        p01s = _broadcast_param(p01, self.n_licensed, "p01")
        p10s = _broadcast_param(p10, self.n_licensed, "p10")
        gammas = _broadcast_param(max_collision_probability, self.n_licensed,
                                  "max_collision_probability")
        streams = spawn_streams(rng, [f"channel-{m}" for m in range(self.n_licensed)])
        self.channels: List[LicensedChannel] = [
            LicensedChannel(m, p01s[m], p10s[m], licensed_bandwidth_mbps, gammas[m],
                            rng=streams[f"channel-{m}"])
            for m in range(self.n_licensed)
        ]
        self._slot = 0

    @property
    def slot(self) -> int:
        """Index of the most recently generated slot."""
        return self._slot

    @property
    def utilizations(self) -> np.ndarray:
        """Per-channel stationary utilisations eta_m."""
        return np.array([ch.utilization for ch in self.channels])

    @property
    def licensed_bandwidth_mbps(self) -> float:
        """Capacity ``B1`` of each licensed channel (identical, per paper)."""
        return self.channels[0].bandwidth_mbps

    @property
    def collision_caps(self) -> np.ndarray:
        """Per-channel maximum allowable collision probabilities gamma_m."""
        return np.array([ch.max_collision_probability for ch in self.channels])

    def occupancy(self) -> np.ndarray:
        """Current true occupancy vector ``S(t)`` without advancing time."""
        return np.array([ch.state for ch in self.channels], dtype=np.int8)

    def advance(self) -> ChannelState:
        """Advance every channel one slot and return the new snapshot."""
        for channel in self.channels:
            channel.chain.step()
        self._slot += 1
        return ChannelState(slot=self._slot, occupancy=self.occupancy())

    def current_state(self) -> ChannelState:
        """Snapshot of the current slot without advancing time."""
        return ChannelState(slot=self._slot, occupancy=self.occupancy())

    def __len__(self) -> int:
        return self.n_licensed

    def __repr__(self) -> str:
        return (f"Spectrum(M={self.n_licensed}, B1={self.licensed_bandwidth_mbps} Mbps, "
                f"B0={self.common_bandwidth_mbps} Mbps, slot={self._slot})")


def _broadcast_param(value, size: int, name: str) -> np.ndarray:
    """Broadcast a scalar-or-sequence parameter to a length-``size`` array."""
    if np.isscalar(value):
        return np.full(size, float(value))
    arr = np.asarray(value, dtype=float)
    if arr.shape != (size,):
        raise ConfigurationError(
            f"{name} must be a scalar or length-{size} sequence, got shape {arr.shape}")
    return arr
