"""Property-based tests for the interference colouring.

Hypothesis generates random interference graphs and channel states and
checks the two invariants the graph-coloring scheme rests on:

* the colouring is *proper* -- no two adjacent clusters share a colour
  (and hence never a channel), and
* the greedy colouring never needs more than ``max_degree + 1`` colours
  (the classical greedy bound).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import interference_coloring
from repro.net.interference import (
    interference_graph_from_edges,
    is_valid_allocation,
    max_degree,
)
from repro.sim.channel_assignment import color_partition_allocation


@st.composite
def interference_graphs(draw):
    """A random graph over 2..12 FBS ids with a sampled edge subset."""
    n = draw(st.integers(min_value=2, max_value=12))
    fbs_ids = list(range(1, n + 1))
    candidates = list(itertools.combinations(fbs_ids, 2))
    edges = draw(st.lists(st.sampled_from(candidates), unique=True,
                          max_size=len(candidates)))
    return interference_graph_from_edges(fbs_ids, edges)


@given(graph=interference_graphs())
@settings(max_examples=50, deadline=None)
def test_coloring_is_proper(graph):
    colors = interference_coloring(graph)
    assert set(colors) == set(graph.nodes)
    for u, v in graph.edges:
        assert colors[u] != colors[v], (
            f"adjacent clusters {u} and {v} share colour {colors[u]}")


@given(graph=interference_graphs())
@settings(max_examples=50, deadline=None)
def test_coloring_respects_greedy_bound(graph):
    colors = interference_coloring(graph)
    n_colors = max(colors.values()) + 1 if colors else 0
    assert n_colors <= max_degree(graph) + 1


@given(graph=interference_graphs(),
       channel_bits=st.lists(st.booleans(), min_size=1, max_size=8),
       posterior_seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=50, deadline=None)
def test_color_partition_allocation_is_conflict_free(
        graph, channel_bits, posterior_seed):
    """The channel dealing built on the colouring never hands one
    channel to two adjacent clusters, for any access set / posteriors."""
    available = [m for m, open_ in enumerate(channel_bits) if open_]
    # Deterministic pseudo-posteriors in (0, 1), varied by the seed.
    posteriors = {m: ((posterior_seed + 7919 * m) % 97 + 1) / 99.0
                  for m in range(len(channel_bits))}
    fbs_ids = sorted(graph.nodes)
    allocation = color_partition_allocation(
        graph, fbs_ids, available, posteriors)
    assert set(allocation) == set(fbs_ids)
    assert is_valid_allocation(graph, allocation)
    for channels in allocation.values():
        assert channels <= set(available)
