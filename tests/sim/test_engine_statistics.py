"""Statistical validation of the engine's stochastic layers.

These tests run longer horizons and verify that what the engine *realises*
matches what the models *promise*: delivery rates match the link success
probabilities, posteriors drive access as eq. (7) dictates, and the GOP
accounting conserves quality.
"""

import numpy as np
import pytest

from repro.experiments.scenarios import single_fbs_scenario
from repro.sim.engine import SimulationEngine


@pytest.fixture(scope="module")
def long_run_records():
    """One long heuristic1 run with per-slot records (module-scoped)."""
    config = single_fbs_scenario(n_gops=60, seed=42, scheme="heuristic1")
    engine = SimulationEngine(config, record_slots=True)
    for _ in range(config.n_slots):
        engine.step()
    return config, engine


class TestDeliveryStatistics:
    def test_fbs_delivery_rate_matches_success_probability(self, long_run_records):
        config, engine = long_run_records
        # Pick the user that heuristic1 keeps on the FBS most often.
        counts = {}
        successes = {}
        for record in engine.records:
            for user in record.problem.users:
                if record.allocation.uses_mbs(user.user_id):
                    continue
                if record.allocation.rho_fbs.get(user.user_id, 0.0) <= 0.0:
                    continue
                if record.problem.expected_channels[user.fbs_id] <= 0.0:
                    continue
                counts[user.user_id] = counts.get(user.user_id, 0) + 1
                delivered = record.increments[user.user_id] > 0.0
                successes[user.user_id] = (
                    successes.get(user.user_id, 0) + int(delivered))
        user_id, n = max(counts.items(), key=lambda kv: kv[1])
        assert n > 150
        empirical = successes[user_id] / n
        expected = config.topology.fbs_success[user_id]
        assert empirical == pytest.approx(expected, abs=0.06)

    def test_increment_magnitude_when_delivered(self, long_run_records):
        _config, engine = long_run_records
        for record in engine.records[:100]:
            for user in record.problem.users:
                increment = record.increments[user.user_id]
                if increment <= 0.0 or record.allocation.uses_mbs(user.user_id):
                    continue
                rho = record.allocation.rho_fbs.get(user.user_id, 0.0)
                g_i = record.problem.expected_channels[user.fbs_id]
                expected = rho * g_i * user.r_fbs
                # Equal unless clamped by the GOP ceiling.
                assert increment <= expected + 1e-9


class TestAccessStatistics:
    def test_access_rate_tracks_access_probability(self, long_run_records):
        _config, engine = long_run_records
        # Bucket slots by quantised P_D and compare empirical access rate.
        buckets = {}
        for record in engine.records:
            for m, p_d in enumerate(record.access.access_probabilities):
                key = round(float(p_d), 1)
                hits, total = buckets.get(key, (0, 0))
                accessed = int(record.access.decisions[m] == 0)
                buckets[key] = (hits + accessed, total + 1)
        for probability, (hits, total) in buckets.items():
            if total >= 300:
                assert hits / total == pytest.approx(probability, abs=0.08)

    def test_g_is_sum_of_accessed_posteriors(self, long_run_records):
        _config, engine = long_run_records
        for record in engine.records[:50]:
            available = record.access.available_channels
            expected = float(record.access.posteriors[available].sum())
            assert record.access.expected_available == pytest.approx(expected)


class TestGopConservation:
    def test_recorded_gop_quality_equals_sum_of_increments(self):
        config = single_fbs_scenario(n_gops=2, seed=11, scheme="heuristic1")
        engine = SimulationEngine(config, record_slots=True)
        for _ in range(config.deadline_slots):
            engine.step()
        for user in config.topology.users:
            clock = engine.clocks[user.user_id]
            delivered = sum(record.increments[user.user_id]
                            for record in engine.records)
            assert clock.completed_gop_psnrs[0] == pytest.approx(
                clock.sequence.base_psnr_db + delivered)
