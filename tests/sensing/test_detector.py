"""Tests for the per-sensor detection model (Section III-B)."""

import numpy as np
import pytest

from repro.sensing.detector import SensingResult, SpectrumSensor
from repro.spectrum.markov import BUSY, IDLE
from repro.utils.errors import ConfigurationError


class TestSpectrumSensor:
    def test_perfect_sensor(self):
        sensor = SpectrumSensor(0.0, 0.0, rng=0)
        assert sensor.sense(0, IDLE).observation == IDLE
        assert sensor.sense(0, BUSY).observation == BUSY

    def test_always_wrong_sensor(self):
        sensor = SpectrumSensor(1.0, 1.0, rng=0)
        assert sensor.sense(0, IDLE).observation == BUSY
        assert sensor.sense(0, BUSY).observation == IDLE

    def test_empirical_false_alarm_rate(self):
        sensor = SpectrumSensor(0.3, 0.2, rng=1)
        false_alarms = sum(sensor.sense(0, IDLE).observation == BUSY
                           for _ in range(20000))
        assert false_alarms / 20000 == pytest.approx(0.3, abs=0.01)

    def test_empirical_miss_rate(self):
        sensor = SpectrumSensor(0.3, 0.2, rng=2)
        misses = sum(sensor.sense(0, BUSY).observation == IDLE
                     for _ in range(20000))
        assert misses / 20000 == pytest.approx(0.2, abs=0.01)

    def test_result_carries_error_profile(self):
        sensor = SpectrumSensor(0.25, 0.15, sensor_id=7, rng=0)
        result = sensor.sense(3, IDLE)
        assert result.channel == 3
        assert result.sensor_id == 7
        assert result.false_alarm == 0.25
        assert result.miss_detection == 0.15
        assert sensor.error_profile() == (0.25, 0.15)

    def test_invalid_true_state(self):
        with pytest.raises(ConfigurationError):
            SpectrumSensor(0.3, 0.3, rng=0).sense(0, 2)

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            SpectrumSensor(1.5, 0.3)
        with pytest.raises(ConfigurationError):
            SpectrumSensor(0.3, -0.1)


class TestSensingResult:
    def test_likelihood_ratio_busy_observation(self):
        # Pr{Theta=1|H1}/Pr{Theta=1|H0} = (1-delta)/epsilon
        result = SensingResult(channel=0, observation=BUSY,
                               false_alarm=0.3, miss_detection=0.2)
        assert result.likelihood_ratio == pytest.approx(0.8 / 0.3)

    def test_likelihood_ratio_idle_observation(self):
        # Pr{Theta=0|H1}/Pr{Theta=0|H0} = delta/(1-epsilon)
        result = SensingResult(channel=0, observation=IDLE,
                               false_alarm=0.3, miss_detection=0.2)
        assert result.likelihood_ratio == pytest.approx(0.2 / 0.7)

    def test_uninformative_sensor_has_unit_ratio(self):
        # epsilon + (1 - delta) = 1 means the observation carries no
        # information; both likelihood ratios equal 1.
        for obs in (IDLE, BUSY):
            result = SensingResult(channel=0, observation=obs,
                                   false_alarm=0.4, miss_detection=0.6)
            assert result.likelihood_ratio == pytest.approx(1.0)

    def test_perfect_sensor_extreme_ratios(self):
        busy = SensingResult(channel=0, observation=BUSY,
                             false_alarm=0.0, miss_detection=0.0)
        assert busy.likelihood_ratio == np.inf
        idle = SensingResult(channel=0, observation=IDLE,
                             false_alarm=0.0, miss_detection=0.0)
        assert idle.likelihood_ratio == 0.0

    def test_invalid_observation_rejected(self):
        with pytest.raises(ConfigurationError):
            SensingResult(channel=0, observation=5, false_alarm=0.3,
                          miss_detection=0.3)
