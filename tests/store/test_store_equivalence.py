"""Differential contract: the store never changes a single result byte.

Runs the same small sweep with the scenario store on and off, serially
and with a 2-worker pool, and asserts the serialised results and the
checkpoint files are byte-identical.  A warmed workspace must also skip
rebuilding (disk loads observed, zero misses) while still reproducing
the cold results exactly.
"""

import json

import pytest

from repro.experiments.results_io import sweep_to_dict
from repro.experiments.scenarios import single_fbs_scenario
from repro.sim.runner import sweep
from repro.store.scenario_store import (
    ENV_STORE,
    ENV_WORKSPACE,
    default_store,
    reset_default_store,
)

SWEEP_VALUES = (4, 6)
SWEEP_SCHEMES = ("proposed-fast", "heuristic1")
N_RUNS = 2


@pytest.fixture(autouse=True)
def isolated_store(monkeypatch):
    monkeypatch.delenv(ENV_STORE, raising=False)
    monkeypatch.delenv(ENV_WORKSPACE, raising=False)
    reset_default_store()
    yield
    reset_default_store()


def run_sweep(tmp_path, tag, *, jobs=1, workspace=None):
    config = single_fbs_scenario(n_gops=1, seed=20260807)
    checkpoint = tmp_path / f"{tag}.jsonl"
    result = sweep(config, "n_channels", list(SWEEP_VALUES),
                   list(SWEEP_SCHEMES), n_runs=N_RUNS, jobs=jobs,
                   checkpoint_path=str(checkpoint), workspace=workspace,
                   run_name=tag if workspace is not None else None)
    serialised = json.dumps(sweep_to_dict(result), sort_keys=True)
    return serialised, checkpoint.read_bytes()


def _canonical_checkpoint(raw):
    """Checkpoint bytes, line-order-insensitive.

    Cells are appended in *completion* order, which at ``--jobs 2`` is
    scheduling-dependent even between two identical store-on runs; each
    cell's record must still be byte-identical store on vs off.
    """
    return sorted(raw.splitlines())


@pytest.mark.parametrize("jobs", [1, 2])
def test_results_identical_store_on_vs_off(tmp_path, monkeypatch, jobs):
    on_json, on_checkpoint = run_sweep(tmp_path, f"on-{jobs}", jobs=jobs)
    # The env switch (not use_store) so --jobs pool workers see it too.
    monkeypatch.setenv(ENV_STORE, "0")
    reset_default_store()
    off_json, off_checkpoint = run_sweep(tmp_path, f"off-{jobs}", jobs=jobs)
    assert on_json == off_json
    if jobs == 1:
        assert on_checkpoint == off_checkpoint
    else:
        assert (_canonical_checkpoint(on_checkpoint)
                == _canonical_checkpoint(off_checkpoint))


@pytest.mark.parametrize("jobs", [1, 2])
def test_warmed_workspace_skips_rebuild(tmp_path, monkeypatch, jobs):
    from repro.store.scenario_store import ENV_DISK_FLOOR
    from repro.store.workspace import FileWorkspace
    # Floor 0 so the tiny test scenarios persist; the env is inherited
    # by --jobs pool workers, unlike a constructor argument.
    monkeypatch.setenv(ENV_DISK_FLOOR, "0")
    cold_json, _ = run_sweep(tmp_path, f"cold-{jobs}", jobs=jobs,
                             workspace=tmp_path / "ws")
    # The cold run persisted one artifact per sweep point (built in the
    # parent at jobs=1, in pool workers at jobs=2).
    persisted = FileWorkspace(tmp_path / "ws").scenario_refs()
    assert len(persisted) == len(SWEEP_VALUES)

    # A fresh process-global store against the same workspace: every
    # build must come from disk (or memory after the first load) --
    # never be recomputed.
    reset_default_store()
    warm_json, _ = run_sweep(tmp_path, f"warm-{jobs}", jobs=jobs,
                             workspace=tmp_path / "ws")
    warm_store = default_store()
    assert warm_json == cold_json
    if jobs == 1:
        assert warm_store.misses == 0
        assert warm_store.disk_loads == len(SWEEP_VALUES)
        assert warm_store.hits > 0


def test_campaign_runner_identical_store_on_vs_off(monkeypatch):
    from repro.sim.runner import MonteCarloRunner
    config = single_fbs_scenario(n_gops=1, seed=20260807)
    with_store = MonteCarloRunner(config, n_runs=2).run_all()
    monkeypatch.setenv(ENV_STORE, "0")
    reset_default_store()
    without = MonteCarloRunner(config, n_runs=2).run_all()
    for a, b in zip(with_store, without):
        assert a.per_user_psnr == b.per_user_psnr
        assert a.mean_psnr == b.mean_psnr
        assert list(a.collision_rates) == list(b.collision_rates)
