"""Primary-network spectrum substrate.

Implements the paper's spectrum model (Section III-A): ``M`` licensed
channels whose primary-user occupancy evolves as independent two-state
discrete-time Markov chains, plus one common unlicensed channel reserved
for the CR network.
"""

from repro.spectrum.channel import ChannelState, LicensedChannel, Spectrum
from repro.spectrum.markov import OccupancyChain, transition_probs_for_utilization

__all__ = [
    "ChannelState",
    "LicensedChannel",
    "OccupancyChain",
    "Spectrum",
    "transition_probs_for_utilization",
]
