"""Packet-loss probability from the SINR distribution (eq. 8).

Thin functional wrappers over the fading models for call sites that only
need the scalar probabilities and not a stateful link object.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


def packet_loss_probability(fading, threshold: float) -> float:
    """``P^F = F_X(H)`` -- probability the slot's SINR falls below ``H``.

    Parameters
    ----------
    fading:
        Any fading model exposing ``cdf`` (e.g. :class:`RayleighFading`).
    threshold:
        Decoding SINR threshold ``H`` (linear scale).
    """
    threshold = check_positive(threshold, "threshold", allow_zero=True)
    loss = float(fading.cdf(threshold))
    if not 0.0 <= loss <= 1.0:
        raise ValueError(f"fading model returned invalid CDF value {loss}")
    return loss


def success_probability(fading, threshold: float) -> float:
    """``bar P^F = 1 - F_X(H)`` -- probability the slot decodes."""
    return 1.0 - packet_loss_probability(fading, threshold)
