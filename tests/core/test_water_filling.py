"""Tests for the exact water-filling oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import water_filling
from repro.utils.errors import ConfigurationError


class TestKnownCases:
    def test_single_user_gets_whole_slot(self):
        rho, value = water_filling([0.9], [30.0], [1.0])
        assert rho == [pytest.approx(1.0)]
        assert value == pytest.approx(0.9 * math.log1p(1.0 / 30.0))

    def test_symmetric_users_split_equally(self):
        rho, _ = water_filling([0.8, 0.8], [30.0, 30.0], [1.0, 1.0])
        assert rho[0] == pytest.approx(0.5)
        assert rho[1] == pytest.approx(0.5)

    def test_budget_always_binds(self):
        # Log utility: any positive-weight user wants more time.
        rho, _ = water_filling([0.5, 0.7, 0.9], [28.0, 30.0, 32.0],
                               [0.5, 1.0, 2.0])
        assert sum(rho) == pytest.approx(1.0)

    def test_zero_weight_user_excluded(self):
        rho, value = water_filling([0.0, 0.8], [30.0, 30.0], [1.0, 1.0])
        assert rho[0] == 0.0
        assert rho[1] == pytest.approx(1.0)

    def test_zero_slope_user_excluded(self):
        rho, _ = water_filling([0.8, 0.8], [30.0, 30.0], [0.0, 1.0])
        assert rho[0] == 0.0
        assert rho[1] == pytest.approx(1.0)

    def test_all_degenerate_users(self):
        rho, value = water_filling([0.0, 0.0], [30.0, 30.0], [1.0, 1.0])
        assert rho == [0.0, 0.0]
        assert value == 0.0

    def test_empty_input(self):
        rho, value = water_filling([], [], [])
        assert rho == []
        assert value == 0.0

    def test_low_state_user_prioritised(self):
        # Equal links, one user far behind: water-filling favours it.
        rho, _ = water_filling([0.8, 0.8], [27.0, 40.0], [1.0, 1.0])
        assert rho[0] > rho[1]


class TestKktConditions:
    def test_active_users_share_marginal_utility(self):
        weights = [0.6, 0.8, 0.95]
        bases = [28.0, 31.0, 27.5]
        slopes = [1.2, 0.8, 1.5]
        rho, _ = water_filling(weights, bases, slopes)
        marginals = [
            weights[j] * slopes[j] / (bases[j] + rho[j] * slopes[j])
            for j in range(3) if rho[j] > 1e-12
        ]
        assert max(marginals) - min(marginals) < 1e-9

    def test_inactive_users_have_lower_marginal(self):
        weights = [0.9, 0.05]
        bases = [28.0, 35.0]
        slopes = [2.0, 0.1]
        rho, _ = water_filling(weights, bases, slopes)
        assert rho[1] == 0.0
        water_level = weights[0] * slopes[0] / (bases[0] + rho[0] * slopes[0])
        idle_marginal = weights[1] * slopes[1] / bases[1]
        assert idle_marginal <= water_level + 1e-12


class TestAgainstScipy:
    def test_matches_slsqp_on_random_instances(self):
        from scipy.optimize import minimize
        rng = np.random.default_rng(4)
        for _ in range(25):
            n = int(rng.integers(1, 6))
            weights = rng.random(n)
            bases = 20.0 + 10.0 * rng.random(n)
            slopes = rng.random(n) * 3.0
            _rho, value = water_filling(weights, bases, slopes)

            def negative(x):
                return -sum(weights[j] * np.log1p(x[j] * slopes[j] / bases[j])
                            for j in range(n))

            result = minimize(
                negative, np.full(n, 1.0 / n), bounds=[(0.0, 1.0)] * n,
                constraints=[{"type": "ineq", "fun": lambda x: 1.0 - x.sum()}],
                method="SLSQP")
            assert value >= -result.fun - 1e-8


class TestProperties:
    @given(
        n=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_feasible_and_optimal_structure(self, n, seed):
        rng = np.random.default_rng(seed)
        weights = rng.random(n)
        bases = 20.0 + 10.0 * rng.random(n)
        slopes = rng.random(n) * 3.0
        rho, value = water_filling(weights, bases, slopes)
        assert all(r >= 0.0 for r in rho)
        assert sum(rho) <= 1.0 + 1e-9
        assert value >= -1e-12
        # Perturbing any pair of active shares cannot improve the value.
        active = [j for j in range(n) if rho[j] > 1e-6]
        if len(active) >= 2:
            a, b = active[0], active[1]
            eps = min(rho[a], rho[b], 1e-4) / 2.0
            for sign in (+1, -1):
                perturbed = list(rho)
                perturbed[a] += sign * eps
                perturbed[b] -= sign * eps
                perturbed_value = sum(
                    weights[j] * math.log1p(perturbed[j] * slopes[j] / bases[j])
                    for j in range(n))
                assert perturbed_value <= value + 1e-10


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            water_filling([0.5], [30.0, 30.0], [1.0])

    def test_nonpositive_base(self):
        with pytest.raises(ConfigurationError):
            water_filling([0.5], [0.0], [1.0])

    def test_negative_weight(self):
        with pytest.raises(ConfigurationError):
            water_filling([-0.5], [30.0], [1.0])
