"""Managed on-disk workspace for experiment runs.

A :class:`FileWorkspace` gives every run a predictable home::

    <root>/
      index.json      -- run registry (atomic, human-readable)
      scenarios/      -- content-addressed BuiltScenario artifacts
      results/        -- figure result JSON files
      checkpoints/    -- sweep checkpoints (resume state)
      traces/         -- execution traces (--trace)
      manifests/      -- run manifests (--manifest)
      jobs/           -- job-service records and per-job logs (repro serve)

Scenario artifacts are content-addressed by
:func:`~repro.store.confighash.scenario_hash`, so concurrent writers of
the same scenario produce identical bytes and the atomic rename makes
the last one win harmlessly.  Every write in the workspace goes through
:func:`repro.utils.fsio.atomic_write_text`, so an interrupted run never
leaves a half-written index or artifact behind.

The index maps run names to their files and the scenario hashes they
used; :meth:`FileWorkspace.gc` reclaims scenario artifacts using it --
an artifact is *protected* when some registered run still has a live
checkpoint that references it (resuming that checkpoint must not have
to rebuild), or when an active job record (queued/building/running,
see ``jobs/``) references it, and runs whose files have all vanished
are pruned from the index.  The CLI surfaces this as ``repro workspace
list|inspect|gc``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.logging import get_logger
from repro.sim.build import BuiltScenario
from repro.utils.errors import ConfigurationError
from repro.utils.fsio import atomic_write_text

logger = get_logger(__name__)

#: Name of the JSON run registry at the workspace root.
INDEX_NAME = "index.json"

#: Schema version of the index file.
INDEX_FORMAT_VERSION = 1

#: Managed subdirectories, created eagerly so every path helper works.
SUBDIRS = ("scenarios", "results", "checkpoints", "traces", "manifests",
           "jobs")

#: Job-record states that still need their inputs: a job in one of these
#: states has not produced (or finished producing) its results, so gc
#: must not reclaim the scenario artifacts it references.
ACTIVE_JOB_STATES = frozenset({"queued", "building", "running"})

#: Index-entry fields accumulated as lists across repeated registrations
#: (a figure run may save several result files into one entry).
_MERGED_FIELDS = ("results", "scenario_hashes")


class FileWorkspace:
    """One managed experiment directory (layout in the module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        for sub in SUBDIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:
        return f"FileWorkspace({str(self.root)!r})"

    # ------------------------------------------------------------------
    # Path helpers
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        """The run registry file."""
        return self.root / INDEX_NAME

    def scenario_path(self, ref: str) -> Path:
        """Content-addressed artifact file of one scenario hash."""
        return self.root / "scenarios" / f"{ref}.json"

    def results_path(self, name: str) -> Path:
        """A result file under ``results/``."""
        return self.root / "results" / name

    def checkpoint_path(self, name: str) -> Path:
        """A sweep checkpoint under ``checkpoints/``."""
        return self.root / "checkpoints" / name

    def trace_path(self, name: str) -> Path:
        """A trace file under ``traces/``."""
        return self.root / "traces" / name

    def manifest_path(self, name: str) -> Path:
        """A manifest file under ``manifests/``."""
        return self.root / "manifests" / name

    def job_path(self, job_id: str) -> Path:
        """The persistent record of one service job under ``jobs/``."""
        return self.root / "jobs" / f"{job_id}.json"

    def _relative(self, path: Union[str, Path]) -> str:
        """Index representation of a path: relative when inside the root.

        Outside-root paths are stored absolute: a relative form would be
        cwd-dependent and :meth:`_resolve` would wrongly anchor it at the
        workspace root.
        """
        path = Path(path)
        try:
            return str(path.resolve().relative_to(self.root.resolve()))
        except ValueError:
            return str(path.resolve())

    def _resolve(self, recorded: str) -> Path:
        """Inverse of :meth:`_relative`."""
        path = Path(recorded)
        return path if path.is_absolute() else self.root / path

    # ------------------------------------------------------------------
    # Scenario artifacts
    # ------------------------------------------------------------------
    def save_scenario(self, built: BuiltScenario) -> Path:
        """Persist a built scenario under its hash; idempotent.

        An existing file is left untouched: content addressing means it
        already holds these exact bytes (same hash, same build).
        """
        if not built.scenario_hash:
            raise ConfigurationError(
                "cannot persist a BuiltScenario without a scenario_hash; "
                "build it through the ScenarioStore")
        path = self.scenario_path(built.scenario_hash)
        if not path.exists():
            atomic_write_text(
                path, json.dumps(built.to_payload(), sort_keys=True))
            logger.info("workspace: persisted scenario %s",
                        built.scenario_hash[:12])
        return path

    def load_scenario(self, ref: str) -> Optional[BuiltScenario]:
        """Load a persisted scenario, or ``None`` if absent/unreadable.

        Unreadable means a truncated file or an incompatible format
        version; both degrade to a cache miss (the store rebuilds and
        rewrites), never to an error.
        """
        path = self.scenario_path(ref)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return BuiltScenario.from_payload(payload)
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, ConfigurationError) as exc:
            logger.warning("workspace: discarding unreadable scenario "
                           "artifact %s (%s)", path.name, exc)
            return None

    def scenario_refs(self) -> List[str]:
        """Hashes of every persisted scenario artifact, sorted."""
        return sorted(path.stem
                      for path in (self.root / "scenarios").glob("*.json"))

    # ------------------------------------------------------------------
    # Run registry
    # ------------------------------------------------------------------
    def _read_index(self) -> dict:
        try:
            index = json.loads(self.index_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return {"format_version": INDEX_FORMAT_VERSION, "runs": {}}
        except ValueError:
            logger.warning("workspace: index %s is unreadable; starting a "
                           "fresh registry", self.index_path)
            return {"format_version": INDEX_FORMAT_VERSION, "runs": {}}
        index.setdefault("format_version", INDEX_FORMAT_VERSION)
        index.setdefault("runs", {})
        return index

    def _write_index(self, index: dict) -> None:
        atomic_write_text(
            self.index_path,
            json.dumps(index, indent=2, sort_keys=True) + "\n")

    def register_run(self, name: str, **fields: object) -> dict:
        """Create or update the index entry for run ``name``.

        ``None`` values are skipped; :data:`_MERGED_FIELDS` accumulate
        (order-preserving, deduplicated) across calls; path-valued
        fields are stored relative to the root when inside it.  Returns
        the merged entry.
        """
        index = self._read_index()
        entry = index["runs"].setdefault(name, {})
        for key, value in fields.items():
            if value is None:
                continue
            if key in _MERGED_FIELDS:
                merged = list(entry.get(key, []))
                items = value if isinstance(value, (list, tuple)) else [value]
                for item in items:
                    item = (self._relative(item) if key == "results"
                            else str(item))
                    if item not in merged:
                        merged.append(item)
                entry[key] = merged
            elif key in ("checkpoint", "manifest", "trace"):
                entry[key] = self._relative(value)
            else:
                entry[key] = value
        self._write_index(index)
        return entry

    def entries(self) -> Dict[str, dict]:
        """All registered runs, ``{name: entry}``."""
        return self._read_index()["runs"]

    def inspect(self, name: str) -> dict:
        """One run's entry plus the on-disk status of every file it names.

        Raises
        ------
        ConfigurationError
            For an unknown run name (listing the known ones).
        """
        runs = self.entries()
        if name not in runs:
            known = ", ".join(sorted(runs)) or "<none>"
            raise ConfigurationError(
                f"unknown run {name!r} in workspace {self.root} "
                f"(registered: {known})")
        entry = runs[name]
        files: Dict[str, bool] = {}
        for key in ("checkpoint", "manifest", "trace"):
            if key in entry:
                files[entry[key]] = self._resolve(entry[key]).exists()
        for recorded in entry.get("results", []):
            files[recorded] = self._resolve(recorded).exists()
        for ref in entry.get("scenario_hashes", []):
            files[self._relative(self.scenario_path(ref))] = \
                self.scenario_path(ref).exists()
        return {"name": name, "entry": entry, "files": files}

    # ------------------------------------------------------------------
    # Job records
    # ------------------------------------------------------------------
    def save_job(self, record: dict) -> Path:
        """Persist one job record (atomic; ``record["id"]`` names it).

        The job service (:mod:`repro.serve.jobs`) writes a record on
        every state transition, so a crashed server can be restarted
        against the same workspace and pick its jobs back up.
        """
        job_id = record.get("id")
        if not job_id:
            raise ConfigurationError("job record must carry an 'id' field")
        path = self.job_path(str(job_id))
        atomic_write_text(
            path, json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path

    def job_records(self) -> Dict[str, dict]:
        """All persisted job records, ``{job id: record}``.

        Unreadable files (torn by a crash before atomic writes existed,
        or foreign junk in ``jobs/``) are skipped with a warning rather
        than wedging every job listing.
        """
        records: Dict[str, dict] = {}
        for path in sorted((self.root / "jobs").glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                logger.warning("workspace: skipping unreadable job record "
                               "%s (%s)", path.name, exc)
                continue
            if isinstance(record, dict) and record.get("id"):
                records[str(record["id"])] = record
        return records

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(self, *, dry_run: bool = False) -> dict:
        """Reclaim unreferenced scenario artifacts and stale run entries.

        Protection rule: a scenario artifact survives when some
        registered run lists its hash *and* that run's checkpoint file
        still exists -- a live checkpoint may be resumed, and the
        resume should find its warmed build -- **or** when an active
        (queued/building/running) job record references it: a queued
        job has not touched its checkpoint yet, so without this a gc
        racing a busy job service would delete inputs the job is about
        to need.  Run entries whose checkpoint and results have all
        been deleted are pruned from the index.  With ``dry_run``
        nothing is deleted; the report shows what would happen.
        """
        index = self._read_index()
        protected = set()
        pruned_runs: List[str] = []
        active_jobs: List[str] = []
        for job_id, record in self.job_records().items():
            if record.get("state") in ACTIVE_JOB_STATES:
                active_jobs.append(job_id)
                protected.update(record.get("scenario_hashes", []))
        for name in sorted(index["runs"]):
            entry = index["runs"][name]
            checkpoint = entry.get("checkpoint")
            checkpoint_alive = (checkpoint is not None
                                and self._resolve(checkpoint).exists())
            results_alive = any(self._resolve(recorded).exists()
                                for recorded in entry.get("results", []))
            if checkpoint_alive:
                protected.update(entry.get("scenario_hashes", []))
            if (not checkpoint_alive and not results_alive
                    and name not in active_jobs):
                pruned_runs.append(name)
        removed: List[str] = []
        kept: List[str] = []
        for ref in self.scenario_refs():
            if ref in protected:
                kept.append(ref)
            else:
                removed.append(ref)
                if not dry_run:
                    self.scenario_path(ref).unlink()
        if not dry_run:
            for name in pruned_runs:
                del index["runs"][name]
            self._write_index(index)
        logger.info("workspace gc%s: %d scenario(s) removed, %d kept, "
                    "%d run entr%s pruned",
                    " (dry run)" if dry_run else "", len(removed), len(kept),
                    len(pruned_runs), "y" if len(pruned_runs) == 1 else "ies")
        return {
            "dry_run": dry_run,
            "removed_scenarios": removed,
            "kept_scenarios": kept,
            "pruned_runs": pruned_runs,
            "active_jobs": sorted(active_jobs),
        }
