"""Stdlib HTTP front end over :class:`~repro.serve.jobs.JobManager`.

A deliberately small, dependency-free service: ``ThreadingHTTPServer``
plus hand-routed JSON endpoints.  The contract (all JSON unless noted):

====== ================================== ===============================
Method Path                               Meaning
====== ================================== ===============================
GET    /healthz                           liveness + job-state counts
GET    /api/schemes                       registered allocation schemes
GET    /api/scenarios                     registered scenario generators
POST   /api/jobs                          submit a job spec (201; 200
                                          with ``deduplicated: true``
                                          when an equivalent job exists;
                                          ``{"force": true}`` bypasses)
GET    /api/jobs                          list job records
GET    /api/jobs/<id>                     one job record
POST   /api/jobs/<id>/cancel              two-stage cancel
GET    /api/jobs/<id>/events?since=N      parsed progress events + next
                                          poll index
GET    /api/jobs/<id>/result              the result artifact, byte for
                                          byte as the CLI wrote it
GET    /api/jobs/<id>/manifest            the provenance manifest sidecar
GET    /api/jobs/<id>/trace               the span trace, streamed as
                                          ``application/x-ndjson``
GET    /api/jobs/<id>/log                 the job's stderr log (text)
GET    /metrics                           Prometheus text: server job
                                          counters + absorbed per-job
                                          worker registries
====== ================================== ===============================

The result endpoint reads the artifact's raw bytes off disk -- it never
re-serialises -- which is what makes the service's byte-identity
guarantee trivially auditable.  The trace endpoint re-emits events one
line at a time through :func:`repro.obs.trace.iter_trace`, so even a
200k-event trace never materialises in server memory.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.obs.export import prometheus_text
from repro.obs.logging import get_logger
from repro.obs.trace import iter_trace
from repro.serve.jobs import JobError, JobManager
from repro.store.workspace import FileWorkspace

logger = get_logger(__name__)


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server, carrying the shared :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    # -- response helpers ----------------------------------------------

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _send_file(self, path: Path, content_type: str) -> None:
        try:
            body = path.read_bytes()
        except OSError:
            self._send_error_json(404, f"artifact {path.name} not available "
                                       f"(job still running?)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_ndjson(self, path: Path) -> None:
        """Stream a JSONL artifact event by event (chunked transfer)."""
        if not path.exists():
            self._send_error_json(404, f"artifact {path.name} not available "
                                       f"(job still running?)")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for event in iter_trace(str(path)):
            line = json.dumps(event, separators=(",", ":")).encode("utf-8") \
                + b"\n"
            self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
            self.wfile.write(line + b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise JobError("request body must be a JSON object")
        return payload

    def log_message(self, format: str, *args: object) -> None:
        logger.info("serve: %s %s", self.address_string(), format % args)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        manager = self.server.manager
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if url.path == "/healthz":
                counts: dict = {}
                for record in manager.jobs():
                    state = record.get("state", "?")
                    counts[state] = counts.get(state, 0) + 1
                self._send_json({"status": "ok", "version": __version__,
                                 "jobs": counts})
            elif url.path == "/metrics":
                text = prometheus_text(manager.metrics_registry())
                body = text.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif url.path == "/api/schemes":
                from repro.registry import scheme_registry

                self._send_json({"schemes": [
                    {"name": info.name, "flags": list(info.flags),
                     "description": info.description}
                    for info in scheme_registry()]})
            elif url.path == "/api/scenarios":
                from repro.registry import scenario_registry

                self._send_json({"scenarios": [
                    {"name": info.name, "description": info.description}
                    for info in scenario_registry()]})
            elif url.path == "/api/jobs":
                self._send_json({"jobs": manager.jobs()})
            elif len(parts) == 3 and parts[:2] == ["api", "jobs"]:
                self._send_json(manager.get(parts[2]))
            elif len(parts) == 4 and parts[:2] == ["api", "jobs"]:
                self._get_job_artifact(parts[2], parts[3], url.query)
            else:
                self._send_error_json(404, f"unknown path {url.path!r}")
        except JobError as exc:
            self._send_error_json(404, str(exc))
        except BrokenPipeError:
            pass

    def _get_job_artifact(self, job_id: str, what: str, query: str) -> None:
        manager = self.server.manager
        if what == "events":
            since = 0
            values = parse_qs(query).get("since")
            if values:
                try:
                    since = int(values[0])
                except ValueError:
                    self._send_error_json(400, "since must be an integer")
                    return
            events, next_index = manager.events(job_id, since)
            self._send_json({"events": events, "next": next_index})
        elif what == "result":
            record = manager.get(job_id)
            # A simulate campaign's "result" is its formatted stdout
            # report; figures produce a JSON result file.
            if "result" in record.get("artifacts", {}):
                self._send_file(manager.artifact_path(job_id, "result"),
                                "application/json")
            else:
                self._send_file(manager.artifact_path(job_id, "stdout"),
                                "text/plain; charset=utf-8")
        elif what == "manifest":
            self._send_file(manager.artifact_path(job_id, "manifest"),
                            "application/json")
        elif what == "trace":
            self._send_ndjson(manager.artifact_path(job_id, "trace"))
        elif what == "log":
            self._send_file(manager.artifact_path(job_id, "log"),
                            "text/plain; charset=utf-8")
        else:
            self._send_error_json(404, f"unknown job resource {what!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        manager = self.server.manager
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if url.path == "/api/jobs":
                body = self._read_body()
                force = bool(body.pop("force", False))
                record, deduplicated = manager.submit(body, force=force)
                payload = dict(record)
                payload["deduplicated"] = deduplicated
                self._send_json(payload, status=200 if deduplicated else 201)
            elif (len(parts) == 4 and parts[:2] == ["api", "jobs"]
                    and parts[3] == "cancel"):
                self._send_json(manager.cancel(parts[2]))
            else:
                self._send_error_json(404, f"unknown path {url.path!r}")
        except JobError as exc:
            status = 404 if "unknown job" in str(exc) else 400
            self._send_error_json(status, str(exc))
        except BrokenPipeError:
            pass


def make_server(workspace: Union[str, Path, FileWorkspace], *,
                host: str = "127.0.0.1", port: int = 8765,
                job_workers: int = 2) -> ServiceServer:
    """Build (but do not start) a service over one workspace.

    The manager's worker pool is started -- and persisted jobs
    recovered -- by :func:`serve_forever` or an explicit
    ``server.manager.start()``; binding is immediate, so ``port=0``
    (tests) can read the chosen port from ``server.server_address``.
    """
    manager = JobManager(workspace, job_workers=job_workers)
    return ServiceServer((host, port), manager)


def serve_forever(server: ServiceServer,
                  should_stop: Optional[Callable[[], bool]] = None) -> None:
    """Run a server until interrupted, then drain and stop.

    Recovery of persisted jobs happens first, so restarting a crashed
    server resumes its interrupted sweeps before accepting new traffic.
    ``should_stop`` is polled a few times a second; it defaults to
    :func:`repro.exec.supervisor.shutdown_draining`, so the CLI's
    two-stage SIGINT/SIGTERM coordinator (whose stage-1 handler only
    sets a flag) stops the accept loop cleanly.  Running jobs get a
    graceful SIGTERM and return to ``queued`` for the next server life.
    """
    from repro.exec.supervisor import shutdown_draining

    if should_stop is None:
        should_stop = shutdown_draining
    resumed = server.manager.start()
    host, port = server.server_address[:2]
    logger.info("serve: listening on %s:%d (%d job worker(s), workspace %s)",
                host, port, server.manager.job_workers,
                server.manager.workspace.root)
    if resumed:
        logger.info("serve: resumed %d interrupted job(s)", len(resumed))
    accept_thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.2},
        name="repro-serve-accept", daemon=True)
    accept_thread.start()
    try:
        while accept_thread.is_alive() and not should_stop():
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        accept_thread.join(timeout=5.0)
        server.manager.stop(graceful=True)
        server.server_close()
        logger.info("serve: stopped")
