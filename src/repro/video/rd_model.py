"""The MGS rate-distortion model ``W(R) = alpha + beta * R`` (eq. 9).

``alpha`` is the PSNR of the base layer alone (received rate ~ 0 extra)
and ``beta`` is the PSNR gain in dB per Mbps of received MGS enhancement
data.  The model already averages over decoding dependencies and error
propagation across frames (the paper cites Wien et al. [5]).

Problem (10) uses per-slot PSNR increments rather than rates directly:
a user receiving the full bandwidth ``B_i`` of one channel for one of the
``T`` slots in a GOP window gains ``R_{i,j} = beta_j * B_i / T`` dB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MgsRateDistortion:
    """Linear MGS rate-distortion curve for one encoded sequence.

    Attributes
    ----------
    alpha_db:
        Base-layer PSNR in dB (the intercept of eq. 9).
    beta_db_per_mbps:
        PSNR slope in dB per Mbps of received enhancement-layer rate.
    max_rate_mbps:
        Rate at which the encoding saturates (all MGS NAL units received);
        beyond it extra rate adds no quality.  ``inf`` disables saturation,
        matching the paper's unbounded linear model.
    """

    alpha_db: float
    beta_db_per_mbps: float
    max_rate_mbps: float = float("inf")

    def __post_init__(self) -> None:
        check_positive(self.alpha_db, "alpha_db")
        check_positive(self.beta_db_per_mbps, "beta_db_per_mbps")
        if self.max_rate_mbps <= 0:
            raise ValueError(f"max_rate_mbps must be positive, got {self.max_rate_mbps}")

    @property
    def max_psnr_db(self) -> float:
        """Quality when the whole enhancement layer is received.

        Infinite when ``max_rate_mbps`` is infinite (the paper's unbounded
        linear model).
        """
        if self.max_rate_mbps == float("inf"):
            return float("inf")
        return self.alpha_db + self.beta_db_per_mbps * self.max_rate_mbps

    def psnr(self, rate_mbps: float) -> float:
        """Average Y-PSNR at received rate ``rate_mbps`` (eq. 9)."""
        rate_mbps = check_positive(rate_mbps, "rate_mbps", allow_zero=True)
        effective = min(rate_mbps, self.max_rate_mbps)
        return self.alpha_db + self.beta_db_per_mbps * effective

    def rate_for_psnr(self, psnr_db: float) -> float:
        """Received rate needed to reach ``psnr_db`` (inverse of eq. 9).

        Returns 0 for targets at or below the base-layer quality.
        """
        if psnr_db <= self.alpha_db:
            return 0.0
        rate = (psnr_db - self.alpha_db) / self.beta_db_per_mbps
        if rate > self.max_rate_mbps:
            raise ValueError(
                f"PSNR {psnr_db} dB is unreachable: saturates at "
                f"{self.psnr(self.max_rate_mbps)} dB")
        return rate

    def slot_increment(self, bandwidth_mbps: float, deadline_slots: int) -> float:
        """Per-slot PSNR increment constant ``R_{i,j} = beta * B_i / T``.

        This is the quantity the allocation problem (10) works in: a user
        holding one full channel of bandwidth ``B_i`` for one of the ``T``
        slots of a GOP window gains this many dB.
        """
        bandwidth_mbps = check_positive(bandwidth_mbps, "bandwidth_mbps",
                                        allow_zero=True)
        if deadline_slots <= 0:
            raise ValueError(f"deadline_slots must be positive, got {deadline_slots}")
        return self.beta_db_per_mbps * bandwidth_mbps / float(deadline_slots)
