"""Global switch for the accelerated hot paths.

Two layers of the per-slot stack have dual implementations of their
inner numerics:

* the **scalar oracle** -- the original, straight-from-the-paper code
  (pure-Python water-filling, per-iteration helper calls in the dual
  subgradient loop, per-observation :class:`SensingResult` objects and
  per-user fading draws in the simulation engine).  It is kept verbatim
  as the reference against which everything else is validated.
* the **accelerated path** -- numpy-vectorised water-filling breakpoint
  scan, a compiled per-problem representation with per-group result
  caching (:class:`repro.core.reference.CompiledSlotProblem`), a
  hoisted-invariant subgradient iteration kernel in
  :mod:`repro.core.dual`, and the batched PHY/sensing engine backend
  (one uniform array draw per slot for all sensing observations, one
  vectorized Bayesian-fusion pass over all channels, one exponential
  array draw for all block-fading margins -- see
  :meth:`repro.sim.engine.SimulationEngine._sense_fuse_batched`).

Both paths produce **bit-identical** results -- including identical RNG
stream consumption, so checkpoints and ``--jobs N`` sweeps are
byte-identical whichever path ran (asserted by the differential suites
``tests/*/test_batched_equivalence.py`` and by
``benchmarks/test_bench_solver.py`` / ``benchmarks/test_bench_engine.py``).
The switch exists so the benchmarks can time one path against the other
and so an operator can fall back to the oracle when debugging numerics.
The accelerated path is on by default.
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def acceleration_enabled() -> bool:
    """Whether the accelerated solver path is active (default ``True``)."""
    return _ENABLED


@contextmanager
def use_acceleration(enabled: bool):
    """Context manager forcing the accelerated path on or off.

    Used by the solver benchmark to run the scalar oracle and the
    accelerated path on identical inputs, and by tests that assert the
    two are bit-identical.  Not thread-safe (the flag is process-global);
    the simulation workers each run in their own process, so the switch
    composes fine with ``--jobs``.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous
