"""Tests for the distributed dual-decomposition algorithm (Tables I/II)."""

import numpy as np
import pytest

from repro.core.dual import DualDecompositionSolver, fast_solve, flip_polish
from repro.core.problem import check_feasible
from repro.core.reference import exhaustive_reference_solution, solve_given_assignment
from repro.utils.errors import ConfigurationError, ConvergenceError
from tests.conftest import make_problem, random_problem


class TestOptimality:
    def test_matches_oracle_on_fixed_instance(self):
        problem = make_problem(3)
        exact = exhaustive_reference_solution(problem)
        solution = DualDecompositionSolver().solve(problem)
        assert solution.allocation.objective == pytest.approx(
            exact.objective, abs=1e-7)

    def test_matches_oracle_on_random_instances(self):
        rng = np.random.default_rng(11)
        misses = 0
        for _ in range(40):
            problem = random_problem(rng)
            exact = exhaustive_reference_solution(problem)
            solution = DualDecompositionSolver().solve(problem)
            check_feasible(problem, solution.allocation)
            if exact.objective - solution.allocation.objective > 1e-6:
                misses += 1
        # The subgradient iteration occasionally stops one assignment
        # flip short of the optimum; it must be rare and tiny.
        assert misses <= 2

    def test_multi_fbs_instances(self):
        rng = np.random.default_rng(12)
        for _ in range(10):
            problem = random_problem(rng, max_users=5, max_fbss=3)
            exact = exhaustive_reference_solution(problem)
            solution = DualDecompositionSolver().solve(problem)
            assert solution.allocation.objective <= exact.objective + 1e-9

    def test_binary_assignment_theorem1(self):
        # Every user is on exactly one station with any leftover share zero.
        problem = make_problem(4, n_fbss=2, seed=5)
        allocation = DualDecompositionSolver().solve(problem).allocation
        for user in problem.users:
            on_mbs = allocation.uses_mbs(user.user_id)
            stray = (allocation.rho_fbs if on_mbs else allocation.rho_mbs)
            assert stray.get(user.user_id, 0.0) == 0.0


class TestConvergence:
    def test_reports_convergence(self):
        solution = DualDecompositionSolver().solve(make_problem(3))
        assert solution.converged
        assert solution.iterations < 5000

    def test_trace_recording(self):
        solver = DualDecompositionSolver(record_trace=True)
        solution = solver.solve(make_problem(3))
        assert solution.trace is not None
        assert solution.trace.shape == (solution.iterations + 1, 2)
        assert solution.trace_stations == [0, 1]
        # Multipliers settle: the last steps move less than the first.
        first_move = np.abs(solution.trace[1] - solution.trace[0]).sum()
        last_move = np.abs(solution.trace[-1] - solution.trace[-2]).sum()
        assert last_move <= first_move + 1e-12

    def test_no_trace_by_default(self):
        assert DualDecompositionSolver().solve(make_problem(2)).trace is None

    def test_strict_mode_raises(self):
        solver = DualDecompositionSolver(max_iterations=1, strict=True,
                                         threshold=1e-12)
        with pytest.raises(ConvergenceError):
            solver.solve(make_problem(3))

    def test_strict_error_carries_iterations_and_residual(self):
        solver = DualDecompositionSolver(max_iterations=3, strict=True,
                                         threshold=1e-12)
        with pytest.raises(ConvergenceError) as excinfo:
            solver.solve(make_problem(3))
        error = excinfo.value
        assert error.iterations == 3
        assert error.residual is not None
        assert np.isfinite(error.residual)
        # The residual is the squared multiplier movement that failed the
        # stopping test, so it must exceed the (tiny) threshold's bar.
        assert error.residual > 0.0

    def test_non_strict_returns_converged_false_instead_of_raising(self):
        # Same budget-starved configuration as the strict test: with
        # strict=False the solver must hand back its best effort.
        solver = DualDecompositionSolver(max_iterations=3, threshold=1e-12)
        solution = solver.solve(make_problem(3))
        assert solution.converged is False
        assert solution.iterations == 3
        check_feasible(make_problem(3), solution.allocation)

    def test_non_strict_returns_best_effort(self):
        solver = DualDecompositionSolver(max_iterations=2)
        solution = solver.solve(make_problem(3))
        assert not solution.converged
        check_feasible(make_problem(3), solution.allocation)

    def test_warm_start_accelerates(self):
        problem = make_problem(4, seed=8)
        cold = DualDecompositionSolver().solve(problem)
        warm = DualDecompositionSolver().solve(
            problem, initial_multipliers=cold.multipliers)
        assert warm.iterations <= cold.iterations
        assert warm.allocation.objective == pytest.approx(
            cold.allocation.objective, abs=1e-9)

    def test_scale_invariance(self):
        # Problem (12) is invariant to common (W, R) rescaling; the solver
        # must find the same shares.
        base = make_problem(3, seed=2)
        from repro.core.problem import SlotProblem, UserDemand
        scaled_users = [
            UserDemand(user_id=u.user_id, fbs_id=u.fbs_id, w_prev=10 * u.w_prev,
                       success_mbs=u.success_mbs, success_fbs=u.success_fbs,
                       r_mbs=10 * u.r_mbs, r_fbs=10 * u.r_fbs)
            for u in base.users
        ]
        scaled = SlotProblem(users=scaled_users,
                             expected_channels=base.expected_channels)
        rho_base = DualDecompositionSolver().solve(base).allocation
        rho_scaled = DualDecompositionSolver().solve(scaled).allocation
        for user in base.users:
            assert rho_base.time_share(user) == pytest.approx(
                rho_scaled.time_share(user), abs=1e-5)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"step_size": 0.0},
        {"threshold": 0.0},
        {"max_iterations": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            DualDecompositionSolver(**kwargs)


class TestFastSolve:
    def test_matches_oracle_on_random_instances(self):
        rng = np.random.default_rng(13)
        for _ in range(60):
            problem = random_problem(rng)
            exact = exhaustive_reference_solution(problem)
            fast = fast_solve(problem)
            check_feasible(problem, fast)
            assert fast.objective == pytest.approx(exact.objective, abs=1e-7)

    def test_unpolished_is_never_better_than_polished(self):
        rng = np.random.default_rng(14)
        for _ in range(10):
            problem = random_problem(rng)
            raw = fast_solve(problem, polish=False)
            polished = fast_solve(problem, polish=True)
            assert polished.objective >= raw.objective - 1e-12


class TestFlipPolish:
    def test_fixes_bad_assignment(self):
        problem = make_problem(3, seed=6)
        exact = exhaustive_reference_solution(problem)
        # Start from the worst possible binary assignment.
        import itertools
        ids = [u.user_id for u in problem.users]
        worst = min(
            (solve_given_assignment(problem, {i for i, on in zip(ids, p) if on})
             for p in itertools.product((False, True), repeat=3)),
            key=lambda a: a.objective)
        polished = flip_polish(problem, worst)
        assert polished.objective >= worst.objective
        assert polished.objective == pytest.approx(exact.objective, abs=1e-7)

    def test_idempotent_on_optimum(self):
        problem = make_problem(3)
        exact = exhaustive_reference_solution(problem)
        again = flip_polish(problem, exact)
        assert again.objective == pytest.approx(exact.objective, abs=1e-12)
