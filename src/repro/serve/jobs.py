"""Job manager: a persistent queue of CLI runs over one workspace.

The service's unit of work is a **job**: one figure sweep or simulate
campaign, described by a small JSON spec and executed as a child
``python -m repro ...`` process against the service's workspace.  Running
jobs as CLI subprocesses (rather than in-process threads) is the load-
bearing design decision:

* **byte identity for free** -- a job produces exactly the bytes the
  same CLI invocation would, because it *is* that CLI invocation;
* **isolation** -- the CLI's process-global machinery (the shutdown
  coordinator's signal handlers, the metrics registry, the scenario
  store) stays per-job instead of fighting over one server process;
* **two-stage cancel** -- SIGTERM reuses the CLI's
  :class:`~repro.exec.supervisor.ShutdownCoordinator` contract verbatim:
  the first signal drains in-flight cells to the checkpoint (exit 4),
  a second hard-aborts (exit 6);
* **resume** -- an interrupted sweep job restarts from its per-job
  checkpoint, so a crashed server loses at most in-flight cells.

Lifecycle::

    queued -> building -> running -> succeeded | failed | cancelled
       ^___________________|  (interrupted jobs requeue on recover())

Every transition rewrites the job's record atomically under
``<workspace>/jobs/<id>.json`` (:meth:`FileWorkspace.save_job`), so the
queue survives a server crash: :meth:`JobManager.recover` -- run on
every start -- flips stale ``building``/``running`` records back to
``queued`` and re-enqueues them.

Deduplication hashes the *result-determining* spec fields only (command,
runs, gops, seed, scenario/scheme/args) -- never execution knobs like
``jobs`` or ``cell_timeout``, because results are bit-identical at any
worker count.  Submitting a spec whose hash matches a queued, running,
or succeeded job returns that job instead of a duplicate.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exec.progress import parse_progress_line
from repro.exec.supervisor import (
    EXIT_DEADLINE,
    EXIT_FAILED_RUNS,
    EXIT_HARD_ABORT,
    EXIT_INTERRUPTED,
)
from repro.obs.export import read_metrics_snapshot
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.store.workspace import ACTIVE_JOB_STATES, FileWorkspace

logger = get_logger(__name__)

#: Schema version of job records written by this module.
JOB_RECORD_VERSION = 1

#: Commands a job spec may name.  Sweep figures get per-job checkpoints
#: (and therefore resume); ``fig3`` and ``simulate`` are campaigns that
#: simply re-run in full after an interruption.
SWEEP_COMMANDS = ("fig4b", "fig4c", "fig6a", "fig6b", "fig6c")
ALLOWED_COMMANDS = SWEEP_COMMANDS + ("fig3", "simulate")

#: Terminal job states (no further transitions).
TERMINAL_STATES = frozenset({"succeeded", "failed", "cancelled"})

#: Spec fields that determine the result bytes and thus the dedup hash.
_HASHED_FIELDS = ("command", "runs", "gops", "seed", "scenario", "scheme",
                  "scenario_args")

#: An externally interrupted job requeues itself at most this many times
#: before being marked failed, so a persistently dying child can never
#: spin the queue forever.
MAX_AUTO_RESUMES = 5


class JobError(ValueError):
    """A job spec failed validation or a job id is unknown."""


def validate_spec(spec: dict) -> dict:
    """Validate and normalize a submitted job spec.

    Returns the normalized spec (defaults filled, unknown keys
    rejected); raises :class:`JobError` with an operator-readable
    message otherwise.  Scenario and scheme names are checked against
    the live registries, and ``simulate`` specs are additionally
    dry-built through the scenario registry so a bad ``scenario_args``
    key fails at submit time, not minutes later in a worker.
    """
    if not isinstance(spec, dict):
        raise JobError("job spec must be a JSON object")
    known = {"command", "runs", "gops", "seed", "scenario", "scheme",
             "scenario_args", "jobs", "cell_timeout", "deadline", "trace"}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise JobError(f"unknown spec field(s): {', '.join(unknown)} "
                       f"(known: {', '.join(sorted(known))})")
    command = spec.get("command")
    if command not in ALLOWED_COMMANDS:
        raise JobError(f"command must be one of {', '.join(ALLOWED_COMMANDS)};"
                       f" got {command!r}")
    normalized = {"command": command}
    for field, default, minimum in (("runs", 10, 1), ("gops", 3, 1),
                                    ("jobs", 1, 1)):
        value = spec.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < minimum:
            raise JobError(f"{field} must be an integer >= {minimum}, "
                           f"got {value!r}")
        normalized[field] = value
    seed = spec.get("seed", 7)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise JobError(f"seed must be an integer, got {seed!r}")
    normalized["seed"] = seed
    for field in ("cell_timeout", "deadline"):
        value = spec.get(field)
        if value is not None:
            if not isinstance(value, (int, float)) or value <= 0:
                raise JobError(f"{field} must be a positive number, "
                               f"got {value!r}")
            value = float(value)
        normalized[field] = value
    normalized["trace"] = bool(spec.get("trace", False))
    scenario = spec.get("scenario")
    scheme = spec.get("scheme")
    scenario_args = spec.get("scenario_args") or {}
    if command == "simulate":
        from repro.registry import scenario_registry, scheme_registry

        scenario = scenario or "single"
        scheme = scheme or "proposed-fast"
        if scenario not in scenario_registry().names():
            raise JobError(
                f"unknown scenario {scenario!r} "
                f"(registered: {', '.join(scenario_registry().names())})")
        if scheme not in scheme_registry().names():
            raise JobError(
                f"unknown scheme {scheme!r} "
                f"(registered: {', '.join(scheme_registry().names())})")
        if not isinstance(scenario_args, dict):
            raise JobError("scenario_args must be an object")
        try:
            scenario_registry().build(
                scenario, n_gops=normalized["gops"], seed=seed,
                scheme=scheme, **scenario_args)
        except Exception as exc:
            raise JobError(f"scenario {scenario!r} rejected its "
                           f"arguments: {exc}") from exc
        normalized["scenario"] = scenario
        normalized["scheme"] = scheme
        normalized["scenario_args"] = dict(scenario_args)
    else:
        if scenario or scheme or scenario_args:
            raise JobError("scenario/scheme/scenario_args are only valid "
                           "for the simulate command")
        normalized["scenario"] = None
        normalized["scheme"] = None
        normalized["scenario_args"] = {}
    return normalized


def spec_hash(spec: dict) -> str:
    """Dedup identity of a normalized spec (result-determining fields).

    Execution knobs (``jobs``, ``cell_timeout``, ``deadline``,
    ``trace``) are deliberately excluded: they change how fast a result
    arrives, never its bytes.
    """
    payload = {field: spec.get(field) for field in _HASHED_FIELDS}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def plan_scenario_hashes(spec: dict) -> List[str]:
    """Scenario hashes a job will request, computed at submit time.

    Mirrors the sweep each figure command runs (same base scenario,
    sweep axis, and configure hook), but only builds *configs* -- no
    engine work -- so submit stays cheap.  The hashes go straight into
    the job record, which :meth:`FileWorkspace.gc` treats as protected
    while the job is active.  A config without content identity simply
    contributes nothing.
    """
    from repro.experiments.fig4 import FIG4B_CHANNELS, FIG4C_UTILIZATIONS
    from repro.experiments.fig6 import (
        FIG6A_UTILIZATIONS,
        FIG6B_ERROR_PAIRS,
        FIG6C_BANDWIDTHS,
    )
    from repro.experiments.scenarios import (
        interfering_fbs_scenario,
        single_fbs_scenario,
        utilization_to_p01,
    )
    from repro.registry import scenario_registry
    from repro.store.confighash import scenario_hash

    def eta(config, value):
        return config.replace(p01=utilization_to_p01(value))

    def errors(config, pair):
        return config.replace(false_alarm=pair[0], miss_detection=pair[1])

    sweeps = {
        "fig4b": (single_fbs_scenario, "n_channels", FIG4B_CHANNELS, None),
        "fig4c": (single_fbs_scenario, "utilization", FIG4C_UTILIZATIONS, eta),
        "fig6a": (interfering_fbs_scenario, "utilization",
                  FIG6A_UTILIZATIONS, eta),
        "fig6b": (interfering_fbs_scenario, "sensing_errors",
                  FIG6B_ERROR_PAIRS, errors),
        "fig6c": (interfering_fbs_scenario, "common_bandwidth_mbps",
                  FIG6C_BANDWIDTHS, None),
    }
    command = spec["command"]
    if command == "simulate":
        configs = [scenario_registry().build(
            spec["scenario"], n_gops=spec["gops"], seed=spec["seed"],
            scheme=spec["scheme"], **spec["scenario_args"])]
    elif command == "fig3":
        configs = [single_fbs_scenario(n_gops=spec["gops"],
                                       seed=spec["seed"])]
    else:
        builder, parameter, values, configure = sweeps[command]
        base = builder(n_gops=spec["gops"], seed=spec["seed"])
        configs = [configure(base, value) if configure is not None
                   else base.replace(**{parameter: value})
                   for value in values]
    hashes: List[str] = []
    for config in configs:
        try:
            ref = scenario_hash(config)
        except TypeError:
            continue
        if ref not in hashes:
            hashes.append(ref)
    return hashes


class JobManager:
    """Bounded worker pool draining a persistent job queue.

    Parameters
    ----------
    workspace:
        The managed workspace (directory path or
        :class:`FileWorkspace`) holding job records and every artifact
        the jobs produce.
    job_workers:
        Concurrent jobs (each job additionally parallelises internally
        via its spec's ``jobs`` field).
    python:
        Interpreter for job subprocesses (defaults to
        ``sys.executable``; tests never need to override it).
    """

    def __init__(self, workspace: Union[str, Path, FileWorkspace], *,
                 job_workers: int = 2, python: Optional[str] = None) -> None:
        if not isinstance(workspace, FileWorkspace):
            workspace = FileWorkspace(workspace)
        self.workspace = workspace
        self.job_workers = max(1, int(job_workers))
        self.python = python or sys.executable
        self._lock = threading.RLock()
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._procs: Dict[str, subprocess.Popen] = {}
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._metrics = MetricsRegistry()
        self._started = False

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------
    def _load(self, job_id: str) -> dict:
        record = self.workspace.job_records().get(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        return record

    def _save(self, record: dict) -> dict:
        record["updated"] = time.time()
        self.workspace.save_job(record)
        return record

    def _next_id(self) -> str:
        numbers = [0]
        for job_id in self.workspace.job_records():
            _, _, tail = job_id.partition("-")
            if tail.isdigit():
                numbers.append(int(tail))
        return f"job-{max(numbers) + 1:04d}"

    def _artifacts(self, job_id: str, spec: dict) -> Dict[str, Optional[str]]:
        """Relative workspace paths of everything a job may produce."""
        ws = self.workspace
        artifacts: Dict[str, Optional[str]] = {
            "log": f"jobs/{job_id}.log",
            "stdout": f"jobs/{job_id}.out",
            "metrics": f"jobs/{job_id}.metrics.json",
        }
        if spec["command"] != "simulate":
            artifacts["result"] = str(
                ws.results_path(f"{job_id}.json").relative_to(ws.root))
            artifacts["manifest"] = artifacts["result"] + ".manifest.json"
        if spec["command"] in SWEEP_COMMANDS:
            artifacts["checkpoint"] = str(
                ws.checkpoint_path(f"{job_id}.jsonl").relative_to(ws.root))
        if spec["trace"]:
            artifacts["trace"] = str(
                ws.trace_path(f"{job_id}.jsonl").relative_to(ws.root))
        return artifacts

    def artifact_path(self, job_id: str, name: str) -> Path:
        """Absolute path of one recorded artifact of a job.

        Raises :class:`JobError` for unknown jobs or artifacts the job
        does not have (e.g. the checkpoint of a simulate campaign).
        """
        record = self._load(job_id)
        relative = record.get("artifacts", {}).get(name)
        if relative is None:
            raise JobError(f"job {job_id} has no {name!r} artifact")
        return self.workspace.root / relative

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, spec: dict, *, force: bool = False) -> Tuple[dict, bool]:
        """Queue a job for the given spec.

        Returns ``(record, deduplicated)``: when ``force`` is unset and
        an active or succeeded job already covers the same
        result-determining spec (see :func:`spec_hash`), that job's
        record comes back with ``deduplicated=True`` and nothing new is
        queued.  Failed and cancelled jobs never satisfy dedup -- a
        resubmission is how an operator retries them.
        """
        normalized = validate_spec(spec)
        digest = spec_hash(normalized)
        with self._lock:
            if not force:
                for record in self.workspace.job_records().values():
                    if (record.get("spec_hash") == digest
                            and record.get("state") in
                            (ACTIVE_JOB_STATES | {"succeeded"})):
                        self._metrics.counter(
                            "repro_serve_jobs_deduplicated_total").inc()
                        return record, True
            job_id = self._next_id()
            record = {
                "kind": "serve-job",
                "format_version": JOB_RECORD_VERSION,
                "id": job_id,
                "spec": normalized,
                "spec_hash": digest,
                "state": "queued",
                "created": time.time(),
                "resumed": 0,
                "cancel_requested": 0,
                "pid": None,
                "exit_code": None,
                "error": None,
                "scenario_hashes": plan_scenario_hashes(normalized),
                "artifacts": self._artifacts(job_id, normalized),
            }
            self._save(record)
            self._metrics.counter("repro_serve_jobs_submitted_total").inc()
        self._queue.put(job_id)
        logger.info("serve: queued %s (%s)", job_id, normalized["command"])
        return record, False

    def get(self, job_id: str) -> dict:
        """The persisted record of one job."""
        return self._load(job_id)

    def jobs(self) -> List[dict]:
        """Every job record, sorted by id."""
        records = self.workspace.job_records()
        return [records[job_id] for job_id in sorted(records)]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation (two-stage, like Ctrl-C on the CLI).

        A queued job is cancelled immediately.  For a building/running
        job the first call SIGTERMs the child, whose shutdown
        coordinator drains in-flight cells to the checkpoint and exits
        4; a second call SIGTERMs again, which the child escalates to a
        hard abort (exit 6).  Terminal jobs are returned unchanged.
        """
        with self._lock:
            record = self._load(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            record["cancel_requested"] = record.get("cancel_requested", 0) + 1
            if record["state"] == "queued":
                record["state"] = "cancelled"
                record["error"] = "cancelled while queued"
                self._finish_metrics(record)
            self._save(record)
            proc = self._procs.get(job_id)
        if proc is not None and proc.poll() is None:
            try:
                proc.send_signal(signal.SIGTERM)
            except OSError:
                pass
        logger.info("serve: cancel requested for %s (stage %d)", job_id,
                    record["cancel_requested"])
        return record

    def events(self, job_id: str, since: int = 0) -> Tuple[List[dict], int]:
        """Structured progress events of a job, from index ``since``.

        Parses the job's live stderr log through
        :func:`~repro.exec.progress.parse_progress_line`; polling with
        the returned ``next`` index yields only new events.
        """
        record = self._load(job_id)
        path = self.workspace.root / record["artifacts"]["log"]
        events: List[dict] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    event = parse_progress_line(line)
                    if event is not None:
                        events.append(event)
        except OSError:
            pass
        since = max(0, int(since))
        return events[since:], len(events)

    def metrics_registry(self) -> MetricsRegistry:
        """The server-wide registry: job counters plus absorbed snapshots.

        Completed jobs' ``--metrics`` JSON snapshots are folded in with
        :meth:`MetricsRegistry.absorb` -- the executor's own
        cross-process aggregation -- as they finish; this refreshes the
        per-state job gauges and returns the registry.
        """
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self.workspace.job_records().values():
                counts[record.get("state", "?")] = \
                    counts.get(record.get("state", "?"), 0) + 1
            for state in ("queued", "building", "running", "succeeded",
                          "failed", "cancelled"):
                self._metrics.gauge("repro_serve_jobs",
                                    state=state).set(counts.get(state, 0))
            return self._metrics

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> List[str]:
        """Recover persisted jobs and start the worker pool.

        Returns the ids of jobs re-enqueued by recovery.
        """
        resumed = self.recover()
        with self._lock:
            if not self._started:
                self._started = True
                for index in range(self.job_workers):
                    thread = threading.Thread(
                        target=self._worker, name=f"repro-job-worker-{index}",
                        daemon=True)
                    thread.start()
                    self._threads.append(thread)
        return resumed

    def recover(self) -> List[str]:
        """Requeue every non-terminal persisted job (crash recovery).

        ``building``/``running`` records are from a previous server
        life: their recorded pid gets a best-effort SIGTERM (the child
        usually died with the server, but an orphan must not keep
        appending to a checkpoint the requeued job is about to reopen;
        if the pid was reused, the stranger receives a politely
        ignorable TERM), then the job returns to ``queued`` with its
        ``resumed`` count bumped.  Its checkpoint is untouched, so the
        re-run resumes instead of restarting.
        """
        requeued: List[str] = []
        with self._lock:
            records = self.workspace.job_records()
            for job_id in sorted(records):
                record = records[job_id]
                state = record.get("state")
                if state not in ACTIVE_JOB_STATES:
                    continue
                if state in ("building", "running"):
                    pid = record.get("pid")
                    if pid:
                        try:
                            os.kill(int(pid), signal.SIGTERM)
                        except (OSError, ValueError):
                            pass
                    record["state"] = "queued"
                    record["resumed"] = record.get("resumed", 0) + 1
                    record["pid"] = None
                    self._save(record)
                self._queue.put(job_id)
                requeued.append(job_id)
        if requeued:
            logger.info("serve: recovered %d job(s): %s", len(requeued),
                        ", ".join(requeued))
        return requeued

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; running jobs drain to their checkpoints.

        With ``graceful`` each live child gets one SIGTERM (drain and
        exit 4, leaving the job ``queued`` for the next server);
        without, children are SIGKILLed and their records stay stale
        until :meth:`recover`.
        """
        self._stopping.set()
        with self._lock:
            procs = dict(self._procs)
        for proc in procs.values():
            if proc.poll() is None:
                try:
                    proc.send_signal(
                        signal.SIGTERM if graceful else signal.SIGKILL)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._threads = []
        self._started = False
        self._stopping.clear()

    def kill(self) -> None:
        """Simulate a server crash: SIGKILL children, abandon workers.

        Job records are deliberately left stale (``running`` with a
        dead pid) -- exactly what a power cut leaves behind -- so tests
        can drive the :meth:`recover` path.
        """
        self._stopping.set()
        with self._lock:
            procs = dict(self._procs)
        for proc in procs.values():
            if proc.poll() is None:
                try:
                    proc.kill()
                except OSError:
                    pass
        for proc in procs.values():
            try:
                proc.wait(timeout=10.0)
            except (OSError, subprocess.TimeoutExpired):
                pass
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []
        self._started = False
        self._stopping.clear()

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while not self._stopping.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            try:
                self._run_job(job_id)
            except Exception:
                logger.exception("serve: worker crashed on %s", job_id)
                try:
                    with self._lock:
                        record = self._load(job_id)
                        if record["state"] not in TERMINAL_STATES:
                            record["state"] = "failed"
                            record["error"] = "internal worker error"
                            self._finish_metrics(record)
                            self._save(record)
                except JobError:
                    pass
            finally:
                self._queue.task_done()

    def _argv(self, record: dict) -> List[str]:
        spec = record["spec"]
        ws = self.workspace
        job_id = record["id"]
        argv = [self.python, "-m", "repro", spec["command"]]
        if spec["command"] == "simulate":
            argv += ["--scenario", spec["scenario"],
                     "--scheme", spec["scheme"]]
            for key in sorted(spec["scenario_args"]):
                argv += ["--scenario-arg",
                         f"{key}={spec['scenario_args'][key]}"]
        argv += ["--workspace", str(ws.root), "--run-name", job_id,
                 "--runs", str(spec["runs"]), "--gops", str(spec["gops"]),
                 "--seed", str(spec["seed"]), "--jobs", str(spec["jobs"]),
                 "--progress", "--fail-on-error",
                 "--metrics", str(ws.root / record["artifacts"]["metrics"])]
        if "result" in record["artifacts"]:
            argv += ["--output", str(ws.root / record["artifacts"]["result"])]
        if "checkpoint" in record["artifacts"]:
            argv += ["--checkpoint",
                     str(ws.root / record["artifacts"]["checkpoint"])]
        if "trace" in record["artifacts"]:
            argv += ["--trace", str(ws.root / record["artifacts"]["trace"])]
        if spec["cell_timeout"] is not None:
            argv += ["--cell-timeout", str(spec["cell_timeout"])]
        if spec["deadline"] is not None:
            argv += ["--deadline", str(spec["deadline"])]
        return argv

    def _child_env(self) -> Dict[str, str]:
        """The job's environment: ours, plus a guaranteed import path.

        The server may have been started with a relative ``PYTHONPATH``
        (``PYTHONPATH=src ...``); pinning the installed package's parent
        directory absolutely keeps children importable regardless of
        their working directory.
        """
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        return env

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            record = self._load(job_id)
            if record["state"] != "queued":
                # Cancelled while queued, or a duplicate enqueue after a
                # recover() race: nothing to run.
                return
            record["state"] = "building"
            record["started"] = time.time()
            self._save(record)
        argv = self._argv(record)
        root = self.workspace.root
        out_path = root / record["artifacts"]["stdout"]
        log_path = root / record["artifacts"]["log"]
        try:
            with open(out_path, "w", encoding="utf-8") as out, \
                    open(log_path, "a", encoding="utf-8") as log:
                proc = subprocess.Popen(argv, stdout=out, stderr=log,
                                        env=self._child_env())
        except OSError as exc:
            with self._lock:
                record["state"] = "failed"
                record["error"] = f"failed to launch job process: {exc}"
                self._finish_metrics(record)
                self._save(record)
            return
        with self._lock:
            record["state"] = "running"
            record["pid"] = proc.pid
            self._procs[job_id] = proc
            self._save(record)
        logger.info("serve: %s running as pid %d", job_id, proc.pid)
        code = proc.wait()
        if code < 0 and self._stopping.is_set():
            # The pool is being torn down with prejudice (kill(), or a
            # non-graceful stop()): the child died by our SIGKILL, not
            # on its own terms.  Leave the record exactly as a server
            # crash would -- running, with a dead pid -- so recover()
            # on the next start drives the checkpoint-resume path
            # instead of marking the job failed.
            with self._lock:
                self._procs.pop(job_id, None)
            return
        with self._lock:
            self._procs.pop(job_id, None)
            record = self._load(job_id)
            record["pid"] = None
            record["exit_code"] = code
            record["finished"] = time.time()
            requeue = self._apply_exit_code(record, code)
            if record["state"] in TERMINAL_STATES:
                self._absorb_job_metrics(record)
                self._finish_metrics(record)
            self._save(record)
        if requeue:
            self._queue.put(job_id)
        logger.info("serve: %s exited %d -> %s", job_id, code,
                    record["state"])

    def _apply_exit_code(self, record: dict, code: int) -> bool:
        """Map the CLI exit-code contract onto a job state.

        Returns whether the job should be re-enqueued (an external
        interruption of a still-healthy server).
        """
        if code == 0:
            record["state"] = "succeeded"
            record["error"] = None
        elif code == EXIT_FAILED_RUNS:
            record["state"] = "failed"
            record["error"] = ("at least one replication failed after its "
                               "retry (--fail-on-error)")
        elif code == EXIT_DEADLINE:
            record["state"] = "failed"
            record["error"] = "wall-clock deadline exceeded"
        elif code == EXIT_HARD_ABORT:
            record["state"] = "cancelled"
            record["error"] = "hard abort (second cancel)"
        elif code == EXIT_INTERRUPTED:
            if record.get("cancel_requested", 0) > 0:
                record["state"] = "cancelled"
                record["error"] = "cancelled (drained to checkpoint)"
            elif record.get("resumed", 0) >= MAX_AUTO_RESUMES:
                record["state"] = "failed"
                record["error"] = (f"interrupted {MAX_AUTO_RESUMES} times "
                                   f"without completing; giving up")
            else:
                # SIGTERM/SIGINT from outside our cancel path (e.g. the
                # server itself shutting down): the drained checkpoint
                # makes the job resumable, so back to the queue it goes.
                record["state"] = "queued"
                record["resumed"] = record.get("resumed", 0) + 1
                return not self._stopping.is_set()
        else:
            record["state"] = "failed"
            record["error"] = f"job process exited with code {code}"
        return False

    def _absorb_job_metrics(self, record: dict) -> None:
        """Fold a finished job's metrics snapshot into the server registry."""
        path = self.workspace.root / record["artifacts"]["metrics"]
        try:
            snapshot = read_metrics_snapshot(path)
        except (OSError, ValueError):
            return
        try:
            self._metrics.absorb(snapshot)
        except (KeyError, TypeError, ValueError) as exc:
            logger.warning("serve: could not absorb metrics of %s (%s)",
                           record["id"], exc)

    def _finish_metrics(self, record: dict) -> None:
        self._metrics.counter("repro_serve_jobs_completed_total",
                              state=record["state"]).inc()
