"""Fig. 4(b) -- video quality vs number of licensed channels (single FBS).

Paper claims: more channels => more spectrum opportunities => higher
PSNR; the proposed scheme has the steepest slope (it exploits extra
spectrum best).
"""

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.experiments.fig4 import FIG4B_CHANNELS, run_fig4b
from repro.experiments.report import format_sweep


def test_bench_fig4b(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4b(n_runs=BENCH_RUNS, n_gops=BENCH_GOPS, seed=BENCH_SEED),
        rounds=1, iterations=1)
    report("Fig. 4(b): Y-PSNR (dB) vs number of channels M, single FBS",
           format_sweep(result, value_format="M={}"))

    proposed = result.series("proposed-fast")
    heuristic1 = result.series("heuristic1")
    # Quality increases with M for the adaptive schemes.
    assert proposed[-1] > proposed[0]
    assert heuristic1[-1] > heuristic1[0]
    # Proposed exploits the extra spectrum at least as well as the
    # heuristics (steepest slope over the sweep).
    slope = lambda series: series[-1] - series[0]
    assert slope(proposed) >= slope(result.series("heuristic2")) - 0.3
    # Proposed wins at the paper's default M = 8.
    at_default = FIG4B_CHANNELS.index(8)
    assert proposed[at_default] > heuristic1[at_default]
