"""Property-based tests for the PHY outage model (eq. 8).

Hypothesis fuzzes mean SINRs and decoding thresholds; the Rayleigh
packet-loss probability ``P^F = 1 - exp(-H / mean)`` must always be a
valid probability and must be monotone -- nonincreasing in the mean
SINR, nondecreasing in the threshold -- in both the scalar and the
batched implementation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.fading import RayleighFading
from repro.phy.sinr import (
    rayleigh_loss_probabilities,
    rayleigh_success_probabilities,
)

mean_sinrs = st.floats(min_value=1e-6, max_value=1e9,
                       allow_nan=False, allow_infinity=False)
thresholds = st.floats(min_value=0.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False)
mean_lists = st.lists(mean_sinrs, min_size=1, max_size=30)


@settings(max_examples=200)
@given(means=mean_lists, threshold=thresholds)
def test_loss_probability_is_valid(means, threshold):
    losses = rayleigh_loss_probabilities(means, threshold)
    assert np.all(losses >= 0.0)
    assert np.all(losses <= 1.0)
    successes = rayleigh_success_probabilities(means, threshold)
    assert np.all(successes >= 0.0)
    assert np.all(successes <= 1.0)


@settings(max_examples=200)
@given(means=mean_lists, threshold=thresholds)
def test_loss_nonincreasing_in_mean_sinr(means, threshold):
    ordered = np.sort(np.asarray(means))
    losses = rayleigh_loss_probabilities(ordered, threshold)
    assert np.all(np.diff(losses) <= 0.0)


@settings(max_examples=200)
@given(mean=mean_sinrs, low=thresholds, high=thresholds)
def test_loss_nondecreasing_in_threshold(mean, low, high):
    if low > high:
        low, high = high, low
    fading = RayleighFading(mean)
    assert fading.cdf(low) <= fading.cdf(high)


@settings(max_examples=100)
@given(means=mean_lists, threshold=thresholds)
def test_batched_matches_scalar_cdf_under_fuzzing(means, threshold):
    batch = rayleigh_loss_probabilities(means, threshold)
    scalars = np.array([RayleighFading(m).cdf(threshold) for m in means])
    assert np.abs(batch - scalars).max() <= np.spacing(1.0)
