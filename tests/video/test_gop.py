"""Tests for GOP deadline bookkeeping (Section III-E)."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.video.gop import GopClock
from repro.video.rd_model import MgsRateDistortion
from repro.video.sequences import VideoSequence


def make_clock(deadline=10, alpha=30.0, beta=25.0, max_rate=0.4):
    seq = VideoSequence("test", (352, 288), 30.0, 16,
                        MgsRateDistortion(alpha, beta, max_rate_mbps=max_rate))
    return GopClock(seq, deadline)


class TestAccumulation:
    def test_starts_at_base_layer(self):
        clock = make_clock(alpha=29.0)
        assert clock.psnr_db == 29.0
        assert clock.slot_in_window == 0
        assert clock.slots_remaining == 10

    def test_add_quality(self):
        clock = make_clock()
        returned = clock.add_quality(2.5)
        assert returned == 2.5
        assert clock.psnr_db == pytest.approx(32.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            make_clock().add_quality(-1.0)

    def test_saturation_clamps_and_reports_effective(self):
        clock = make_clock(alpha=30.0, beta=25.0, max_rate=0.4)  # ceiling 40
        clock.add_quality(9.0)
        assert clock.headroom_db == pytest.approx(1.0)
        effective = clock.add_quality(3.0)
        assert effective == pytest.approx(1.0)
        assert clock.psnr_db == pytest.approx(40.0)
        assert clock.headroom_db == 0.0

    def test_unbounded_sequence_never_saturates(self):
        seq = VideoSequence("x", (352, 288), 30.0, 16, MgsRateDistortion(30.0, 25.0))
        clock = GopClock(seq, 10)
        assert clock.headroom_db == float("inf")
        assert clock.add_quality(100.0) == 100.0


class TestDeadline:
    def test_window_resets_on_deadline(self):
        clock = make_clock(deadline=3, alpha=30.0)
        clock.add_quality(4.0)
        assert not clock.tick()
        assert not clock.tick()
        assert clock.tick()  # third slot => deadline
        assert clock.completed_gop_psnrs == [pytest.approx(34.0)]
        assert clock.psnr_db == 30.0  # accumulator restarts at base layer
        assert clock.slot_in_window == 0

    def test_multiple_gops_recorded_in_order(self):
        clock = make_clock(deadline=2)
        clock.add_quality(1.0)
        clock.tick(); clock.tick()
        clock.add_quality(2.0)
        clock.tick(); clock.tick()
        assert clock.completed_gop_psnrs == [pytest.approx(31.0), pytest.approx(32.0)]

    def test_mean_gop_psnr(self):
        clock = make_clock(deadline=1)
        clock.add_quality(2.0); clock.tick()
        clock.add_quality(4.0); clock.tick()
        assert clock.mean_gop_psnr() == pytest.approx(33.0)

    def test_mean_falls_back_to_open_window(self):
        clock = make_clock()
        clock.add_quality(5.0)
        assert clock.mean_gop_psnr() == pytest.approx(35.0)

    def test_invalid_deadline(self):
        seq = VideoSequence("x", (352, 288), 30.0, 16, MgsRateDistortion(30, 25))
        with pytest.raises(ConfigurationError):
            GopClock(seq, 0)

    def test_completed_list_is_a_copy(self):
        clock = make_clock(deadline=1)
        clock.tick()
        clock.completed_gop_psnrs.append(999.0)
        assert len(clock.completed_gop_psnrs) == 1
