"""Fig. 6 -- interfering-FBS experiments (three FBSs, Fig. 5 chain).

* **Fig. 6(a)**: quality vs channel utilisation ``eta in {0.3 .. 0.7}``.
* **Fig. 6(b)**: quality vs sensing-error operating points
  ``(epsilon, delta) in {(0.2, 0.48), (0.24, 0.38), (0.3, 0.3),
  (0.38, 0.24), (0.48, 0.2)}``.
* **Fig. 6(c)**: quality vs common-channel bandwidth
  ``B0 in {0.1 .. 0.5}`` Mbps with ``B1 = 0.3`` fixed.

Each figure also carries the upper bound derived from eq. (23) (see
:mod:`repro.core.bounds` and the conversion notes in
:mod:`repro.sim.metrics`).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.scenarios import interfering_fbs_scenario, utilization_to_p01
from repro.obs.logging import get_logger
from repro.sim.runner import SweepResult, sweep

logger = get_logger(__name__)

#: Sweep points exactly as in the paper.
FIG6A_UTILIZATIONS = (0.3, 0.4, 0.5, 0.6, 0.7)
FIG6B_ERROR_PAIRS = ((0.2, 0.48), (0.24, 0.38), (0.3, 0.3), (0.38, 0.24), (0.48, 0.2))
FIG6C_BANDWIDTHS = (0.1, 0.2, 0.3, 0.4, 0.5)
FIG6_SCHEMES = ("proposed-fast", "heuristic1", "heuristic2")


def run_fig6a(*, n_runs: int = 10, n_gops: int = 3, seed: int = 7,
              utilizations: Sequence[float] = FIG6A_UTILIZATIONS,
              schemes: Sequence[str] = FIG6_SCHEMES,
              checkpoint_path=None, jobs=None, progress=None,
              cell_timeout=None, deadline=None,
              workspace=None, run_name=None) -> SweepResult:
    """Regenerate Fig. 6(a): PSNR vs utilisation under interference.

    ``checkpoint_path`` enables per-cell checkpoint/resume and ``jobs``
    multi-process execution with bit-identical results (see
    :func:`repro.sim.runner.sweep`); ``progress`` takes a
    :class:`~repro.exec.progress.ProgressTracker`-like telemetry sink;
    ``workspace`` / ``run_name`` register the run in a managed artifact
    workspace (see :mod:`repro.store.workspace`).
    """
    logger.info("fig6a: %d runs x %d GOPs, seed %s, utilizations %s, jobs %s",
                n_runs, n_gops, seed, list(utilizations), jobs)
    base = interfering_fbs_scenario(n_gops=n_gops, seed=seed)
    return sweep(
        base, "utilization", list(utilizations), schemes, n_runs=n_runs,
        configure=lambda cfg, eta: cfg.replace(p01=utilization_to_p01(eta)),
        checkpoint_path=checkpoint_path, jobs=jobs, progress=progress,
        cell_timeout=cell_timeout, deadline=deadline,
        workspace=workspace, run_name=run_name)


def run_fig6b(*, n_runs: int = 10, n_gops: int = 3, seed: int = 7,
              error_pairs: Sequence[Tuple[float, float]] = FIG6B_ERROR_PAIRS,
              schemes: Sequence[str] = FIG6_SCHEMES,
              checkpoint_path=None, jobs=None, progress=None,
              cell_timeout=None, deadline=None,
              workspace=None, run_name=None) -> SweepResult:
    """Regenerate Fig. 6(b): PSNR vs sensing-error operating point.

    ``checkpoint_path`` enables per-cell checkpoint/resume and ``jobs``
    multi-process execution with bit-identical results (see
    :func:`repro.sim.runner.sweep`); ``progress`` takes a
    :class:`~repro.exec.progress.ProgressTracker`-like telemetry sink;
    ``workspace`` / ``run_name`` register the run in a managed artifact
    workspace (see :mod:`repro.store.workspace`).
    """
    logger.info("fig6b: %d runs x %d GOPs, seed %s, error pairs %s, jobs %s",
                n_runs, n_gops, seed, list(error_pairs), jobs)
    base = interfering_fbs_scenario(n_gops=n_gops, seed=seed)
    return sweep(
        base, "sensing_errors", list(error_pairs), schemes, n_runs=n_runs,
        configure=lambda cfg, pair: cfg.replace(
            false_alarm=pair[0], miss_detection=pair[1]),
        checkpoint_path=checkpoint_path, jobs=jobs, progress=progress,
        cell_timeout=cell_timeout, deadline=deadline,
        workspace=workspace, run_name=run_name)


def run_fig6c(*, n_runs: int = 10, n_gops: int = 3, seed: int = 7,
              bandwidths: Sequence[float] = FIG6C_BANDWIDTHS,
              schemes: Sequence[str] = FIG6_SCHEMES,
              checkpoint_path=None, jobs=None, progress=None,
              cell_timeout=None, deadline=None,
              workspace=None, run_name=None) -> SweepResult:
    """Regenerate Fig. 6(c): PSNR vs common-channel bandwidth ``B0``.

    ``checkpoint_path`` enables per-cell checkpoint/resume and ``jobs``
    multi-process execution with bit-identical results (see
    :func:`repro.sim.runner.sweep`); ``progress`` takes a
    :class:`~repro.exec.progress.ProgressTracker`-like telemetry sink;
    ``workspace`` / ``run_name`` register the run in a managed artifact
    workspace (see :mod:`repro.store.workspace`).
    """
    logger.info("fig6c: %d runs x %d GOPs, seed %s, bandwidths %s, jobs %s",
                n_runs, n_gops, seed, list(bandwidths), jobs)
    base = interfering_fbs_scenario(n_gops=n_gops, seed=seed)
    return sweep(base, "common_bandwidth_mbps", list(bandwidths), schemes,
                 n_runs=n_runs, checkpoint_path=checkpoint_path, jobs=jobs, progress=progress,
                 cell_timeout=cell_timeout, deadline=deadline,
                 workspace=workspace, run_name=run_name)
