"""Checkpoint/resume for parameter sweeps.

A figure-scale sweep is hours of compute: ``schemes x sweep points x
replications`` independent cells.  Losing all of it to a crash at cell
N-1 (or to an operator Ctrl-C) is the single most expensive failure mode
of the pipeline, so :func:`repro.sim.runner.sweep` can persist every
completed ``(scheme, sweep point, run)`` cell to an append-only JSONL
checkpoint and skip those cells on restart.

File format (one JSON object per line):

* line 1 -- a header fingerprinting the sweep (``parameter``, ``values``,
  ``schemes``, ``n_runs``, root ``seed``, format version).  Resuming with
  a different sweep raises :class:`~repro.utils.errors.CheckpointError`
  instead of silently mixing incompatible results.
* every further line -- one completed cell: ``{"key": "scheme|point|run",
  "status": "ok", "metrics": {...}}`` for a surviving replication or
  ``{"key": ..., "status": "failed", "failure": {...}}`` for a
  replication that failed after its retry (so failures are not retried
  forever across resumes).

Each cell is flushed and fsynced as soon as it completes, so the file
never trails the computation by more than one cell.  Because a crash can
interrupt a line mid-write, the loader tolerates (and drops) a malformed
*final* line; a malformed line in the middle of the file means real
corruption and raises.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.sim.fallback import DegradationEvent
from repro.sim.metrics import FailedRun, RunMetrics
from repro.utils.errors import CheckpointError
from repro.utils.fsio import fsync_dir

#: Schema version of checkpoint files written by this module.
CHECKPOINT_VERSION = 1


def run_metrics_to_dict(metrics: RunMetrics) -> dict:
    """Serialise a :class:`RunMetrics` to JSON-compatible primitives."""
    return {
        "per_user_psnr": {str(uid): float(v)
                          for uid, v in metrics.per_user_psnr.items()},
        "mean_psnr": float(metrics.mean_psnr),
        "fairness": float(metrics.fairness),
        "collision_rates": np.asarray(metrics.collision_rates,
                                      dtype=float).tolist(),
        "upper_bound_psnr": float(metrics.upper_bound_psnr),
        "bound_gaps_per_gop": [float(g) for g in metrics.bound_gaps_per_gop],
        "degradation_events": [event.to_dict()
                               for event in metrics.degradation_events],
    }


def run_metrics_from_dict(data: dict) -> RunMetrics:
    """Inverse of :func:`run_metrics_to_dict`."""
    return RunMetrics(
        per_user_psnr={int(uid): float(v)
                       for uid, v in data["per_user_psnr"].items()},
        mean_psnr=float(data["mean_psnr"]),
        fairness=float(data["fairness"]),
        collision_rates=np.asarray(data["collision_rates"], dtype=float),
        upper_bound_psnr=float(data["upper_bound_psnr"]),
        bound_gaps_per_gop=tuple(float(g)
                                 for g in data.get("bound_gaps_per_gop", [])),
        degradation_events=tuple(
            DegradationEvent.from_dict(event)
            for event in data.get("degradation_events", [])),
    )


def _coerce_json_value(value):
    """One sweep value as it round-trips through JSON.

    Tuples become lists, and numpy scalars/arrays (a sweep over
    ``np.linspace(...)`` hands us ``np.float64``/``np.int64`` values)
    become their Python equivalents -- ``json.dumps`` refuses numpy
    types, and the header fingerprint must match the coerced form on
    resume regardless of whether the caller passed numpy or builtins.
    """
    if isinstance(value, np.ndarray):
        value = value.tolist()
    elif isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (tuple, list)):
        return [_coerce_json_value(item) for item in value]
    return value


def _normalize_values(values) -> list:
    """Sweep values as they round-trip through JSON (tuples become lists)."""
    return [_coerce_json_value(v) for v in values]


class SweepCheckpoint:
    """Append-only JSONL store of completed sweep cells.

    Parameters
    ----------
    path:
        Checkpoint file; created (with its header) if missing, loaded and
        fingerprint-checked if present.
    parameter, values, schemes, n_runs, seed:
        The sweep's identity, stored in (and verified against) the
        header so a checkpoint can never be resumed by a different
        sweep.
    config_hash:
        Optional full config identity
        (:func:`~repro.store.confighash.config_hash` of the sweep's base
        config).  Stored in the header and verified on resume when the
        *stored* header carries one -- so a checkpoint can never be
        resumed against a base config that differs in a field the sweep
        identity tuple does not cover (generator, topology, ablations).
        Checkpoints from before this field resume tolerantly.
    """

    def __init__(self, path: Union[str, Path], *, parameter: str, values,
                 schemes, n_runs: int, seed: Optional[int],
                 config_hash: Optional[str] = None) -> None:
        self.path = Path(path)
        self._header = {
            "kind": "sweep-checkpoint",
            "format_version": CHECKPOINT_VERSION,
            "parameter": parameter,
            "values": _normalize_values(values),
            "schemes": list(schemes),
            "n_runs": int(n_runs),
            "seed": _coerce_json_value(seed),
        }
        if config_hash is not None:
            self._header["config"] = str(config_hash)
        self._cells: Dict[str, Union[RunMetrics, FailedRun]] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append_line(self._header)
            # The bytes are fsynced by _append_line; the *directory
            # entry* for a brand-new file needs its own fsync to survive
            # power loss.
            fsync_dir(self.path.parent)

    @staticmethod
    def cell_key(scheme: str, point_index: int, run_index: int) -> str:
        """Canonical key of one ``(scheme, sweep point, run)`` cell."""
        return f"{scheme}|{point_index}|{run_index}"

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str) -> Optional[Union[RunMetrics, FailedRun]]:
        """The stored cell result, or ``None`` if not yet completed."""
        return self._cells.get(key)

    def record(self, key: str,
               result: Union[RunMetrics, FailedRun]) -> None:
        """Persist one completed cell (flushed + fsynced immediately)."""
        if isinstance(result, RunMetrics):
            line = {"key": key, "status": "ok",
                    "metrics": run_metrics_to_dict(result)}
        elif isinstance(result, FailedRun):
            line = {"key": key, "status": "failed",
                    "failure": result.to_dict()}
        else:
            raise TypeError(
                f"expected RunMetrics or FailedRun, got {type(result).__name__}")
        self._append_line(line)
        self._cells[key] = result

    def sync(self) -> None:
        """Force the checkpoint's bytes and directory entry to disk.

        Every :meth:`record` already fsyncs, so this is a belt-and-braces
        barrier for shutdown paths (it runs as a
        :class:`~repro.exec.supervisor.ShutdownCoordinator` flusher on a
        hard abort).  Best-effort: a failing sync must not turn a clean
        shutdown into a crash.
        """
        try:
            with open(self.path, "rb") as handle:
                os.fsync(handle.fileno())
        except OSError:
            pass
        fsync_dir(self.path.parent)

    # -- internals -------------------------------------------------------

    def _append_line(self, payload: dict) -> None:
        try:
            text = json.dumps(payload, sort_keys=True, allow_nan=False)
        except ValueError as exc:
            raise CheckpointError(
                f"refusing to checkpoint non-finite values: {exc}") from exc
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(text + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            # Disk full / volume gone: surface a structured library error
            # so the sweep fails loudly instead of half-persisting.
            raise CheckpointError(
                f"failed to append to checkpoint {self.path}: {exc}") from exc

    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        parsed = []
        offset = 0
        for index, line in enumerate(lines):
            if not line.strip():
                offset += len(line) + 1
                continue
            try:
                parsed.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if any(later.strip() for later in lines[index + 1:]):
                    raise CheckpointError(
                        f"corrupt checkpoint {self.path}: line {index + 1} "
                        f"is not valid JSON ({exc})") from exc
                # A crash mid-append leaves a truncated final line; drop
                # it (the cell re-runs) and truncate the file back to the
                # last complete line so later appends start cleanly
                # instead of gluing onto the partial line.
                with open(self.path, "r+b") as handle:
                    handle.truncate(offset)
                break
            offset += len(line) + 1
        if not parsed:
            raise CheckpointError(
                f"corrupt checkpoint {self.path}: no readable header")
        header = parsed[0]
        self._check_header(header)
        for entry in parsed[1:]:
            key = entry.get("key")
            status = entry.get("status")
            if key is None or status not in ("ok", "failed"):
                raise CheckpointError(
                    f"corrupt checkpoint {self.path}: malformed cell {entry!r}")
            if status == "ok":
                self._cells[key] = run_metrics_from_dict(entry["metrics"])
            else:
                self._cells[key] = FailedRun.from_dict(entry["failure"])

    def _check_header(self, header: dict) -> None:
        if header.get("kind") != "sweep-checkpoint":
            raise CheckpointError(
                f"{self.path} is not a sweep checkpoint "
                f"(kind={header.get('kind')!r})")
        version = header.get("format_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} in {self.path} "
                f"(this build reads {CHECKPOINT_VERSION})")
        for key in ("parameter", "values", "schemes", "n_runs", "seed"):
            if header.get(key) != self._header[key]:
                raise CheckpointError(
                    f"checkpoint {self.path} belongs to a different sweep: "
                    f"{key} is {header.get(key)!r}, this sweep has "
                    f"{self._header[key]!r}")
        # Config identity: enforced only when both sides carry one, so
        # pre-existing checkpoints (and callers with unhashable test
        # configs) keep resuming.
        stored = header.get("config")
        ours = self._header.get("config")
        if stored is not None and ours is not None and stored != ours:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different base "
                f"config: config hash {stored} != {ours}")
