"""Deterministic content hashing of scenario configurations.

The scenario store caches built-scenario artifacts by *configuration
identity*, so the identity function must be rock solid: the same config
must hash identically in every process (serial parent, ``--jobs N``
pool workers, a rerun next month on another machine), and any change to
a physical parameter must change the hash.  Python's builtin ``hash``
is salted per process and ``repr`` of containers is ordering-sensitive,
so neither qualifies; this module canonicalises a config into JSON with

* **stable float representation** -- every float is emitted as its
  ``float.hex()`` form, which round-trips bit-exactly, distinguishes
  ``-0.0`` from ``0.0``, and represents subnormals without precision
  loss (``repr`` would too, but hex makes the bit-exactness explicit
  and locale/version-proof);
* **numpy coercion** -- numpy scalars hash identically to the builtin
  value they wrap (``np.int64(8)`` vs ``8``), and arrays canonicalise
  by dtype, shape, and per-element values, so an ``np.linspace`` sweep
  cell hashes like its list-of-floats twin;
* **order independence** -- mappings canonicalise as key-sorted pairs
  (keys themselves canonicalised, so ``1`` and ``"1"`` stay distinct)
  and sets as sorted lists; insertion order never leaks into the hash.

Two hashes are derived from the canonical form:

* :func:`config_hash` covers every :class:`ScenarioConfig` field except
  ``fault_plan`` (an arbitrary stateful test object with no stable
  content identity; only its presence is recorded).  Any physical,
  scheme, or seed change changes this hash -- it is the provenance
  identity embedded in saved results.
* :func:`scenario_hash` covers only the fields that feed
  :func:`repro.sim.build.build_scenario` (:data:`SCENARIO_BUILD_FIELDS`
  plus the topology), so replications, schemes, and seeds of one
  physical scenario share a single cached build artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Iterable, Tuple

import numpy as np

#: ScenarioConfig fields consumed by ``build_scenario`` (besides the
#: topology).  Everything else -- scheme, seed, horizon, ablation
#: switches, solver options -- varies freely against one cached build.
SCENARIO_BUILD_FIELDS: Tuple[str, ...] = (
    "n_channels",
    "p01",
    "p10",
    "channel_utilizations",
    "common_bandwidth_mbps",
    "licensed_bandwidth_mbps",
    "deadline_slots",
    # Registry identity: the generator that produced this scenario and
    # its build parameters (see repro.registry.scenarios).  Two
    # registered generators can therefore never alias one build
    # artifact, even if their scalar fields happen to coincide.
    "generator",
    "generator_params",
)

#: ScenarioConfig fields excluded from :func:`config_hash` because they
#: have no stable content identity (arbitrary duck-typed objects).
EXCLUDED_CONFIG_FIELDS: Tuple[str, ...] = ("fault_plan",)


def canonical_value(value: object) -> object:
    """Recursively convert ``value`` into canonical JSON primitives.

    Raises
    ------
    TypeError
        For objects with no canonical form (file handles, lambdas, ...);
        hashing such a value silently would make the hash meaningless.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return {"__float__": float(value).hex()}
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": str(value.dtype),
            "shape": list(value.shape),
            "data": [canonical_value(item) for item in value.ravel().tolist()],
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [canonical_value(item) for item in value]
        return {"__set__": sorted(items, key=_sort_key)}
    if isinstance(value, dict):
        pairs = [[canonical_value(key), canonical_value(item)]
                 for key, item in value.items()]
        return {"__map__": sorted(pairs, key=lambda pair: _sort_key(pair[0]))}
    # networkx graphs (the interference graph) canonicalise as sorted
    # nodes plus sorted undirected edges; duck-typed so this module
    # stays importable without networkx.
    if hasattr(value, "nodes") and hasattr(value, "edges"):
        nodes = sorted(canonical_value(node) for node in value.nodes)
        edges = sorted(
            sorted((canonical_value(a), canonical_value(b)))
            for a, b in value.edges)
        return {"__graph__": {"nodes": nodes, "edges": edges}}
    if is_dataclass(value) and not isinstance(value, type):
        body = {f.name: canonical_value(getattr(value, f.name))
                for f in fields(value)}
        return {"__dataclass__": type(value).__name__, "fields": body}
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for config hashing")


def _sort_key(canonical: object) -> str:
    """Total order over canonical values (for sets and mapping keys)."""
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def canonical_json(value: object) -> str:
    """The canonical JSON text of ``value`` (stable across processes)."""
    return json.dumps(canonical_value(value), sort_keys=True,
                      separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def hash_value(value: object) -> str:
    """sha256 over the canonical JSON of an arbitrary supported value."""
    return _digest(canonical_json(value))


#: Attribute used to memoize the topology's canonical digest on the
#: topology object itself (safe: topologies are immutable after
#: ``build_topology`` and shared by every config of a sweep).
_TOPOLOGY_DIGEST_ATTR = "_repro_canonical_digest"


def topology_digest(topology: object) -> str:
    """Canonical digest of a topology, memoized on the instance.

    Canonicalising a city-scale topology (hundreds of stations,
    thousands of link margins) is the expensive part of scenario
    hashing; one sweep shares a single topology object across all its
    cells, so the digest is computed once per object per process.
    """
    cached = getattr(topology, _TOPOLOGY_DIGEST_ATTR, None)
    if cached is not None:
        return cached
    digest = hash_value(topology)
    try:
        object.__setattr__(topology, _TOPOLOGY_DIGEST_ATTR, digest)
    except (AttributeError, TypeError):
        pass  # slotted/odd objects just recompute
    return digest


def _described_fields(config: object, *, only: Iterable[str] = (),
                      exclude: Iterable[str] = ()) -> dict:
    only = tuple(only)
    exclude = set(exclude)
    described = {}
    for f in fields(config):
        if only and f.name not in only:
            continue
        if f.name in exclude:
            continue
        value = getattr(config, f.name)
        if f.name == "topology":
            described[f.name] = {"__digest__": topology_digest(value)}
        else:
            described[f.name] = canonical_value(value)
    return described


#: Instance attributes memoizing the two hashes on (frozen) configs.
_CONFIG_HASH_ATTR = "_repro_config_hash"
_SCENARIO_HASH_ATTR = "_repro_scenario_hash"


def config_hash(config: object) -> str:
    """Full-identity sha256 of a :class:`ScenarioConfig`.

    Covers every field except :data:`EXCLUDED_CONFIG_FIELDS`
    (``fault_plan`` contributes only whether it is set).  Changing any
    physical parameter, scheme, seed, or ablation switch changes this
    hash; two equal configs hash identically in any process.
    """
    cached = getattr(config, _CONFIG_HASH_ATTR, None)
    if cached is not None:
        return cached
    described = _described_fields(config, exclude=EXCLUDED_CONFIG_FIELDS)
    for name in EXCLUDED_CONFIG_FIELDS:
        described[f"has_{name}"] = getattr(config, name, None) is not None
    digest = _digest(json.dumps(described, sort_keys=True,
                                separators=(",", ":")))
    _memoize(config, _CONFIG_HASH_ATTR, digest)
    return digest


def scenario_hash(config: object) -> str:
    """Build-identity sha256: the scenario store's cache key.

    Covers the topology plus :data:`SCENARIO_BUILD_FIELDS` only, so all
    replications, schemes, and ablation variants of one physical
    scenario map to the same cached :class:`~repro.sim.build.BuiltScenario`.
    """
    cached = getattr(config, _SCENARIO_HASH_ATTR, None)
    if cached is not None:
        return cached
    described = _described_fields(
        config, only=SCENARIO_BUILD_FIELDS + ("topology",))
    digest = _digest(json.dumps(described, sort_keys=True,
                                separators=(",", ":")))
    _memoize(config, _SCENARIO_HASH_ATTR, digest)
    return digest


def _memoize(config: object, attr: str, digest: str) -> None:
    """Cache a digest on a (frozen) config instance, best-effort."""
    try:
        object.__setattr__(config, attr, digest)
    except (AttributeError, TypeError):
        pass
