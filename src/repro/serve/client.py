"""Thin typed client for the job service (stdlib ``urllib`` only).

Used by the ``repro submit`` CLI and by tests; any HTTP client works
against the same contract (see :mod:`repro.serve.api` for the endpoint
table).  Every error response -- a 4xx with a JSON ``{"error": ...}``
body -- surfaces as a :class:`ServiceError` carrying the server's
message and status code, so callers never parse HTML tracebacks.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

#: Default submit/poll cadence of :meth:`ServiceClient.wait`, seconds.
DEFAULT_POLL_SECONDS = 0.5


class ServiceError(RuntimeError):
    """An HTTP error from the service, with its message and status."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class JobView:
    """A typed view over one job record as returned by the API.

    ``record`` keeps the full payload for anything the named fields
    don't cover (timestamps, artifact paths, resumed count...).
    """

    id: str
    state: str
    spec: Dict[str, object]
    spec_hash: str
    exit_code: Optional[int]
    error: Optional[str]
    deduplicated: bool
    record: Dict[str, object]

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("succeeded", "failed", "cancelled")

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "JobView":
        return cls(
            id=str(record.get("id")),
            state=str(record.get("state")),
            spec=dict(record.get("spec") or {}),
            spec_hash=str(record.get("spec_hash", "")),
            exit_code=record.get("exit_code"),
            error=record.get("error"),
            deduplicated=bool(record.get("deduplicated", False)),
            record=dict(record),
        )


class ServiceClient:
    """Client bound to one service base URL (e.g. ``http://host:8765``)."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(self.base_url + path, data=data, headers=headers,
                          method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace") or str(exc)
            raise ServiceError(message, status=exc.code) from exc
        except URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from exc

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        return json.loads(self._request(method, path, body).decode("utf-8"))

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def schemes(self) -> List[dict]:
        """``GET /api/schemes``."""
        return self._json("GET", "/api/schemes")["schemes"]

    def scenarios(self) -> List[dict]:
        """``GET /api/scenarios``."""
        return self._json("GET", "/api/scenarios")["scenarios"]

    def submit(self, spec: dict, *, force: bool = False) -> JobView:
        """``POST /api/jobs``: queue a job (or hit the dedup cache)."""
        body = dict(spec)
        if force:
            body["force"] = True
        return JobView.from_record(self._json("POST", "/api/jobs", body))

    def jobs(self) -> List[JobView]:
        """``GET /api/jobs``."""
        return [JobView.from_record(record)
                for record in self._json("GET", "/api/jobs")["jobs"]]

    def job(self, job_id: str) -> JobView:
        """``GET /api/jobs/<id>``."""
        return JobView.from_record(self._json("GET", f"/api/jobs/{job_id}"))

    def cancel(self, job_id: str) -> JobView:
        """``POST /api/jobs/<id>/cancel`` (two-stage, like Ctrl-C)."""
        return JobView.from_record(
            self._json("POST", f"/api/jobs/{job_id}/cancel"))

    def events(self, job_id: str, since: int = 0) -> Tuple[List[dict], int]:
        """``GET /api/jobs/<id>/events``: progress events + next index."""
        payload = self._json("GET",
                             f"/api/jobs/{job_id}/events?since={int(since)}")
        return payload["events"], payload["next"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /api/jobs/<id>/result``: the artifact, byte for byte."""
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def manifest(self, job_id: str) -> dict:
        """``GET /api/jobs/<id>/manifest``: the provenance sidecar."""
        return self._json("GET", f"/api/jobs/{job_id}/manifest")

    def trace_events(self, job_id: str) -> Iterator[dict]:
        """``GET /api/jobs/<id>/trace``: parsed span events."""
        raw = self._request("GET", f"/api/jobs/{job_id}/trace")
        for line in raw.decode("utf-8").splitlines():
            if line.strip():
                yield json.loads(line)

    def log_text(self, job_id: str) -> str:
        """``GET /api/jobs/<id>/log``: the job's stderr log."""
        return self._request("GET", f"/api/jobs/{job_id}/log") \
            .decode("utf-8", "replace")

    def metrics_text(self) -> str:
        """``GET /metrics``: the Prometheus exposition."""
        return self._request("GET", "/metrics").decode("utf-8")

    # -- conveniences --------------------------------------------------

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll: float = DEFAULT_POLL_SECONDS) -> JobView:
        """Poll until the job reaches a terminal state.

        Raises :class:`ServiceError` when ``timeout`` expires first (the
        job keeps running server-side; this only abandons the wait).
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.done:
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for {job_id} "
                    f"(still {view.state})")
            time.sleep(poll)
