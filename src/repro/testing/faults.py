"""Deterministic fault injection for the simulation runtime.

A fault-tolerance layer is only trustworthy if every degradation path is
exercised end-to-end, and the interesting failures (a non-convergent
slot, a NaN fading draw, a sensing outage, a half-written results file)
are precisely the ones that never occur on the happy path.  This module
injects them *deterministically* so the robustness suite can assert exact
outcomes:

* **Forced non-convergence** -- the engine treats the primary allocator
  as having raised :class:`~repro.utils.errors.ConvergenceError` at the
  chosen slots, driving the :class:`~repro.sim.fallback.FallbackChain`
  down to the heuristic fallback.
* **NaN fading draws** -- the chosen slots' block-fading margins are
  replaced with NaN; the engine's finiteness validation converts that
  into a :class:`~repro.utils.errors.NumericalError`, which the runner's
  per-replication isolation catches (retry, then record a failed run).
* **Sensing outages** -- the chosen channels' sensing observations go
  missing for the chosen slots, so fusion falls back to the channel
  prior; the engine records a ``"sensing-outage"`` degradation event and
  carries on.
* **Corrupted results files** -- :func:`corrupt_json_file` truncates a
  JSON/JSONL file mid-write, emulating an interrupted save, to test
  atomic-write and tolerant-resume behaviour.
* **Hangs and slowdowns** -- ``hang_slots`` / ``slow_slots`` make the
  chosen slots sleep (far past any sane deadline, or by a fixed
  dilation), exercising the supervision layer's per-cell watchdog and
  whole-sweep deadline without ever perturbing RNG streams or results.
* **Crash during checkpoint write** -- :class:`CrashingCheckpoint`
  raises :class:`InjectedCrash` partway through persisting a cell,
  leaving a genuinely torn final line for the resume path to repair.
* **Disk full** -- :func:`simulated_disk_full` makes ``os.fsync`` raise
  ``ENOSPC`` after a budget of successful calls, to test that persistence
  layers fail loudly and atomically instead of half-writing.

The plan is attached to a scenario via ``ScenarioConfig.fault_plan`` and
consumed by the engine through duck-typed hooks, so production code never
imports this module.  Faults can be scoped to specific Monte-Carlo
replications with ``poison_runs``; the runner announces each replication
via :meth:`FaultPlan.begin_run` before constructing its engine.

Slot indices are 0-based engine slots (the ``slot`` argument the engine
uses *during* the step, i.e. ``engine.slot`` before the step completes).
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Iterator, Optional, Union

from repro.sim.checkpoint import SweepCheckpoint


class InjectedCrash(BaseException):
    """A deliberately injected crash (never caught by library code).

    Derives from :class:`BaseException` -- not
    :class:`~repro.utils.errors.ReproError`, nor even ``Exception`` --
    so no retry/fallback/isolation layer can absorb it: it emulates a
    process dying mid-operation, and must rip straight through to the
    test harness.
    """


@dataclass
class FaultPlan:
    """Deterministic schedule of injected failures for one scenario.

    Attributes
    ----------
    nonconvergent_slots:
        Slots at which the primary allocator is forced to "fail to
        converge" (degrades to the fallback chain).
    nan_fading_slots:
        Slots whose fading draws are replaced by NaN (kills the
        replication with a :class:`~repro.utils.errors.NumericalError`).
    sensing_outage_slots:
        Slots at which sensing observations go missing.
    sensing_outage_channels:
        Channels affected by the outage (``None`` = every channel).
    hang_slots:
        Slots at which the engine sleeps for ``hang_seconds`` before
        doing any work -- long enough (default: one hour) that only a
        watchdog kill ends the cell.  Purely temporal: RNG streams and
        results are untouched.
    hang_seconds:
        Sleep length for ``hang_slots``.
    slow_slots:
        Slots dilated by ``slow_seconds`` of extra sleep each -- the
        "pathologically slow, but still finishing" failure mode, for
        whole-sweep deadline tests.
    slow_seconds:
        Extra seconds per slot in ``slow_slots``.
    poison_runs:
        Monte-Carlo run indices the faults apply to (``None`` = every
        run).  Scoping is by *replication index*, not seed, so a retried
        attempt of a poisoned run is poisoned too -- exactly what the
        ``n_failed`` accounting needs to be exercised.
    """

    nonconvergent_slots: FrozenSet[int] = frozenset()
    nan_fading_slots: FrozenSet[int] = frozenset()
    sensing_outage_slots: FrozenSet[int] = frozenset()
    sensing_outage_channels: Optional[FrozenSet[int]] = None
    hang_slots: FrozenSet[int] = frozenset()
    hang_seconds: float = 3600.0
    slow_slots: FrozenSet[int] = frozenset()
    slow_seconds: float = 0.05
    poison_runs: Optional[FrozenSet[int]] = None
    _current_run: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.nonconvergent_slots = frozenset(self.nonconvergent_slots)
        self.nan_fading_slots = frozenset(self.nan_fading_slots)
        self.sensing_outage_slots = frozenset(self.sensing_outage_slots)
        self.hang_slots = frozenset(self.hang_slots)
        self.slow_slots = frozenset(self.slow_slots)
        if self.sensing_outage_channels is not None:
            self.sensing_outage_channels = frozenset(self.sensing_outage_channels)
        if self.poison_runs is not None:
            self.poison_runs = frozenset(self.poison_runs)

    # -- run scoping -----------------------------------------------------

    def begin_run(self, run_index: int, attempt: int = 0) -> None:
        """Announce the replication about to be simulated.

        Called by the Monte-Carlo runner before each engine run (for both
        the first attempt and the retry).  An engine used standalone
        never calls this, in which case the plan applies to that run.
        """
        del attempt  # faults are keyed by replication, not attempt
        self._current_run = int(run_index)

    def _armed(self) -> bool:
        if self.poison_runs is None or self._current_run is None:
            return True
        return self._current_run in self.poison_runs

    # -- engine hooks ----------------------------------------------------

    def forces_nonconvergence(self, slot: int) -> bool:
        """Whether the primary allocator must fail at this slot."""
        return self._armed() and slot in self.nonconvergent_slots

    def poisons_fading(self, slot: int) -> bool:
        """Whether this slot's fading margins are replaced with NaN."""
        return self._armed() and slot in self.nan_fading_slots

    def sensing_outage(self, slot: int,
                       n_channels: int) -> FrozenSet[int]:
        """Channels whose observations go missing at this slot."""
        if not (self._armed() and slot in self.sensing_outage_slots):
            return frozenset()
        if self.sensing_outage_channels is None:
            return frozenset(range(n_channels))
        return frozenset(c for c in self.sensing_outage_channels
                         if 0 <= c < n_channels)

    def injected_delay(self, slot: int) -> float:
        """Seconds the engine must sleep before simulating this slot.

        ``hang_slots`` dominate ``slow_slots`` when both name a slot.
        The delay is pure wall-clock -- no RNG stream is consumed -- so
        results stay byte-identical to a fault-free run modulo timing.
        """
        if not self._armed():
            return 0.0
        if slot in self.hang_slots:
            return float(self.hang_seconds)
        if slot in self.slow_slots:
            return float(self.slow_seconds)
        return 0.0


def corrupt_json_file(path: Union[str, Path], *,
                      keep_fraction: float = 0.5) -> Path:
    """Truncate a results/checkpoint file, emulating an interrupted write.

    Keeps the first ``keep_fraction`` of the file's bytes (at least one
    byte, strictly fewer than all of them, so the result is genuinely
    malformed).  Used to verify that readers fail loudly on corrupt
    result files and that the sweep checkpoint loader tolerates a
    truncated trailing line.
    """
    if not 0.0 < keep_fraction < 1.0:
        raise ValueError(
            f"keep_fraction must be in (0, 1), got {keep_fraction}")
    path = Path(path)
    data = path.read_bytes()
    if len(data) < 2:
        raise ValueError(f"{path} is too small to corrupt meaningfully")
    keep = min(max(1, int(len(data) * keep_fraction)), len(data) - 1)
    path.write_bytes(data[:keep])
    return path


class CrashingCheckpoint(SweepCheckpoint):
    """Checkpoint writer that dies mid-append after N successful records.

    The ``crash_after``-th :meth:`record` call writes a *torn prefix* of
    its line (no trailing newline, truncated JSON) and then raises
    :class:`InjectedCrash` -- exactly the on-disk state a process killed
    inside ``write(2)`` leaves behind.  Used to prove the loader's
    truncated-final-line repair and byte-identical resume.
    """

    def __init__(self, *args, crash_after: int, **kwargs) -> None:
        if crash_after < 0:
            raise ValueError(f"crash_after must be >= 0, got {crash_after}")
        self.crash_after = int(crash_after)
        self._recorded = 0
        super().__init__(*args, **kwargs)

    def record(self, key, result) -> None:
        if self._recorded >= self.crash_after:
            import json as _json

            from repro.sim.checkpoint import run_metrics_to_dict
            from repro.sim.metrics import RunMetrics

            if isinstance(result, RunMetrics):
                line = {"key": key, "status": "ok",
                        "metrics": run_metrics_to_dict(result)}
            else:
                line = {"key": key, "status": "failed",
                        "failure": result.to_dict()}
            text = _json.dumps(line, sort_keys=True)
            torn = text[:max(1, len(text) // 2)]
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
            raise InjectedCrash(
                f"injected crash mid-checkpoint-write of cell {key}")
        super().record(key, result)
        self._recorded += 1


@contextmanager
def simulated_disk_full(*, fail_after: int = 0) -> Iterator[None]:
    """Make ``os.fsync`` raise ``ENOSPC`` after ``fail_after`` successes.

    Patches :func:`os.fsync` for the duration of the ``with`` block:
    the first ``fail_after`` calls succeed, every later one raises
    ``OSError(ENOSPC)`` -- the moment a full volume actually surfaces
    for write-then-fsync persistence code.  Restores the real ``fsync``
    on exit, including on error.
    """
    real_fsync = os.fsync
    calls = {"n": 0}

    def failing_fsync(fd: int) -> None:
        calls["n"] += 1
        if calls["n"] > fail_after:
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        real_fsync(fd)

    os.fsync = failing_fsync
    try:
        yield
    finally:
        os.fsync = real_fsync
