"""Physical-layer substrate.

The paper assumes independent block-fading links (Section III-D): the
fading gain is constant within a time slot and independent across slots,
and a packet is decoded iff the received SINR exceeds a threshold ``H``,
giving packet-loss probability ``P^F = F_X(H)`` (eq. 8).  This package
provides concrete distributions (Rayleigh, Nakagami-m) with closed-form
CDFs, a log-distance path-loss model to derive mean SINRs from geometry,
and the OFDM slot-rate model of Section IV-A.
"""

from repro.phy.fading import BlockFadingLink, NakagamiFading, RayleighFading
from repro.phy.pathloss import LogDistancePathLoss, mean_sinr_db
from repro.phy.rates import slot_rate_mbps
from repro.phy.sinr import packet_loss_probability, success_probability

__all__ = [
    "BlockFadingLink",
    "LogDistancePathLoss",
    "NakagamiFading",
    "RayleighFading",
    "mean_sinr_db",
    "packet_loss_probability",
    "slot_rate_mbps",
    "success_probability",
]
