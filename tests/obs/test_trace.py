"""SpanTracer: nesting, bounding, flush-on-crash, fork sidecars."""

import json
import multiprocessing
import os

import pytest

from repro.obs.trace import (
    SpanTracer,
    activate,
    active_tracer,
    deactivate,
    iter_trace,
    maybe_span,
    read_trace,
)


def _by_name(events, name):
    return [e for e in events if e["name"] == name]


class TestSpanNesting:
    def test_child_records_parent_span_id(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        with tracer.span("run", kind="run"):
            with tracer.span("replication", kind="replication", run=0):
                with tracer.span("slot", kind="slot", slot=3):
                    pass
        tracer.close()
        events = read_trace(tracer.path)
        run, = _by_name(events, "run")
        rep, = _by_name(events, "replication")
        slot, = _by_name(events, "slot")
        assert run["parent"] is None
        assert rep["parent"] == run["span"]
        assert slot["parent"] == rep["span"]
        assert slot["attrs"] == {"slot": 3}
        # Children close (and are written) before their parents.
        ids = [e["span"] for e in events if e["kind"] != "trace-summary"]
        assert ids == [slot["span"], rep["span"], run["span"]]

    def test_emit_span_and_event_nest_under_open_span(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        with tracer.span("slot", kind="slot") as slot_id:
            tracer.emit_span("allocation", kind="phase", seconds=0.25)
            tracer.event("degradation", cause="solver")
        tracer.close()
        events = read_trace(tracer.path)
        phase, = _by_name(events, "allocation")
        degradation, = _by_name(events, "degradation")
        assert phase["parent"] == slot_id
        assert phase["dur"] == 0.25
        assert degradation["parent"] == slot_id
        assert degradation["attrs"] == {"cause": "solver"}

    def test_span_ids_unique_and_increasing(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        for i in range(5):
            with tracer.span("slot", slot=i):
                pass
        tracer.close()
        ids = [e["span"] for e in read_trace(tracer.path)]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))


class TestBounding:
    def test_cap_drops_excess_and_summary_reports_it(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"), max_events=3)
        for i in range(10):
            tracer.event("tick", i=i)
        assert tracer.written == 3
        assert tracer.dropped == 7
        tracer.close()
        events = read_trace(tracer.path)
        # 3 events + the trace-summary trailer, which is always written.
        assert len(events) == 4
        summary = events[-1]
        assert summary["kind"] == "trace-summary"
        assert summary["attrs"] == {"written": 3, "dropped": 7,
                                    "max_events": 3}

    def test_close_is_idempotent(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        tracer.event("tick")
        tracer.close()
        tracer.close()
        events = read_trace(tracer.path)
        assert [e["kind"] for e in events] == ["event", "trace-summary"]


class TestFlushOnCrash:
    def test_flush_makes_events_readable_without_close(self, tmp_path):
        # The crash paths (supervisor hard abort, shutdown flushers)
        # call flush() instead of close(); everything recorded so far
        # must land on disk.
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        with tracer.span("slot", slot=0):
            pass
        tracer.event("degradation", cause="solver")
        tracer.flush()
        events = read_trace(tracer.path)
        assert [e["name"] for e in events] == ["slot", "degradation"]

    def test_hard_abort_flushes_active_tracer(self, tmp_path):
        from repro.exec.supervisor import ShutdownCoordinator
        tracer = activate(SpanTracer(str(tmp_path / "t.jsonl")))
        try:
            tracer.event("mid-replication")
            exits = []
            coordinator = ShutdownCoordinator(hard_exit=exits.append)
            coordinator.trigger()
            coordinator.trigger()  # second signal: hard abort
            assert exits  # the abort path ran (and would have exited)
            names = [e["name"] for e in read_trace(tracer.path)]
            assert "mid-replication" in names
        finally:
            deactivate()

    def test_read_trace_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        tracer.event("first")
        tracer.event("second")
        tracer.flush()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"event","name":"torn","spa')
        events = read_trace(str(path))
        assert [e["name"] for e in events] == ["first", "second"]


class TestBuffering:
    def test_lines_buffer_until_a_boundary(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        tracer.event("tick")
        # Fine-grained records stay in memory...
        assert read_trace(str(path)) == []
        # ...until a replication-level span closes.
        with tracer.span("replication", kind="replication", run=0):
            pass
        names = [e["name"] for e in read_trace(str(path))]
        assert names == ["tick", "replication"]
        tracer.close()

    def test_buffer_cap_forces_a_flush(self, tmp_path):
        from repro.obs.trace import FLUSH_BUFFER_LINES
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        for i in range(FLUSH_BUFFER_LINES - 1):
            tracer.event("tick", i=i)
        assert read_trace(str(path)) == []
        tracer.event("tick", i=FLUSH_BUFFER_LINES - 1)
        assert len(read_trace(str(path))) == FLUSH_BUFFER_LINES
        tracer.close()

    def test_close_drains_buffer_before_trailer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        tracer.event("tick")
        tracer.close()
        names = [e["name"] for e in read_trace(str(path))]
        assert names == ["tick", "trace-summary"]

    def test_flush_on_empty_buffer_is_a_noop(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        tracer.flush()
        tracer.flush()
        assert read_trace(tracer.path) == []
        tracer.close()


class TestActivation:
    def test_active_tracer_gate(self, tmp_path):
        assert active_tracer() is None
        tracer = activate(SpanTracer(str(tmp_path / "t.jsonl")))
        assert active_tracer() is tracer
        deactivate()
        assert active_tracer() is None
        # deactivate() closed the tracer: the summary trailer is on disk.
        assert read_trace(tracer.path)[-1]["kind"] == "trace-summary"

    def test_maybe_span_noop_when_disabled(self, tmp_path):
        with maybe_span("run", kind="run") as span_id:
            assert span_id is None
        tracer = activate(SpanTracer(str(tmp_path / "t.jsonl")))
        with maybe_span("run", kind="run") as span_id:
            assert span_id is not None
        deactivate()
        assert _by_name(read_trace(tracer.path), "run")

    def test_activate_replacement_closes_previous(self, tmp_path):
        first = activate(SpanTracer(str(tmp_path / "a.jsonl")))
        activate(SpanTracer(str(tmp_path / "b.jsonl")))
        assert read_trace(first.path)[-1]["kind"] == "trace-summary"
        deactivate()


def _child_traces(tracer, queue):
    tracer.event("from-child")
    tracer.close()
    queue.put(os.getpid())


class TestForkSidecar:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable")
    def test_forked_child_writes_pid_sidecar(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        tracer.event("from-parent")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()
        proc = ctx.Process(target=_child_traces, args=(tracer, queue))
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        child_pid = queue.get()
        tracer.close()

        parent_events = read_trace(str(path))
        assert [e["name"] for e in parent_events] == [
            "from-parent", "trace-summary"]
        assert all(e["pid"] == os.getpid() for e in parent_events)

        sidecar = f"{path}.{child_pid}"
        child_events = read_trace(sidecar)
        assert [e["name"] for e in child_events] == [
            "from-child", "trace-summary"]
        assert all(e["pid"] == child_pid for e in child_events)
        # Fresh counters in the child: its summary counts only its line.
        assert child_events[-1]["attrs"]["written"] == 1


class TestWireFormat:
    def test_one_compact_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(str(path))
        with tracer.span("slot", kind="slot", slot=0):
            pass
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert " " not in line  # separators=(",", ":") -- compact
            record = json.loads(line)
            assert {"kind", "name", "span", "parent", "pid", "t"} <= set(record)


class TestIterTrace:
    """Streaming reads: the service's trace endpoint re-emits events
    one at a time through this, so it must stay lazy and tolerant."""

    def test_is_a_lazy_generator(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        with tracer.span("run", kind="run"):
            pass
        tracer.close()
        iterator = iter_trace(tracer.path)
        assert iter(iterator) is iterator  # generator, not a list
        first = next(iterator)
        assert first["name"] == "run"

    def test_matches_read_trace(self, tmp_path):
        tracer = SpanTracer(str(tmp_path / "t.jsonl"))
        with tracer.span("a", kind="run"):
            tracer.event("b")
        tracer.close()
        assert list(iter_trace(tracer.path)) == read_trace(tracer.path)

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(json.dumps({"name": "kept", "kind": "span"}) + "\n"
                        + '{"name": "torn", "ki')
        events = list(iter_trace(str(path)))
        assert [e["name"] for e in events] == ["kept"]
