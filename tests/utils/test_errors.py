"""Tests for the exception hierarchy."""

import pytest

from repro.utils.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleProblemError,
    ReproError,
)


def test_all_derive_from_repro_error():
    for exc_type in (ConfigurationError, ConvergenceError, InfeasibleProblemError):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    # Callers validating scalars can catch ValueError idiomatically.
    with pytest.raises(ValueError):
        raise ConfigurationError("bad input")


def test_convergence_error_carries_diagnostics():
    err = ConvergenceError("did not converge", iterations=100, residual=0.5)
    assert err.iterations == 100
    assert err.residual == 0.5
    assert "did not converge" in str(err)


def test_convergence_error_defaults():
    err = ConvergenceError("msg")
    assert err.iterations is None
    assert err.residual is None


def test_single_except_clause_catches_library_errors():
    for exc in (ConfigurationError("a"), ConvergenceError("b"),
                InfeasibleProblemError("c")):
        try:
            raise exc
        except ReproError:
            pass
