"""Differential tests: batched PHY backend vs the scalar oracle.

The batched fading/SINR helpers must reproduce the scalar seed code
draw for draw (margins, RNG state) and element for element (outage
indicators, rates).  The closed-form CDF helpers are the one documented
exception: numpy's SIMD ``exp`` may differ from libm's by 1 ulp, and
``1 - exp(...)`` carries that discrepancy as an *absolute* error of up
to one ulp of unity, so the loss-probability helpers are pinned with
that explicit bound instead of strict equality.
"""

import math

import numpy as np
import pytest

from repro.phy.fading import (
    BlockFadingLink,
    NakagamiFading,
    RayleighFading,
    decode_indicators,
    draw_rayleigh_margins,
)
from repro.phy.rates import slot_rate_mbps, slot_rates_mbps
from repro.phy.sinr import (
    packet_loss_probability,
    rayleigh_loss_probabilities,
    rayleigh_success_probabilities,
)
from repro.utils.errors import ConfigurationError


def _fuzzed_margins(rng, n):
    """Mean decoding margins spanning deep fades to near-certain links."""
    return 10.0 ** rng.uniform(-2.0, 2.0, size=n)


class TestBatchedMarginDraws:
    def test_matches_scalar_draw_sequence(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        means = _fuzzed_margins(np.random.default_rng(1), 333)
        batch = draw_rayleigh_margins(batched_rng, means)
        scalars = np.array([scalar_rng.exponential(m) for m in means])
        assert np.array_equal(batch, scalars)
        assert (batched_rng.bit_generator.state
                == scalar_rng.bit_generator.state)

    def test_interleaved_layout_matches_per_link_loop(self, rng_pair):
        """The engine's (mbs, fbs, mbs, fbs, ...) interleaving is exact."""
        batched_rng, scalar_rng = rng_pair
        gen = np.random.default_rng(2)
        mbs = _fuzzed_margins(gen, 50)
        fbs = _fuzzed_margins(gen, 50)
        interleaved = np.empty(100)
        interleaved[0::2] = mbs
        interleaved[1::2] = fbs
        batch = draw_rayleigh_margins(batched_rng, interleaved)
        for k in range(50):
            assert float(scalar_rng.exponential(mbs[k])) == batch[2 * k]
            assert float(scalar_rng.exponential(fbs[k])) == batch[2 * k + 1]

    def test_nonpositive_margin_rejected(self, rng_pair):
        with pytest.raises(ConfigurationError):
            draw_rayleigh_margins(rng_pair[0], [1.0, 0.0])

    def test_matches_fading_model_sampling(self, rng_pair):
        """RayleighFading.sample and the batched draw share a stream."""
        batched_rng, scalar_rng = rng_pair
        means = [0.5, 2.0, 7.5]
        batch = draw_rayleigh_margins(batched_rng, means)
        scalars = [float(RayleighFading(m).sample(scalar_rng)) for m in means]
        assert batch.tolist() == scalars


class TestDecodeIndicators:
    def test_matches_scalar_comparisons(self):
        rng = np.random.default_rng(3)
        margins = rng.exponential(1.0, size=500)
        batch = decode_indicators(margins)
        scalars = np.array([int(m > 1.0) for m in margins])
        assert np.array_equal(batch, scalars)

    def test_matches_block_fading_link_realisation(self, rng_pair):
        """One draw + one comparison = BlockFadingLink.realize_slot."""
        batched_rng, scalar_rng = rng_pair
        means = [0.3, 1.0, 4.2, 9.9]
        links = [BlockFadingLink(RayleighFading(m), 1.0, rng=scalar_rng)
                 for m in means]
        margins = draw_rayleigh_margins(batched_rng, means)
        batch = decode_indicators(margins)
        scalars = [link.realize_slot() for link in links]
        assert batch.tolist() == scalars

    def test_custom_threshold(self):
        margins = np.array([0.5, 1.5, 2.5])
        assert decode_indicators(margins, 2.0).tolist() == [0, 0, 1]


# One ulp of unity: np.exp vs math.exp may disagree in the last bit,
# and 1 - exp(...) turns that into an absolute error at this scale.
ULP_AT_ONE = np.spacing(1.0)


class TestVectorizedLossProbabilities:
    def test_within_one_ulp_of_unity_of_scalar_cdf(self):
        rng = np.random.default_rng(4)
        means = _fuzzed_margins(rng, 1000)
        threshold = 1.0
        batch = rayleigh_loss_probabilities(means, threshold)
        scalars = np.array([RayleighFading(m).cdf(threshold) for m in means])
        assert np.abs(batch - scalars).max() <= ULP_AT_ONE

    def test_success_complements_loss(self):
        means = np.array([0.5, 1.0, 3.0])
        loss = rayleigh_loss_probabilities(means, 1.0)
        success = rayleigh_success_probabilities(means, 1.0)
        assert np.array_equal(success, 1.0 - loss)

    def test_matches_functional_wrapper(self):
        means = [0.7, 2.0]
        batch = rayleigh_loss_probabilities(means, 1.5)
        scalars = [packet_loss_probability(RayleighFading(m), 1.5)
                   for m in means]
        assert np.abs(batch - np.array(scalars)).max() <= ULP_AT_ONE

    def test_rejects_nonpositive_means(self):
        with pytest.raises(ConfigurationError):
            rayleigh_loss_probabilities([1.0, -0.5], 1.0)

    def test_zero_threshold_is_lossless(self):
        assert rayleigh_loss_probabilities([1.0, 5.0], 0.0).tolist() == [0.0, 0.0]


class TestVectorizedRates:
    def test_matches_scalar_products(self):
        rng = np.random.default_rng(5)
        shares = rng.uniform(0.0, 1.0, 64)
        expected = rng.uniform(0.0, 8.0, 64)
        batch = slot_rates_mbps(shares, 0.3, expected)
        scalars = np.array([slot_rate_mbps(float(s), 0.3, float(g))
                            for s, g in zip(shares, expected)])
        assert np.array_equal(batch, scalars)

    def test_scalar_expected_channels_broadcasts(self):
        shares = np.array([0.25, 0.5])
        assert np.array_equal(slot_rates_mbps(shares, 0.4),
                              shares * 0.4)

    def test_rejects_out_of_range_share(self):
        with pytest.raises(ConfigurationError):
            slot_rates_mbps([0.5, 1.5], 0.3)


class TestEngineCsiEquivalence:
    """The engine's batched CSI draw against the scalar oracle."""

    def test_draw_csi_batched_matches_scalar(self, small_scenario):
        from repro.sim.engine import SimulationEngine
        a = SimulationEngine(small_scenario)
        b = SimulationEngine(small_scenario)
        for _ in range(8):
            assert a._draw_csi_batched() == b._draw_csi()

    def test_hoisted_scales_match_topology(self, small_scenario):
        from repro.sim.engine import SimulationEngine
        engine = SimulationEngine(small_scenario)
        topology = small_scenario.topology
        for k, user_id in enumerate(engine._csi_user_ids):
            assert engine._csi_scales[2 * k] == topology.mbs_margin[user_id]
            assert engine._csi_scales[2 * k + 1] == topology.fbs_margin[user_id]

    def test_nakagami_sample_stream_consistency(self, rng_pair):
        """Nakagami batched sampling also consumes like scalar calls."""
        batched_rng, scalar_rng = rng_pair
        model = NakagamiFading(mean_sinr=2.0, m=2.0)
        batch = model.sample(batched_rng, size=50)
        scalars = np.array([float(model.sample(scalar_rng))
                            for _ in range(50)])
        assert np.array_equal(batch, scalars)

    def test_loss_probability_from_margin_identity(self):
        """success = exp(-1/margin): the identity the engine relies on."""
        margin = 3.7
        fading = RayleighFading(margin)
        assert fading.cdf(1.0) == pytest.approx(1.0 - math.exp(-1.0 / margin))
