"""Reproduction of every figure in the paper's evaluation (Section V).

One module per figure family:

* :mod:`repro.experiments.scenarios` -- the two evaluation scenarios
  (single FBS; three interfering FBSs in the Fig. 5 chain).
* :mod:`repro.experiments.fig3` -- per-user PSNR bars (Fig. 3).
* :mod:`repro.experiments.fig4` -- dual-variable convergence (Fig. 4a),
  PSNR vs number of channels (Fig. 4b), PSNR vs utilisation (Fig. 4c).
* :mod:`repro.experiments.fig6` -- interfering FBSs: PSNR vs utilisation
  (Fig. 6a), vs sensing errors (Fig. 6b), vs common-channel bandwidth
  (Fig. 6c), all with the eq. (23) upper bound.
* :mod:`repro.experiments.report` -- text rendering of experiment rows.
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.scenarios import (
    interfering_fbs_scenario,
    single_fbs_scenario,
    utilization_to_p01,
)

__all__ = [
    "interfering_fbs_scenario",
    "run_fig3",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "run_fig6a",
    "run_fig6b",
    "run_fig6c",
    "single_fbs_scenario",
    "utilization_to_p01",
]
