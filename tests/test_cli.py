"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_all_figure_commands_exist(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name] if name == "fig4a"
                                     else [name, "--runs", "2"])
            assert args.command == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--scenario", "interfering", "--scheme", "heuristic2"])
        assert args.scenario == "interfering"
        assert args.scheme == "heuristic2"

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheme", "magic"])


class TestExecution:
    def test_fig3_prints_table(self, capsys):
        assert main(["fig3", "--runs", "1", "--gops", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "proposed-fast" in out
        assert "user 0" in out

    def test_fig4a_prints_trace(self, capsys):
        assert main(["fig4a"]) == 0
        out = capsys.readouterr().out
        assert "lambda_0" in out
        assert "converged=True" in out

    def test_fig4c_prints_sweep(self, capsys):
        assert main(["fig4c", "--runs", "1", "--gops", "1"]) == 0
        out = capsys.readouterr().out
        assert "eta=0.3" in out
        assert "heuristic1" in out

    def test_simulate_single(self, capsys):
        assert main(["simulate", "--runs", "2", "--gops", "1",
                     "--scheme", "heuristic1"]) == 0
        out = capsys.readouterr().out
        assert "mean PSNR" in out
        assert "collision rate" in out

    def test_simulate_interfering_proposed_shows_bound(self, capsys):
        assert main(["simulate", "--runs", "1", "--gops", "1",
                     "--scenario", "interfering"]) == 0
        out = capsys.readouterr().out
        assert "eq. (23) bound" in out

    def test_simulate_profile_prints_phase_seconds(self, capsys):
        assert main(["simulate", "--runs", "1", "--gops", "1",
                     "--scheme", "heuristic1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase seconds" in out
        for phase in ("sensing", "access", "allocation", "transmission"):
            assert phase in out

    def test_profile_without_progress_prints_timing_report(self, capsys):
        assert main(["fig4c", "--runs", "1", "--gops", "1", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "Timing report" in captured.out
        assert "per phase" in captured.out
        # --profile alone must not narrate per-cell lines.
        assert "heuristic1|0|0" not in captured.err
