"""Tests for experiment-result persistence."""

import json

import numpy as np
import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4a
from repro.experiments.results_io import (
    fig3_from_dict,
    fig3_to_dict,
    load_results,
    save_results,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.sim.runner import SweepResult, sweep
from repro.utils.errors import ConfigurationError


class TestSweepRoundTrip:
    def test_round_trip(self, single_config, tmp_path):
        result = sweep(single_config, "n_channels", [4, 6],
                       ["heuristic1", "heuristic2"], n_runs=2)
        path = save_results(result, tmp_path / "sweep.json")
        loaded = load_results(path)
        assert isinstance(loaded, SweepResult)
        assert loaded.parameter == "n_channels"
        assert loaded.values == [4, 6]
        assert loaded.series("heuristic1") == result.series("heuristic1")
        original = result.summaries["heuristic2"][0]
        restored = loaded.summaries["heuristic2"][0]
        assert restored.mean_psnr == original.mean_psnr
        assert restored.per_user_psnr == original.per_user_psnr

    def test_tuple_values_preserved(self, single_config):
        result = sweep(
            single_config, "sensing_errors", [(0.2, 0.48), (0.3, 0.3)],
            ["heuristic1"], n_runs=1,
            configure=lambda cfg, pair: cfg.replace(
                false_alarm=pair[0], miss_detection=pair[1]))
        loaded = sweep_from_dict(sweep_to_dict(result))
        assert loaded.values == [(0.2, 0.48), (0.3, 0.3)]

    def test_metadata_embedded(self, single_config, tmp_path):
        import repro
        result = sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=1)
        path = save_results(result, tmp_path / "sweep.json")
        data = json.loads(path.read_text())
        assert data["repro_version"] == repro.__version__
        assert data["format_version"] == 1


class TestFig3RoundTrip:
    def test_round_trip(self, tmp_path):
        rows = run_fig3(n_runs=1, n_gops=1, schemes=("heuristic1",))
        path = save_results(rows, tmp_path / "fig3.json")
        loaded = load_results(path)
        assert loaded[0].scheme == "heuristic1"
        assert loaded[0].per_user_psnr == rows[0].per_user_psnr

    def test_kind_mismatch_detected(self):
        rows = run_fig3(n_runs=1, n_gops=1, schemes=("heuristic1",))
        payload = fig3_to_dict(rows)
        payload["kind"] = "sweep"
        with pytest.raises(ConfigurationError):
            fig3_from_dict(payload)


class TestTraceRoundTrip:
    def test_round_trip(self, tmp_path):
        result = run_fig4a()
        path = save_results(result, tmp_path / "trace.json")
        loaded = load_results(path)
        assert loaded.converged == result.converged
        assert loaded.iterations == result.iterations
        assert loaded.stations == result.stations
        assert np.allclose(loaded.trace, result.trace)


class TestErrorHandling:
    def test_unsupported_type(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_results({"not": "supported"}, tmp_path / "x.json")

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_future_format_version_rejected(self, single_config, tmp_path):
        result = sweep(single_config, "n_channels", [4], ["heuristic1"], n_runs=1)
        payload = sweep_to_dict(result)
        payload["format_version"] = 999
        with pytest.raises(ConfigurationError):
            sweep_from_dict(payload)


class TestBoundReferenceAfterReload:
    def test_upper_bound_column_survives_key_sorting(self, interfering_config,
                                                     tmp_path):
        """Regression: JSON serialisation sorts scheme keys, which must not
        change which scheme's eq. (23) bound the reports use."""
        from repro.experiments.report import bound_reference_scheme, format_sweep
        from repro.experiments.results_io import load_results, save_results
        from repro.sim.runner import sweep

        result = sweep(interfering_config, "n_channels", [4],
                       ["proposed-fast", "heuristic1"], n_runs=1)
        reloaded = load_results(save_results(result, tmp_path / "s.json"))
        assert bound_reference_scheme(list(reloaded.summaries)) == "proposed-fast"
        proposed_bound = reloaded.summaries["proposed-fast"][0].upper_bound_psnr
        text = format_sweep(reloaded, upper_bound=True)
        assert f"{proposed_bound.mean:6.2f}" in text
