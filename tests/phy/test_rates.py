"""Tests for the OFDM slot-rate model (Section IV-A)."""

import pytest

from repro.phy.rates import gop_bits, slot_rate_mbps
from repro.utils.errors import ConfigurationError


class TestSlotRate:
    def test_mbs_link_single_channel(self):
        assert slot_rate_mbps(0.5, 0.3) == pytest.approx(0.15)

    def test_fbs_link_scales_with_channels(self):
        # OFDM: rho * G_t * B1 (first constraint of problem (10)).
        assert slot_rate_mbps(0.5, 0.3, expected_channels=3.2) == pytest.approx(0.48)

    def test_zero_share_zero_rate(self):
        assert slot_rate_mbps(0.0, 0.3, 5.0) == 0.0

    def test_share_out_of_range(self):
        with pytest.raises(ConfigurationError):
            slot_rate_mbps(1.2, 0.3)
        with pytest.raises(ConfigurationError):
            slot_rate_mbps(-0.1, 0.3)

    def test_negative_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            slot_rate_mbps(0.5, 0.3, expected_channels=-1.0)


class TestGopBits:
    def test_known_value(self):
        # 0.3 Mbps * 10 ms * 10 slots = 30 kbit
        assert gop_bits(0.3, 10, slot_duration_s=1e-2) == pytest.approx(30000.0)

    def test_zero_slots(self):
        assert gop_bits(0.3, 0) == 0.0

    def test_negative_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            gop_bits(0.3, -1)
