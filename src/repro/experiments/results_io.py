"""Persistence of experiment results as JSON.

A reproduction repo lives or dies by being able to re-run an experiment
months later and diff it against the committed reference.  This module
serialises the experiment result types (sweeps, Fig. 3 rows, convergence
traces) to plain JSON and back, with enough metadata (package version,
parameters) to interpret the file standalone.

The CLI's ``--output`` flag writes these files; :func:`load_results`
round-trips them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

import repro
from repro.experiments.fig3 import Fig3Row
from repro.experiments.fig4 import Fig4aResult
from repro.obs.export import result_provenance
from repro.obs.logging import get_logger
from repro.sim.metrics import MetricsSummary
from repro.sim.runner import SweepResult
from repro.utils.errors import ConfigurationError
from repro.utils.fsio import atomic_write_text
from repro.utils.stats import ConfidenceInterval

logger = get_logger(__name__)

#: Schema version of the files written by this module.
FORMAT_VERSION = 1


def _ci_to_dict(ci: ConfidenceInterval) -> dict:
    return {"mean": ci.mean, "half_width": ci.half_width,
            "confidence": ci.confidence, "n_samples": ci.n_samples}


def _ci_from_dict(data: dict) -> ConfidenceInterval:
    return ConfidenceInterval(
        mean=float(data["mean"]), half_width=float(data["half_width"]),
        confidence=float(data["confidence"]), n_samples=int(data["n_samples"]))


def _summary_to_dict(summary: MetricsSummary) -> dict:
    return {
        "mean_psnr": _ci_to_dict(summary.mean_psnr),
        "per_user_psnr": {str(uid): _ci_to_dict(ci)
                          for uid, ci in summary.per_user_psnr.items()},
        "upper_bound_psnr": _ci_to_dict(summary.upper_bound_psnr),
        "fairness": _ci_to_dict(summary.fairness),
        "mean_collision_rate": _ci_to_dict(summary.mean_collision_rate),
    }


def _summary_from_dict(data: dict) -> MetricsSummary:
    return MetricsSummary(
        mean_psnr=_ci_from_dict(data["mean_psnr"]),
        per_user_psnr={int(uid): _ci_from_dict(ci)
                       for uid, ci in data["per_user_psnr"].items()},
        upper_bound_psnr=_ci_from_dict(data["upper_bound_psnr"]),
        fairness=_ci_from_dict(data["fairness"]),
        mean_collision_rate=_ci_from_dict(data["mean_collision_rate"]),
    )


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialise a :class:`SweepResult` to JSON-compatible primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "repro_version": repro.__version__,
        "kind": "sweep",
        "parameter": result.parameter,
        "values": [list(v) if isinstance(v, (tuple, list)) else v
                   for v in result.values],
        "summaries": {
            scheme: [_summary_to_dict(summary) for summary in summaries]
            for scheme, summaries in result.summaries.items()
        },
    }


def sweep_from_dict(data: dict) -> SweepResult:
    """Deserialise a sweep written by :func:`sweep_to_dict`."""
    _check_kind(data, "sweep")
    result = SweepResult(
        parameter=data["parameter"],
        values=[tuple(v) if isinstance(v, list) else v for v in data["values"]])
    for scheme, summaries in data["summaries"].items():
        result.summaries[scheme] = [_summary_from_dict(s) for s in summaries]
    return result


def fig3_to_dict(rows: List[Fig3Row]) -> dict:
    """Serialise Fig. 3 rows."""
    return {
        "format_version": FORMAT_VERSION,
        "repro_version": repro.__version__,
        "kind": "fig3",
        "rows": [
            {
                "scheme": row.scheme,
                "per_user_psnr": {str(uid): _ci_to_dict(ci)
                                  for uid, ci in row.per_user_psnr.items()},
                "fairness": _ci_to_dict(row.fairness),
            }
            for row in rows
        ],
    }


def fig3_from_dict(data: dict) -> List[Fig3Row]:
    """Deserialise Fig. 3 rows."""
    _check_kind(data, "fig3")
    return [
        Fig3Row(
            scheme=row["scheme"],
            per_user_psnr={int(uid): _ci_from_dict(ci)
                           for uid, ci in row["per_user_psnr"].items()},
            fairness=_ci_from_dict(row["fairness"]),
        )
        for row in data["rows"]
    ]


def trace_to_dict(result: Fig4aResult) -> dict:
    """Serialise a Fig. 4(a) convergence trace."""
    return {
        "format_version": FORMAT_VERSION,
        "repro_version": repro.__version__,
        "kind": "trace",
        "stations": list(result.stations),
        "iterations": result.iterations,
        "converged": result.converged,
        "trace": np.asarray(result.trace).tolist(),
    }


def trace_from_dict(data: dict) -> Fig4aResult:
    """Deserialise a Fig. 4(a) trace."""
    _check_kind(data, "trace")
    return Fig4aResult(
        trace=np.asarray(data["trace"], dtype=float),
        stations=[int(s) for s in data["stations"]],
        iterations=int(data["iterations"]),
        converged=bool(data["converged"]),
    )


def save_results(obj: Union[SweepResult, List[Fig3Row], Fig4aResult],
                 path: Union[str, Path], *,
                 provenance: Union[dict, None] = None) -> Path:
    """Serialise any supported experiment result to a JSON file.

    The write is **atomic**: the payload is serialised and fully written
    to a temporary file in the destination directory, fsynced, and only
    then moved over ``path`` with :func:`os.replace`.  An interrupted or
    failed save therefore never corrupts an existing results file --
    either the old contents survive intact or the new file is complete.

    Non-finite floats (NaN/inf) are rejected at serialisation time with a
    :class:`ConfigurationError`: Python's ``json`` would otherwise emit
    bare ``NaN`` tokens that standard JSON parsers (and this module's
    loader) cannot read back.

    Every file carries a ``provenance`` header -- seed, backend
    (scalar/batched), acceleration flag, and (when the caller passes the
    run's config to :func:`repro.obs.export.result_provenance`) the
    ``scenario_hash`` / ``config_hash`` pair tying the result to its
    cached scenario artifact -- so an archived figure is reproducible
    from the artifact alone and :func:`read_provenance` can locate the
    exact ``scenarios/<hash>.json`` it was computed against.  Omitted,
    the header still records backend and acceleration (with
    ``seed: null``).  Only deterministic values belong here: the header
    must not break byte-identity between identical runs.
    """
    if isinstance(obj, SweepResult):
        payload = sweep_to_dict(obj)
    elif isinstance(obj, Fig4aResult):
        payload = trace_to_dict(obj)
    elif isinstance(obj, list) and obj and isinstance(obj[0], Fig3Row):
        payload = fig3_to_dict(obj)
    else:
        raise ConfigurationError(
            f"unsupported result type {type(obj).__name__}")
    payload["provenance"] = (dict(provenance) if provenance is not None
                             else result_provenance())
    try:
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    except ValueError as exc:
        raise ConfigurationError(
            f"result contains non-finite floats and cannot be saved as "
            f"portable JSON: {exc}") from exc
    path = atomic_write_text(path, text)
    logger.info("saved %s results to %s", payload["kind"], path)
    return path


def read_provenance(path: Union[str, Path]) -> dict:
    """The ``provenance`` header of a saved results file.

    Empty dict for files written before the header existed.
    """
    data = json.loads(Path(path).read_text())
    return dict(data.get("provenance", {}))


def load_results(path: Union[str, Path]):
    """Load a result file written by :func:`save_results`."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "sweep":
        return sweep_from_dict(data)
    if kind == "fig3":
        return fig3_from_dict(data)
    if kind == "trace":
        return trace_from_dict(data)
    raise ConfigurationError(f"unknown result kind {kind!r} in {path}")


def _check_kind(data: dict, expected: str) -> None:
    if data.get("kind") != expected:
        raise ConfigurationError(
            f"expected a {expected!r} result file, got {data.get('kind')!r}")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported result format version {version!r} "
            f"(this build reads {FORMAT_VERSION})")
