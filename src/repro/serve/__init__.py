"""Simulation-as-a-service: an async job API over the plan/executor.

The service turns the blocking CLI into a queue: clients POST a job
spec (one figure sweep or simulate campaign), poll its state, stream
its progress events, and fetch results that are byte-identical to a
direct CLI run -- because each job *is* a CLI run, executed as a child
process against a shared :class:`~repro.store.workspace.FileWorkspace`
(see :mod:`repro.serve.jobs` for why).

Three layers (DESIGN.md §17):

* :mod:`repro.serve.jobs` -- :class:`JobManager`: the persistent queue,
  lifecycle state machine, worker pool, dedup-by-spec-hash, crash
  recovery, and metrics folding;
* :mod:`repro.serve.api` -- the stdlib ``ThreadingHTTPServer`` endpoint
  layer (zero new dependencies);
* :mod:`repro.serve.client` -- :class:`ServiceClient`, the typed
  ``urllib`` client behind ``repro submit``.
"""

from repro.serve.api import ServiceServer, make_server, serve_forever
from repro.serve.client import JobView, ServiceClient, ServiceError
from repro.serve.jobs import (
    ALLOWED_COMMANDS,
    JobError,
    JobManager,
    plan_scenario_hashes,
    spec_hash,
    validate_spec,
)

__all__ = [
    "ALLOWED_COMMANDS",
    "JobError",
    "JobManager",
    "JobView",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "make_server",
    "plan_scenario_hashes",
    "serve_forever",
    "spec_hash",
    "validate_spec",
]
