"""Fig. 3 -- per-user video quality, single FBS, three schemes.

Paper claim: the proposed scheme beats both heuristics for every user
(up to 4.3 dB) and balances quality across users.
"""

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.experiments.fig3 import max_improvement_db, run_fig3
from repro.experiments.report import format_fig3


def regenerate_fig3():
    return run_fig3(n_runs=BENCH_RUNS, n_gops=BENCH_GOPS, seed=BENCH_SEED)


def test_bench_fig3(benchmark):
    rows = benchmark.pedantic(regenerate_fig3, rounds=1, iterations=1)
    report(
        "Fig. 3: per-user Y-PSNR (dB), single FBS "
        "(users 0/1/2 = Bus/Mobile/Harbor)",
        format_fig3(rows)
        + f"\n\nmax per-user gain of proposed over a heuristic: "
          f"{max_improvement_db(rows):.2f} dB (paper: up to 4.3 dB)")

    proposed, heuristic1, heuristic2 = rows
    # Shape: proposed wins the mean and is at least as fair as the
    # winner-take-all diversity scheme.
    mean = lambda row: sum(ci.mean for ci in row.per_user_psnr.values()) / 3.0
    assert mean(proposed) > mean(heuristic1)
    assert mean(proposed) > mean(heuristic2)
    assert proposed.fairness.mean >= heuristic2.fairness.mean
    assert max_improvement_db(rows) > 2.0
