"""Built-in allocation schemes and their registry entries.

The simulation engine is scheme-agnostic -- it hands each slot's
:class:`~repro.core.problem.SlotProblem` to an *allocator* and applies the
returned :class:`~repro.core.problem.Allocation`.  This module defines the
paper's allocators and registers them with the process-wide
:class:`~repro.registry.schemes.SchemeRegistry`:

* ``"proposed"`` -- the paper's algorithm (dual decomposition; combined
  with greedy channel allocation by the engine when FBSs interfere).
* ``"proposed-fast"`` -- same optimisation problem solved by the fast
  exact-inner-solve variant (identical results, used for large sweeps).
* ``"heuristic1"`` / ``"heuristic2"`` -- the comparison schemes.

The ``"graph-coloring"`` scheme lives in :mod:`repro.core.coloring`,
imported at the bottom of this module so one import completes the
built-in set.
"""

from __future__ import annotations

from typing import Dict

from repro.core.batch import SolveRequest, fast_solve_iter, fast_solve_warm_iter
from repro.core.dual import DualDecompositionSolver, fast_solve, fast_solve_warm
from repro.core.heuristics import EqualAllocationHeuristic, MultiuserDiversityHeuristic
from repro.core.problem import Allocation, SlotProblem
from repro.registry.schemes import SchemeInfo, register_scheme, scheme_registry


class ProposedAllocator:
    """The paper's optimum-achieving allocator (Tables I/II).

    Parameters
    ----------
    fast:
        Use the fast exact-inner solver instead of the literal subgradient
        iteration.  Both solve the same convex program; the subgradient
        version is the faithful distributed protocol, the fast version is
        preferable inside parameter sweeps.
    warm_start:
        Seed each solve with the previous call's final multipliers
        (consecutive slot problems drift slowly, so the warm dual point
        is near-optimal).  Changes the iterate path -- solutions are
        equal-or-better in objective, not bit-identical to cold solves.
    solver_kwargs:
        Forwarded to :class:`DualDecompositionSolver` when ``fast=False``.
    """

    def __init__(self, *, fast: bool = False, warm_start: bool = False,
                 **solver_kwargs) -> None:
        self.fast = bool(fast)
        self.warm_start = bool(warm_start)
        self._warm: Dict[int, float] = {}
        self._solver = None if self.fast else DualDecompositionSolver(**solver_kwargs)

    @property
    def name(self) -> str:
        """Registry name of this allocator."""
        return "proposed-fast" if self.fast else "proposed"

    def allocate(self, problem: SlotProblem) -> Allocation:
        """Solve one slot problem to (near-)optimality."""
        if self.fast:
            if self.warm_start:
                return fast_solve_warm(problem, self._warm)
            return fast_solve(problem)
        solution = self._solver.solve(
            problem,
            initial_multipliers=dict(self._warm) or None if self.warm_start else None)
        if self.warm_start:
            self._warm.clear()
            self._warm.update(solution.multipliers)
        return solution.allocation

    def allocate_iter(self, problem: SlotProblem):
        """Generator form of :meth:`allocate` for the lockstep driver.

        Yields the slot solve as a :class:`~repro.core.batch.SolveRequest`
        and returns the :class:`~repro.core.problem.Allocation`.  Strict
        and trace-recording solvers fall back to the inline scalar call
        -- they need the solver instance's own bookkeeping (raising
        :class:`~repro.utils.errors.ConvergenceError`, multiplier
        traces), which a batched answer does not carry.
        """
        if self.fast:
            if self.warm_start:
                result = yield from fast_solve_warm_iter(problem, self._warm)
            else:
                result = yield from fast_solve_iter(problem)
            return result
        solver = self._solver
        if solver.strict or solver.record_trace:
            return self.allocate(problem)
        solution = yield SolveRequest(
            problem=problem,
            max_iterations=solver.max_iterations,
            step_size=solver.step_size,
            threshold=solver.threshold,
            decay_after=solver.decay_after,
            initial_multipliers=(dict(self._warm) or None
                                 if self.warm_start else None))
        if self.warm_start:
            self._warm.clear()
            self._warm.update(solution.multipliers)
        return solution.allocation


def _proposed_factory(**kwargs):
    return ProposedAllocator(fast=False, **kwargs)


def _proposed_fast_factory(**kwargs):
    return ProposedAllocator(fast=True, **kwargs)


register_scheme(SchemeInfo(
    name="proposed",
    factory=_proposed_factory,
    batchable=True,
    warm_startable=True,
    greedy_channels=True,
    accepts_options=True,
    description="Dual-decomposition optimum (Tables I/II) with greedy "
                "channel allocation under interference.",
))
register_scheme(SchemeInfo(
    name="proposed-fast",
    factory=_proposed_fast_factory,
    batchable=True,
    warm_startable=True,
    greedy_channels=True,
    accepts_options=True,
    description="Same convex program via the fast exact-inner solver; "
                "identical results, preferred for large sweeps.",
))
register_scheme(SchemeInfo(
    name="heuristic1",
    factory=EqualAllocationHeuristic,
    fallback_eligible=True,
    description="Equal-share comparison heuristic; closed-form, so it "
                "terminates every fallback chain.",
))
register_scheme(SchemeInfo(
    name="heuristic2",
    factory=MultiuserDiversityHeuristic,
    description="Multiuser-diversity comparison heuristic.",
))

# Complete the built-in set before freezing SCHEMES: the graph-coloring
# scheme registers itself at import.  Must be a direct submodule import
# (this module runs during ``repro.core`` package init).
import repro.core.coloring  # noqa: E402,F401

#: Names of all registered schemes, in registration order.  Kept as a
#: module attribute for backward compatibility; the registry is the
#: source of truth.
SCHEMES = scheme_registry().names()


def get_allocator(scheme: str, **kwargs):
    """Instantiate an allocator by registered scheme name.

    Parameters
    ----------
    scheme:
        Any name in :func:`~repro.registry.schemes.scheme_registry`.
    kwargs:
        Forwarded to the allocator factory; schemes without the
        ``accepts_options`` capability reject any options.
    """
    return scheme_registry().create(scheme, **kwargs)
