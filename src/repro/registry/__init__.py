"""Pluggable scheme and scenario registries.

The simulation stack used to hard-code its extension points: the scheme
tuple lived in :mod:`repro.core.allocator`, the engine's allocator
dispatch was an ``if/elif`` chain, the lockstep batcher kept its own
scheme list, and scenario construction was welded into the experiment
modules.  This package converts those four dispatch points into one
seam:

* :mod:`repro.registry.schemes` -- ``SchemeRegistry`` maps a scheme
  name to an allocator factory plus capability flags (batchable,
  warm-startable, fallback-eligible, greedy-channels) that the engine,
  fallback chain, and lockstep driver consult instead of name lists.
* :mod:`repro.registry.scenarios` -- ``ScenarioRegistry`` maps a
  scenario name to a topology/workload generator; building through the
  registry stamps the generator's identity (name + build parameters)
  onto the config, where it flows into ``config_hash`` /
  ``scenario_hash`` and hence provenance manifests, checkpoints, and
  the scenario store.

Built-in entries self-register at import time; the registries load them
lazily on first lookup, so importing this package stays cheap and free
of import cycles.
"""

from repro.registry.scenarios import (
    ScenarioInfo,
    ScenarioRegistry,
    register_scenario,
    scenario_registry,
)
from repro.registry.schemes import (
    SchemeInfo,
    SchemeRegistry,
    register_scheme,
    scheme_registry,
)

__all__ = [
    "ScenarioInfo",
    "ScenarioRegistry",
    "SchemeInfo",
    "SchemeRegistry",
    "register_scenario",
    "register_scheme",
    "scenario_registry",
    "scheme_registry",
]
