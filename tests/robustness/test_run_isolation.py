"""Fault-injection tests of per-replication isolation and retry.

Acceptance path (b): a sweep with one poisoned replication still
produces a summary with ``n_failed == 1``.
"""

import pytest

from repro.sim import MonteCarloRunner, sweep
from repro.sim.metrics import FailedRun
from repro.sim.runner import execute_run
from repro.testing.faults import FaultPlan
from repro.utils.errors import NumericalError, ReproError
from repro.utils.rng import derive_seed


class TestDerivedRetrySeeds:
    def test_attempt_zero_matches_historical_seed(self):
        assert derive_seed(7, 3) == derive_seed(7, 3, attempt=0)

    def test_retry_seed_differs(self):
        assert derive_seed(7, 3, attempt=1) != derive_seed(7, 3, attempt=0)

    def test_unseeded_stays_unseeded(self):
        assert derive_seed(None, 0, attempt=1) is None


class TestExecuteRun:
    def test_success_returns_metrics(self, single_config):
        metrics, failure = execute_run(single_config, 0)
        assert failure is None
        assert metrics.mean_psnr > 0

    def test_persistent_fault_returns_failed_run(self, single_config):
        config = single_config.replace(
            fault_plan=FaultPlan(nan_fading_slots={1}))
        metrics, failure = execute_run(config, 0)
        assert metrics is None
        assert isinstance(failure, FailedRun)
        assert failure.error_type == "NumericalError"
        assert failure.attempts == 2
        assert len(failure.seeds) == 2
        assert failure.seeds[0] != failure.seeds[1]

    def test_failed_run_round_trips_through_dict(self, single_config):
        config = single_config.replace(
            fault_plan=FaultPlan(nan_fading_slots={0}))
        _, failure = execute_run(config, 2)
        assert FailedRun.from_dict(failure.to_dict()) == failure


class TestRunnerIsolation:
    def test_poisoned_replication_is_excluded_not_fatal(self, single_config):
        plan = FaultPlan(nan_fading_slots={0}, poison_runs={1})
        runner = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=3)
        runs = runner.run_all()
        assert len(runs) == 2
        assert len(runner.failed_runs) == 1
        assert runner.failed_runs[0].run_index == 1

    def test_summary_reports_n_failed(self, single_config):
        plan = FaultPlan(nan_fading_slots={0}, poison_runs={0})
        summary = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=3).summary()
        assert summary.n_failed == 1
        assert summary.mean_psnr.n_samples == 2

    def test_all_replications_failing_raises(self, single_config):
        plan = FaultPlan(nan_fading_slots={0})  # every run, every attempt
        runner = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=2)
        with pytest.raises(ReproError):
            runner.run_all()

    def test_surviving_runs_match_unpoisoned_runs(self, single_config):
        """Isolation must not perturb the healthy replications' seeds."""
        healthy = MonteCarloRunner(single_config, n_runs=3).run_all()
        plan = FaultPlan(nan_fading_slots={0}, poison_runs={1})
        survivors = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=3).run_all()
        assert [r.mean_psnr for r in survivors] == [
            healthy[0].mean_psnr, healthy[2].mean_psnr]

    def test_run_one_raises_without_isolation(self, single_config):
        plan = FaultPlan(nan_fading_slots={0})
        runner = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=2)
        with pytest.raises(NumericalError):
            runner.run_one(0)


class TestSweepIsolation:
    """Acceptance (b): the poisoned-sweep end-to-end scenario."""

    def test_sweep_with_one_poisoned_replication(self, single_config):
        plan = FaultPlan(nan_fading_slots={1}, poison_runs={2})
        result = sweep(
            single_config.replace(fault_plan=plan),
            "n_channels", [6], ["heuristic1"], n_runs=3)
        summary = result.summaries["heuristic1"][0]
        assert summary.n_failed == 1
        assert summary.mean_psnr.n_samples == 2
        assert result.n_failed == 1

    def test_transient_fault_recovers_via_retry(self, single_config):
        """A fault hitting only attempt 0 is healed by the fresh-seed retry."""

        class TransientPlan(FaultPlan):
            def begin_run(self, run_index, attempt=0):
                super().begin_run(run_index, attempt)
                self._attempt = attempt

            def poisons_fading(self, slot):
                return getattr(self, "_attempt", 0) == 0 and super().poisons_fading(slot)

        plan = TransientPlan(nan_fading_slots={0}, poison_runs={1})
        runner = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=2)
        runs = runner.run_all()
        assert len(runs) == 2
        assert runner.failed_runs == []
