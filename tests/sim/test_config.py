"""Tests for ScenarioConfig."""

import pytest

from repro.experiments.scenarios import single_fbs_scenario
from repro.utils.errors import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self, single_config):
        assert single_config.n_channels == 8
        assert single_config.p01 == 0.4
        assert single_config.p10 == 0.3
        assert single_config.gamma == 0.2
        assert single_config.false_alarm == 0.3
        assert single_config.miss_detection == 0.3
        assert single_config.deadline_slots == 10

    def test_utilization_property(self, single_config):
        assert single_config.utilization == pytest.approx(0.4 / 0.7)

    def test_n_slots(self, single_config):
        assert single_config.n_slots == (
            single_config.n_gops * single_config.deadline_slots)


class TestCopies:
    def test_with_scheme(self, single_config):
        copied = single_config.with_scheme("heuristic1")
        assert copied.scheme == "heuristic1"
        assert single_config.scheme == "proposed"
        assert copied.topology is single_config.topology

    def test_with_seed(self, single_config):
        assert single_config.with_seed(99).seed == 99

    def test_replace(self, single_config):
        assert single_config.replace(n_channels=12).n_channels == 12


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            single_fbs_scenario(scheme="nope")

    @pytest.mark.parametrize("kwargs", [
        {"n_channels": 0},
        {"p01": 1.5},
        {"gamma": -0.1},
        {"deadline_slots": 0},
        {"n_gops": 0},
        {"common_bandwidth_mbps": 0.0},
        {"false_alarm": 2.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            single_fbs_scenario(**kwargs)
