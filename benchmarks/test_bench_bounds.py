"""Section IV-C3 -- greedy optimality bounds (Theorem 2 and eq. (23)).

Regenerates the paper's analytical claims numerically: on simulated slot
problems of the Fig. 5 chain, the greedy objective stays within the
``1/(1 + D_max)`` factor of the true (exhaustively computed) channel-
allocation optimum, and the eq. (23) bound dominates that optimum.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, report
from repro.core.bounds import (
    closed_form_upper_bound,
    theorem2_factor,
    tighter_upper_bound,
)
from repro.core.dual import fast_solve
from repro.core.greedy import GreedyChannelAllocator, exhaustive_channel_optimum
from repro.experiments.scenarios import interfering_fbs_scenario
from repro.sim.engine import SimulationEngine


def measure_bounds(n_slots=6):
    """Greedy vs exhaustive optimum on engine-generated slot problems."""
    config = interfering_fbs_scenario(n_channels=4, n_gops=1, seed=BENCH_SEED)
    engine = SimulationEngine(config, record_slots=True)
    graph = config.topology.interference_graph
    allocator = GreedyChannelAllocator(graph, solver=fast_solve)
    rows = []
    for _ in range(n_slots):
        record = engine.step()
        available = record.access.available_channels.tolist()
        if not available or len(available) > 4:
            continue
        problem = record.problem.with_expected_channels(
            {i: 0.0 for i in record.problem.fbs_ids})
        posteriors = {m: float(record.access.posteriors[m])
                      for m in range(config.n_channels)}
        greedy = allocator.allocate(problem, available, posteriors)
        _best, q_opt = exhaustive_channel_optimum(
            problem, available, posteriors, graph,
            solver=fast_solve, max_pairs=12)
        rows.append({
            "slot": record.slot,
            "channels": len(available),
            "q_greedy": greedy.trace.q_final,
            "q_opt": q_opt,
            "ub_evaluated": tighter_upper_bound(greedy.trace),
            "ub_closed_form": closed_form_upper_bound(greedy.trace),
            "q_empty": greedy.trace.q_empty,
        })
    return rows


def test_bench_bounds(benchmark):
    rows = benchmark.pedantic(measure_bounds, rounds=1, iterations=1)
    assert rows, "no slot produced a tractable bound instance"

    factor = theorem2_factor(
        interfering_fbs_scenario().topology.interference_graph)
    lines = [f"{'slot':>5} {'|A|':>4} {'Q_greedy':>10} {'Q_opt':>10} "
             f"{'ratio':>7} {'ub_eval':>10} {'ub_(23)':>10}"]
    for row in rows:
        incremental_greedy = row["q_greedy"] - row["q_empty"]
        incremental_opt = row["q_opt"] - row["q_empty"]
        ratio = (incremental_greedy / incremental_opt
                 if incremental_opt > 1e-12 else 1.0)
        lines.append(
            f"{row['slot']:>5} {row['channels']:>4} {row['q_greedy']:>10.5f} "
            f"{row['q_opt']:>10.5f} {ratio:>7.3f} "
            f"{row['ub_evaluated']:>10.5f} {row['ub_closed_form']:>10.5f}")
        # Theorem 2 (on incremental objective) and eq. (23) both hold.
        assert incremental_greedy >= factor * incremental_opt - 1e-7
        assert row["q_opt"] <= row["ub_evaluated"] + 1e-7
        assert row["ub_evaluated"] <= row["ub_closed_form"] + 1e-9
    report(f"Theorem 2 / eq. (23): greedy vs exhaustive optimum "
           f"(guaranteed ratio {factor:.3f})", "\n".join(lines))
