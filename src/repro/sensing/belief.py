"""Markov belief tracking across slots (extension to the paper).

The paper fuses each slot's sensing results against the channel's
*stationary* busy probability ``eta_m`` (eq. 2).  But the occupancy model
it adopts is Markov (Section III-A), so the previous slot's posterior
carries information about the current slot: the Bayes-optimal prior is
the previous posterior pushed through the transition matrix,

    Pr{busy_t} = Pr{busy_{t-1}} * (1 - P10) + Pr{idle_{t-1}} * P01.

:class:`ChannelBeliefTracker` maintains that predicted prior per channel
and exposes it in place of ``eta_m``.  Because the collision constraint
of eq. (6) is relative to the posterior, using better-calibrated priors
both raises the expected available channels ``G_t`` *and* keeps the cap
satisfied -- quantified by the A5 ablation benchmark.

This is a strict extension: with ``update`` never called, the tracker's
priors stay at the stationary distribution and fusion reduces exactly to
the paper's eq. (2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sensing.detector import SensingResult
from repro.sensing.fusion import fuse_posteriors_batched, posterior_idle_probability
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_probability


class ChannelBeliefTracker:
    """Per-channel busy-probability beliefs propagated through the chain.

    Parameters
    ----------
    p01, p10:
        Transition probabilities per channel (scalars or length-``M``
        arrays), matching the spectrum's occupancy chains.
    n_channels:
        Number of licensed channels ``M``.
    """

    def __init__(self, n_channels: int, p01, p10) -> None:
        if n_channels <= 0:
            raise ConfigurationError(
                f"n_channels must be positive, got {n_channels}")
        self.n_channels = int(n_channels)
        self._p01 = self._broadcast(p01, "p01")
        self._p10 = self._broadcast(p10, "p10")
        if np.any((self._p01 == 0.0) & (self._p10 == 0.0)):
            raise ConfigurationError("p01 and p10 cannot both be zero")
        # Start from the stationary distribution: before any observation
        # the tracker is exactly the paper's prior.
        self._busy = self._p01 / (self._p01 + self._p10)

    def _broadcast(self, value, name: str) -> np.ndarray:
        if np.isscalar(value):
            value = [check_probability(value, name)] * self.n_channels
        arr = np.asarray(value, dtype=float)
        if arr.shape != (self.n_channels,):
            raise ConfigurationError(
                f"{name} must be scalar or length-{self.n_channels}, "
                f"got shape {arr.shape}")
        if np.any(arr < 0.0) or np.any(arr > 1.0):
            raise ConfigurationError(f"{name} entries must be probabilities")
        return arr

    @property
    def busy_priors(self) -> np.ndarray:
        """Predicted busy probability per channel for the current slot."""
        return self._busy.copy()

    def prior(self, channel: int) -> float:
        """Predicted busy probability of one channel (replaces ``eta_m``)."""
        return float(self._busy[channel])

    def predict(self) -> np.ndarray:
        """Advance every belief one slot through the transition matrix.

        Call once per slot *before* fusing that slot's sensing results.
        Returns the predicted busy priors.
        """
        idle = 1.0 - self._busy
        self._busy = self._busy * (1.0 - self._p10) + idle * self._p01
        return self.busy_priors

    def fuse(self, channel: int, results: Sequence[SensingResult]) -> float:
        """Fuse this slot's results against the tracked prior (eq. 2 form).

        Returns the idle posterior and stores the corresponding busy
        posterior as the belief to be propagated next slot.
        """
        if not 0 <= channel < self.n_channels:
            raise ConfigurationError(
                f"channel must be in 0..{self.n_channels - 1}, got {channel}")
        idle_posterior = posterior_idle_probability(self.prior(channel), results)
        self._busy[channel] = 1.0 - idle_posterior
        return idle_posterior

    def fuse_batched(self, observations, counts, false_alarm: float,
                     miss_detection: float) -> np.ndarray:
        """Fuse all channels' observations in one vectorized pass.

        Bit-exact batched counterpart of calling :meth:`fuse` channel by
        channel in index order (each scalar ``fuse`` only reads and
        writes its own channel's belief, so the per-channel updates are
        independent).  Returns the idle posteriors and stores the busy
        complements as next slot's beliefs, exactly as the scalar path
        does.
        """
        idle = fuse_posteriors_batched(
            self._busy, observations, counts, false_alarm, miss_detection)
        self._busy = 1.0 - idle
        return idle

    def reset(self) -> None:
        """Forget all evidence: return to the stationary priors."""
        self._busy = self._p01 / (self._p01 + self._p10)
