"""Tests for run metrics and summaries."""

import math

import numpy as np
import pytest

from repro.sim.metrics import compute_run_metrics, summarize_runs
from repro.video.gop import GopClock
from repro.video.rd_model import MgsRateDistortion
from repro.video.sequences import VideoSequence


def make_clocks(gop_psnrs):
    """Clocks with prescribed completed-GOP PSNRs."""
    clocks = {}
    for user_id, values in gop_psnrs.items():
        seq = VideoSequence("t", (352, 288), 30.0, 16,
                            MgsRateDistortion(26.0, 30.0, max_rate_mbps=1.0))
        clock = GopClock(seq, 1)
        for value in values:
            clock.add_quality(value - 26.0)
            clock.tick()
        clocks[user_id] = clock
    return clocks


class TestComputeRunMetrics:
    def test_per_user_means(self):
        clocks = make_clocks({0: [30.0, 34.0], 1: [28.0, 28.0]})
        metrics = compute_run_metrics(clocks, np.zeros(4), [])
        assert metrics.per_user_psnr[0] == pytest.approx(32.0)
        assert metrics.per_user_psnr[1] == pytest.approx(28.0)
        assert metrics.mean_psnr == pytest.approx(30.0)
        assert metrics.n_users == 2

    def test_upper_bound_without_gaps_equals_mean(self):
        clocks = make_clocks({0: [30.0]})
        metrics = compute_run_metrics(clocks, np.zeros(2), [])
        assert metrics.upper_bound_psnr == metrics.mean_psnr

    def test_upper_bound_scaling(self):
        clocks = make_clocks({0: [30.0], 1: [32.0]})
        gap = 0.5
        metrics = compute_run_metrics(clocks, np.zeros(2), [gap])
        expected = 31.0 * math.exp(gap / 2)
        assert metrics.upper_bound_psnr == pytest.approx(expected)
        assert metrics.upper_bound_psnr > metrics.mean_psnr

    def test_fairness(self):
        clocks = make_clocks({0: [30.0], 1: [30.0]})
        metrics = compute_run_metrics(clocks, np.zeros(2), [])
        assert metrics.fairness == pytest.approx(1.0)

    def test_phase_seconds_carried_but_not_serialized(self):
        """Timing telemetry rides on RunMetrics but never reaches disk."""
        from repro.sim.checkpoint import run_metrics_to_dict
        phases = {"sensing": 0.1, "allocation": 0.9}
        metrics = compute_run_metrics(make_clocks({0: [30.0]}), np.zeros(2),
                                      [], phase_seconds=phases)
        assert metrics.phase_seconds == phases
        assert "phase_seconds" not in run_metrics_to_dict(metrics)
        bare = compute_run_metrics(make_clocks({0: [30.0]}), np.zeros(2), [])
        assert bare.phase_seconds == {}


class TestSummarizeRuns:
    def test_summary_structure(self):
        runs = [
            compute_run_metrics(make_clocks({0: [30.0 + r], 1: [28.0]}),
                                np.full(2, 0.1), [])
            for r in range(5)
        ]
        summary = summarize_runs(runs)
        assert summary.mean_psnr.n_samples == 5
        assert set(summary.per_user_psnr) == {0, 1}
        assert summary.per_user_psnr[0].mean == pytest.approx(32.0)
        assert summary.mean_collision_rate.mean == pytest.approx(0.1)

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_phase_seconds_summed_across_runs(self):
        runs = [
            compute_run_metrics(make_clocks({0: [30.0]}), np.zeros(2), [],
                                phase_seconds={"sensing": 0.1 * (r + 1),
                                               "allocation": 1.0})
            for r in range(3)
        ]
        summary = summarize_runs(runs)
        assert summary.phase_seconds["sensing"] == pytest.approx(0.6)
        assert summary.phase_seconds["allocation"] == pytest.approx(3.0)

    def test_mismatched_users_rejected(self):
        run_a = compute_run_metrics(make_clocks({0: [30.0]}), np.zeros(1), [])
        run_b = compute_run_metrics(make_clocks({1: [30.0]}), np.zeros(1), [])
        with pytest.raises(ValueError):
            summarize_runs([run_a, run_b])
