"""Serial vs parallel wall-clock on a fixed Monte-Carlo sweep.

Times the same 10-replication sweep through the SerialExecutor and
through a 4-worker ParallelExecutor, verifies the two produce
bit-identical results, and records the speedup.  The >= 2x speedup
assertion only arms on machines with at least 4 cores -- on smaller
boxes the numbers are still recorded (process-pool overhead can even be
a net win there thanks to overlap, but it is not guaranteed).
"""

import json
import os
import time

from benchmarks.conftest import BENCH_GOPS, BENCH_SEED, report
from repro.experiments.results_io import sweep_to_dict
from repro.experiments.scenarios import single_fbs_scenario
from repro.sim.runner import sweep

#: The fixed sweep: 2 points x 2 schemes x 10 replications = 40 cells.
PARALLEL_RUNS = 10
PARALLEL_JOBS = 4
SWEEP_VALUES = (6, 8)
SWEEP_SCHEMES = ("proposed-fast", "heuristic1")


def timed_sweep(jobs):
    config = single_fbs_scenario(n_gops=BENCH_GOPS, seed=BENCH_SEED)
    start = time.perf_counter()
    result = sweep(config, "n_channels", list(SWEEP_VALUES),
                   list(SWEEP_SCHEMES), n_runs=PARALLEL_RUNS, jobs=jobs)
    return result, time.perf_counter() - start


def serial_vs_parallel():
    serial_result, serial_seconds = timed_sweep(1)
    parallel_result, parallel_seconds = timed_sweep(PARALLEL_JOBS)
    identical = (json.dumps(sweep_to_dict(serial_result), sort_keys=True)
                 == json.dumps(sweep_to_dict(parallel_result), sort_keys=True))
    return serial_seconds, parallel_seconds, identical


def test_bench_parallel_speedup(benchmark):
    serial_s, parallel_s, identical = benchmark.pedantic(
        serial_vs_parallel, rounds=1, iterations=1)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    lines = [
        f"cells            : {len(SWEEP_VALUES) * len(SWEEP_SCHEMES) * PARALLEL_RUNS}"
        f" ({PARALLEL_RUNS} replications/point)",
        f"serial (jobs=1)  : {serial_s:8.2f} s",
        f"parallel (jobs={PARALLEL_JOBS}): {parallel_s:8.2f} s",
        f"speedup          : {speedup:8.2f}x on {cores} core(s)",
        f"bit-identical    : {identical}",
    ]
    report("Parallel execution: serial vs 4-worker process pool",
           "\n".join(lines))
    # Determinism is unconditional; the speedup target only arms when the
    # hardware can actually run 4 workers at once.
    assert identical
    if cores >= PARALLEL_JOBS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {PARALLEL_JOBS} workers on "
            f"{cores} cores, measured {speedup:.2f}x")
