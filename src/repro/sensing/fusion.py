"""Bayesian fusion of sensing results (eqs. (2)-(4)).

Given ``L`` independent sensing observations of channel ``m`` and the
channel's prior busy probability (its utilisation ``eta_m``), the posterior
probability that the channel is available (idle) is

    P_A(Theta_1..Theta_L)
      = [ 1 + eta/(1-eta) * prod_i LR_i ]^{-1}          (eq. 2)

where ``LR_i`` is the likelihood ratio of observation ``i``.  The paper
also gives an iterative decomposition (eqs. (3)-(4)) that folds one
observation at a time -- convenient when results arrive sequentially over
the common channel.  Both forms are implemented and tested for exact
agreement.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.sensing.detector import SensingResult
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_probability


def posterior_idle_probability(eta: float, results: Sequence[SensingResult]) -> float:
    """Closed-form posterior ``P_A`` of eq. (2).

    Parameters
    ----------
    eta:
        Prior busy probability of the channel (its utilisation, eq. 1).
    results:
        Sensing observations of the *same* channel.  An empty sequence
        returns the prior idle probability ``1 - eta``.

    Returns
    -------
    float
        ``Pr{H0 | Theta_1..Theta_L}`` in ``[0, 1]``.
    """
    eta = check_probability(eta, "eta")
    _check_single_channel(results)
    if eta == 0.0:
        return 1.0
    if eta == 1.0:
        return 0.0
    # Work in log space: with many observations the likelihood-ratio
    # product under/overflows double precision long before L is large.
    log_ratio = math.log(eta / (1.0 - eta))
    for result in results:
        lr = result.likelihood_ratio
        if lr == 0.0:
            return 1.0
        if math.isinf(lr):
            return 0.0
        log_ratio += math.log(lr)
    # P_A = 1 / (1 + exp(log_ratio)) = sigmoid(-log_ratio)
    if log_ratio > 700.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(log_ratio))


def fuse_posterior(eta: float, results: Sequence[SensingResult]) -> float:
    """Alias for :func:`posterior_idle_probability` (the paper's ``P_A^m``)."""
    return posterior_idle_probability(eta, results)


def fuse_iterative(eta: float, results: Iterable[SensingResult]) -> float:
    """Posterior computed by the paper's iterative updates (eqs. (3)-(4)).

    Folds observations one at a time: eq. (3) initialises with the first
    observation, eq. (4) updates with each subsequent one.  Numerically
    equivalent to :func:`posterior_idle_probability`; provided because the
    paper's protocol shares results incrementally over the common channel.
    """
    eta = check_probability(eta, "eta")
    results = list(results)
    _check_single_channel(results)
    if not results:
        return 1.0 - eta
    if eta == 0.0:
        return 1.0
    if eta == 1.0:
        return 0.0
    # eq. (3): first observation, prior odds eta/(1-eta).
    posterior = _fold(eta / (1.0 - eta), results[0])
    # eq. (4): each further observation uses the previous posterior's odds
    # (1/P_A - 1) as its prior odds.
    for result in results[1:]:
        if posterior == 0.0:
            return 0.0
        if posterior == 1.0:
            return 1.0
        prior_odds = 1.0 / posterior - 1.0
        posterior = _fold(prior_odds, result)
    return posterior


def _fold(prior_busy_odds: float, result: SensingResult) -> float:
    """One Bayes update: posterior idle prob from prior busy odds + result."""
    lr = result.likelihood_ratio
    if math.isinf(lr):
        return 0.0 if prior_busy_odds > 0.0 else 1.0
    odds = prior_busy_odds * lr
    return 1.0 / (1.0 + odds)


def _check_single_channel(results: Sequence[SensingResult]) -> None:
    channels = {result.channel for result in results}
    if len(channels) > 1:
        raise ConfigurationError(
            f"fusion requires observations of a single channel, got channels {sorted(channels)}")
