#!/usr/bin/env python
"""Compare the proposed scheme against the paper's two heuristics.

Reproduces the qualitative content of Fig. 3: in the single-FBS scenario
the proposed cross-layer scheme delivers more quality to *every* user
than either heuristic, and balances quality across users much better
(higher Jain fairness index).

Run with:  python examples/scheme_comparison.py
"""

from repro.experiments.fig3 import max_improvement_db, run_fig3
from repro.experiments.report import format_fig3


def main() -> None:
    rows = run_fig3(n_runs=10, n_gops=3, seed=7)
    print("Fig. 3 -- per-user Y-PSNR (dB), single FBS, three CR users")
    print("(users 0/1/2 stream Bus/Mobile/Harbor CIF @ GOP 16, T = 10 slots)\n")
    print(format_fig3(rows))
    print(f"\nLargest per-user gain of the proposed scheme over a heuristic: "
          f"{max_improvement_db(rows):.2f} dB (the paper reports up to 4.3 dB)")


if __name__ == "__main__":
    main()
