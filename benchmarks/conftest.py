"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's figures and prints the
same rows/series the figure reports.  Runtime is controlled by two
environment variables:

* ``REPRO_BENCH_RUNS``  -- Monte-Carlo replications per point (default 5;
  the paper uses 10 -- set it to 10 for publication-grade CIs).
* ``REPRO_BENCH_GOPS``  -- simulated GOP windows per run (default 2).
"""

import os

import pytest

#: Replications per experiment point.
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))
#: GOP windows simulated per run.
BENCH_GOPS = int(os.environ.get("REPRO_BENCH_GOPS", "2"))
#: Root seed shared by every benchmark (paired comparisons).
BENCH_SEED = 7


def report(title: str, body: str) -> None:
    """Print one figure's regenerated data block."""
    line = "=" * 72
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
