"""Statistics helpers used by the Monte-Carlo harness.

The paper reports each data point as the mean of 10 simulation runs with a
95% confidence interval (ICDCS'11, Section V).  This module provides the
matching estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with a symmetric confidence interval.

    Attributes
    ----------
    mean:
        Sample mean.
    half_width:
        Half-width of the interval; the interval is ``mean +/- half_width``.
    confidence:
        Confidence level, e.g. ``0.95``.
    n_samples:
        Number of samples the estimate is based on.
    """

    mean: float
    half_width: float
    confidence: float
    n_samples: int

    @property
    def low(self) -> float:
        """Lower endpoint of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.mean:.3f} +/- {self.half_width:.3f} ({pct}% CI, n={self.n_samples})"


def mean_confidence_interval(samples: Sequence[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    A single sample yields a zero-width interval (there is no dispersion
    information), matching the behaviour most plotting pipelines expect.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples must be finite")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    n = int(arr.size)
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, confidence=confidence, n_samples=1)
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(mean=mean, half_width=t_crit * sem, confidence=confidence, n_samples=n)


class RunningMean:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Useful when a simulation produces too many samples to keep in memory,
    e.g. per-slot collision indicators across long horizons.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"value must be finite, got {value}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def update_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations into the running statistics."""
        for value in values:
            self.update(value)

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Current sample mean (0.0 when empty)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index of non-negative allocations.

    Returns 1.0 for perfectly equal allocations and ``1/n`` when a single
    user receives everything.  Used to quantify the paper's observation
    that the proposed scheme balances quality across users (Fig. 3).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    total = arr.sum()
    if total == 0.0:
        return 1.0
    return float(total**2 / (arr.size * np.square(arr).sum()))
