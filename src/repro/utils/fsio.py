"""Filesystem durability helpers shared by the persistence layers.

Writing bytes and fsyncing the file is only half of crash safety: the
*directory entry* pointing at a freshly created (or renamed-over) file
lives in the directory's own metadata, and survives power loss only if
the directory is fsynced too.  The checkpoint writer, the atomic results
saver, and the manifest exporter all share this helper so the rule is
applied uniformly.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def fsync_dir(path: Union[str, Path]) -> None:
    """Fsync a directory so its entries survive power loss.

    Best-effort by design: some platforms and filesystems (Windows,
    certain network mounts) refuse to open or fsync directories, and a
    durability *upgrade* must never turn into a new failure mode for an
    otherwise-successful write, so every ``OSError`` is swallowed.
    """
    name = os.fspath(path) or "."
    try:
        fd = os.open(name, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
