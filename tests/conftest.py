"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SlotProblem, UserDemand
from repro.experiments.scenarios import interfering_fbs_scenario, single_fbs_scenario


def make_user(user_id: int = 0, *, fbs_id: int = 1, w_prev: float = 30.0,
              success_mbs: float = 0.8, success_fbs: float = 0.9,
              r_mbs: float = 0.9, r_fbs: float = 0.96, **kwargs) -> UserDemand:
    """A UserDemand with sensible defaults, overridable per test."""
    return UserDemand(
        user_id=user_id, fbs_id=fbs_id, w_prev=w_prev,
        success_mbs=success_mbs, success_fbs=success_fbs,
        r_mbs=r_mbs, r_fbs=r_fbs, **kwargs)


def make_problem(n_users: int = 3, *, n_fbss: int = 1, g: float = 2.0,
                 seed: int = 0) -> SlotProblem:
    """A random-but-reproducible slot problem."""
    rng = np.random.default_rng(seed)
    users = [
        make_user(
            user_id=j,
            fbs_id=1 + j % n_fbss,
            w_prev=26.0 + 8.0 * rng.random(),
            success_mbs=0.5 + 0.5 * rng.random(),
            success_fbs=0.5 + 0.5 * rng.random(),
            r_mbs=float(rng.random() * 2.0),
            r_fbs=float(rng.random() * 1.5),
        )
        for j in range(n_users)
    ]
    return SlotProblem(
        users=users,
        expected_channels={i: g for i in range(1, n_fbss + 1)})


def random_problem(rng: np.random.Generator, *, max_users: int = 6,
                   max_fbss: int = 3) -> SlotProblem:
    """A fully random slot problem drawn from ``rng`` (for sweeps)."""
    n_users = int(rng.integers(1, max_users + 1))
    n_fbss = int(rng.integers(1, max_fbss + 1))
    users = [
        make_user(
            user_id=j,
            fbs_id=int(rng.integers(1, n_fbss + 1)),
            w_prev=26.0 + 8.0 * rng.random(),
            success_mbs=0.4 + 0.6 * rng.random(),
            success_fbs=0.4 + 0.6 * rng.random(),
            r_mbs=float(rng.random() * 2.0),
            r_fbs=float(rng.random() * 1.5),
        )
        for j in range(n_users)
    ]
    return SlotProblem(
        users=users,
        expected_channels={i: float(rng.random() * 4.0)
                           for i in range(1, n_fbss + 1)})


@pytest.fixture
def single_config():
    """Small single-FBS scenario config (fast to simulate)."""
    return single_fbs_scenario(n_gops=2, seed=123)


@pytest.fixture
def interfering_config():
    """Small interfering scenario config (fast to simulate)."""
    return interfering_fbs_scenario(n_gops=1, n_channels=4, seed=123)
