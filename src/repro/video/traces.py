"""Synthetic per-GOP complexity traces (extension to the paper).

The paper fits one (alpha, beta) pair per sequence, i.e. every GOP of a
video is equally hard to encode.  Real encodes vary: high-motion GOPs
carry more enhancement bits per dB.  This module models that with a
stationary lognormal AR(1) *complexity* process ``c_g`` (mean 1):

    log c_g = phi * log c_{g-1} + sqrt(1 - phi^2) * sigma * eps_g

A GOP of complexity ``c`` keeps the sequence's quality ceiling but needs
``c`` times the rate to reach it -- its effective R-D slope is
``beta / c`` and its enhancement budget ``max_rate * c``.  The product
(ceiling quality gain) is invariant, so traces perturb the *difficulty*
of each GOP without changing what is achievable, which keeps experiment
series comparable across variability levels.

Enabled in the simulator via ``ScenarioConfig.rd_variability`` (the
sigma above; 0 disables the extension and reproduces the paper exactly).
"""

from __future__ import annotations

import math
from typing import Iterator, List

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_in_range, check_positive


class GopComplexityTrace:
    """Stationary lognormal AR(1) complexity process, mean-one by design.

    Parameters
    ----------
    sigma:
        Standard deviation of ``log c`` (0 = constant complexity 1).
    phi:
        AR(1) correlation of ``log c`` between consecutive GOPs; video
        content changes slowly, so adjacent GOPs are similar
        (default 0.8).
    rng:
        Randomness source.
    """

    def __init__(self, sigma: float = 0.3, phi: float = 0.8, *,
                 rng: RandomState = None) -> None:
        self.sigma = check_positive(sigma, "sigma", allow_zero=True)
        self.phi = check_in_range(phi, "phi", 0.0, 1.0 - 1e-12)
        self._rng = as_generator(rng)
        # Start from the stationary distribution of the AR(1) process so
        # the first GOP is statistically identical to all later ones.
        self._log_c = (self._rng.normal(0.0, self.sigma)
                       if self.sigma > 0.0 else 0.0)

    @property
    def complexity(self) -> float:
        """Complexity of the current GOP (lognormal, median 1)."""
        return math.exp(self._log_c)

    def advance(self) -> float:
        """Move to the next GOP and return its complexity."""
        if self.sigma > 0.0:
            innovation = self._rng.normal(0.0, self.sigma)
            self._log_c = (self.phi * self._log_c
                           + math.sqrt(1.0 - self.phi ** 2) * innovation)
        return self.complexity

    def sample(self, n_gops: int) -> List[float]:
        """The next ``n_gops`` complexities (advances the process)."""
        if n_gops < 0:
            raise ConfigurationError(f"n_gops must be non-negative, got {n_gops}")
        return [self.advance() for _ in range(n_gops)]

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.advance()


def empirical_autocorrelation(values, lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation of a trace (validation helper)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size <= lag:
        raise ConfigurationError(
            f"need more than {lag} samples, got {arr.size}")
    a = arr[:-lag] - arr.mean()
    b = arr[lag:] - arr.mean()
    denominator = float(np.sqrt(np.square(a).sum() * np.square(b).sum()))
    if denominator == 0.0:
        return 0.0
    return float((a * b).sum() / denominator)
