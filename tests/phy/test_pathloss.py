"""Tests for the log-distance path-loss model."""

import math

import pytest

from repro.phy.pathloss import (
    LogDistancePathLoss,
    db_to_linear,
    linear_to_db,
    mean_sinr_db,
)
from repro.utils.errors import ConfigurationError


class TestLogDistance:
    def test_reference_point(self):
        model = LogDistancePathLoss(exponent=3.0, reference_distance_m=1.0,
                                    reference_loss_db=37.0)
        assert model.loss_db(1.0) == pytest.approx(37.0)

    def test_decade_slope(self):
        # Loss grows by 10*n dB per decade of distance.
        model = LogDistancePathLoss(exponent=3.5)
        assert model.loss_db(100.0) - model.loss_db(10.0) == pytest.approx(35.0)

    def test_clamped_below_reference(self):
        model = LogDistancePathLoss(exponent=3.0, reference_distance_m=2.0)
        assert model.loss_db(0.5) == model.loss_db(2.0)

    def test_monotone_in_distance(self):
        model = LogDistancePathLoss(exponent=2.5)
        losses = [model.loss_db(d) for d in (1, 5, 20, 100, 400)]
        assert losses == sorted(losses)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_distance_m=-1.0)
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(reference_loss_db=float("nan"))
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss().loss_db(0.0)


class TestMeanSinr:
    def test_noise_only_budget(self):
        model = LogDistancePathLoss(exponent=3.0, reference_loss_db=37.0)
        # rx = 20 - 37 = -17 dBm over a -100 dBm floor => 83 dB SINR.
        assert mean_sinr_db(20.0, 1.0, model) == pytest.approx(83.0)

    def test_interference_reduces_sinr(self):
        model = LogDistancePathLoss(exponent=3.0)
        clean = mean_sinr_db(20.0, 10.0, model)
        interfered = mean_sinr_db(20.0, 10.0, model, interference_dbm=-90.0)
        assert interfered < clean

    def test_equal_noise_and_interference_costs_3db(self):
        model = LogDistancePathLoss(exponent=3.0)
        clean = mean_sinr_db(20.0, 10.0, model, noise_dbm=-100.0)
        interfered = mean_sinr_db(20.0, 10.0, model, noise_dbm=-100.0,
                                  interference_dbm=-100.0)
        assert clean - interfered == pytest.approx(10.0 * math.log10(2.0))


class TestConversions:
    def test_round_trip(self):
        assert db_to_linear(linear_to_db(42.0)) == pytest.approx(42.0)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_to_db(0.0)
