"""Exact reference solvers ("oracles") for the per-slot problem.

Two building blocks:

* :func:`water_filling` -- given the binary base-station assignment, each
  base station's subproblem is a weighted log-utility water-filling over
  the slot simplex, solved exactly in closed form by a breakpoint scan on
  the KKT multiplier.
* :func:`exhaustive_reference_solution` -- enumerate all ``2^K`` binary
  assignments (Theorem 1: the optimal ``p`` is binary, so this search is
  exact for problem (12)/(17)) and water-fill each.  Exponential in ``K``,
  intended for tests and small instances only.

The distributed dual algorithm (Tables I/II) is validated against these in
the test suite; the greedy bound checks of Theorem 2 use them to compute
true optima on small interfering instances.

Two implementations of the water-filling step coexist (DESIGN §10):

* :func:`water_filling_scalar` -- the original pure-Python breakpoint
  scan, kept verbatim as the bit-exact oracle.
* :func:`_water_filling_arrays` -- a numpy formulation of the same scan
  (stable argsort + cumulative sums), engineered operation-for-operation
  to reproduce the oracle's floating-point results exactly.  The final
  objective value intentionally stays a scalar ``math.log1p`` loop over
  the (few) users with positive share: numpy's ``log1p`` ufunc is *not*
  bit-identical to ``math.log1p`` on all inputs, while skipping the
  exact-zero terms of a non-negative sequential sum is an identity.

:func:`compile_slot_problem` builds a :class:`CompiledSlotProblem` -- the
problem's user fields packed once into arrays, with per-(station, member
set) water-filling results cached -- so the thousands of
``solve_given_assignment`` calls issued per slot by ``flip_polish`` and
the dual solver's primal recovery stop re-extracting user attributes and
re-solving identical subgroups.  The public entry points dispatch between
the two paths on :func:`repro.core.accel.acceleration_enabled`.
"""

from __future__ import annotations

import itertools
import math
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accel import acceleration_enabled
from repro.core.problem import Allocation, SlotProblem, UserDemand
from repro.utils.errors import ConfigurationError


def _validate_water_filling(weights: Sequence[float], bases: Sequence[float],
                            slopes: Sequence[float]) -> int:
    """Shared input validation; returns the (common) length."""
    n = len(weights)
    if not (len(bases) == len(slopes) == n):
        raise ConfigurationError(
            f"weights/bases/slopes must have equal length, got "
            f"{n}/{len(bases)}/{len(slopes)}")
    for j in range(n):
        if bases[j] <= 0:
            raise ConfigurationError(f"bases[{j}] must be positive, got {bases[j]}")
        if weights[j] < 0 or slopes[j] < 0:
            raise ConfigurationError("weights and slopes must be non-negative")
    return n


def water_filling_scalar(weights: Sequence[float], bases: Sequence[float],
                         slopes: Sequence[float]) -> Tuple[List[float], float]:
    """The original pure-Python water-filling -- the bit-exact oracle.

    Semantics are documented on :func:`water_filling`; this scalar form is
    kept verbatim so the vectorized path always has a reference to be
    validated against (and so ``use_acceleration(False)`` really runs the
    pre-acceleration code).
    """
    n = _validate_water_filling(weights, bases, slopes)
    active = [j for j in range(n) if weights[j] > 0 and slopes[j] > 0]
    rho = [0.0] * n
    if active:
        # KKT: rho_j(lam) = (w_j / lam - c_j)^+ with c_j = W_j / s_j; the
        # budget always binds under log utility, so lam solves
        # sum_{j in S} (w_j / lam - c_j) = 1 over the active set
        # S = {j : w_j / c_j > lam}.  Scanning users in decreasing order
        # of their activation breakpoint w_j / c_j, exactly one prefix
        # yields lam = sum(w) / (1 + sum(c)) consistent with its own
        # membership -- an exact O(K log K) water-filling.
        costs = {j: bases[j] / slopes[j] for j in active}
        order = sorted(active, key=lambda j: weights[j] / costs[j], reverse=True)
        weight_sum = 0.0
        cost_sum = 0.0
        lam = None
        members = 0
        for position, j in enumerate(order):
            weight_sum += weights[j]
            cost_sum += costs[j]
            candidate = weight_sum / (1.0 + cost_sum)
            next_breakpoint = (weights[order[position + 1]] / costs[order[position + 1]]
                               if position + 1 < len(order) else 0.0)
            if candidate >= next_breakpoint:
                lam = candidate
                members = position + 1
                break
        if lam is None or lam <= 0.0:
            # Subnormal weights/slopes underflowed the water level; the
            # utilities involved are ~0, so any feasible choice is optimal
            # to machine precision -- serve the best-breakpoint user.
            rho[order[0]] = 1.0
        else:
            raw = [max(0.0, weights[j] / lam - costs[j]) for j in order[:members]]
            raw_total = sum(raw)
            if raw_total > 0.0:
                # Snap the rounding residual onto the simplex boundary.
                raw = [r / raw_total for r in raw]
            for j, share in zip(order[:members], raw):
                rho[j] = share
    value = sum(weights[j] * math.log1p(rho[j] * slopes[j] / bases[j]) for j in range(n))
    return rho, value


def _water_filling_arrays(weights: np.ndarray, bases: np.ndarray,
                          slopes: np.ndarray) -> Tuple[np.ndarray, float]:
    """Vectorized breakpoint scan; bit-identical to the scalar oracle.

    Inputs are validated float64 arrays.  The candidate water levels are
    the same running-sum quotients the scalar loop computes (``cumsum``
    is a sequential sum, so every partial result matches), the stable
    descending argsort reproduces Python's stable ``sorted(...,
    reverse=True)`` tie order, and the objective is accumulated with
    scalar ``math.log1p`` in ascending-index order exactly like the
    oracle (zero-share terms contribute an exact ``+0.0`` there, so
    skipping them is lossless).
    """
    n = weights.size
    rho = np.zeros(n)
    active = np.flatnonzero((weights > 0) & (slopes > 0))
    if active.size:
        w = weights[active]
        with np.errstate(over="ignore"):
            costs = bases[active] / slopes[active]
            if not np.all(costs):
                # bases/slopes underflowed to exact zero; the scalar
                # oracle's ``weights[j] / costs[j]`` raises here too.
                raise ZeroDivisionError("float division by zero")
            keys = w / costs
        order = np.argsort(-keys, kind="stable")
        w_ord = w[order]
        cost_ord = costs[order]
        key_ord = keys[order]
        candidates = np.cumsum(w_ord) / (1.0 + np.cumsum(cost_ord))
        next_breakpoints = np.empty_like(key_ord)
        next_breakpoints[:-1] = key_ord[1:]
        next_breakpoints[-1] = 0.0
        stops = np.flatnonzero(candidates >= next_breakpoints)
        lam = float(candidates[stops[0]]) if stops.size else None
        if lam is None or lam <= 0.0:
            rho[active[order[0]]] = 1.0
        else:
            members = int(stops[0]) + 1
            raw = w_ord[:members] / lam - cost_ord[:members]
            np.maximum(raw, 0.0, out=raw)
            raw_total = float(np.cumsum(raw)[-1])
            if raw_total > 0.0:
                raw = raw / raw_total
            rho[active[order[:members]]] = raw
    value = 0.0
    with np.errstate(over="ignore"):
        for j in np.flatnonzero(rho > 0.0):
            value += weights[j] * math.log1p(rho[j] * slopes[j] / bases[j])
    return rho, float(value)


def water_filling(weights: Sequence[float], bases: Sequence[float],
                  slopes: Sequence[float]) -> Tuple[List[float], float]:
    """Maximise ``sum_j weights_j * [log(bases_j + rho_j slopes_j) - log(bases_j)]``.

    Subject to ``sum_j rho_j <= 1`` and ``rho >= 0``.  This is the
    per-base-station subproblem of (12)/(17) once the assignment is fixed:
    ``weights`` are link success probabilities ``bar P^F``, ``bases`` the
    PSNR states ``W_j``, ``slopes`` the effective per-slot increments
    (``R_{0,j}`` on the MBS, ``G_i * R_{i,j}`` on an FBS).  The
    ``- log(bases_j)`` normalisation makes the value the expected
    log-PSNR *gain* (see :mod:`repro.core.problem`); it is constant in
    ``rho`` and does not affect the optimiser.

    Dispatches to the vectorized scan (default) or the scalar oracle
    (under ``use_acceleration(False)``); both return bit-identical
    results.

    Returns
    -------
    (rho, value):
        The optimal shares and the attained objective value.  Users with
        zero weight or zero slope receive zero share and contribute zero
        value.
    """
    if not acceleration_enabled():
        return water_filling_scalar(weights, bases, slopes)
    _validate_water_filling(weights, bases, slopes)
    rho, value = _water_filling_arrays(np.asarray(weights, dtype=float),
                                       np.asarray(bases, dtype=float),
                                       np.asarray(slopes, dtype=float))
    return rho.tolist(), value


class CompiledSlotProblem:
    """A slot's user set packed into arrays with per-group caching.

    ``solve_given_assignment`` decomposes into independent water-filling
    subproblems, one per base station, and the subproblem for a station
    depends only on *which* users sit on it and (for an FBS) on its own
    ``G_i`` -- not on how the remaining users are assigned, nor on the
    other stations' ``G`` values.  ``flip_polish``, the dual solver's
    primal recovery, and the greedy allocator's hundreds of per-slot
    ``with_expected_channels`` variants therefore re-solve the same
    (station, member set, ``G_i``) groups over and over; this class
    extracts the user attribute arrays once per user set and caches each
    group's exact water-filling result.  In particular the MBS group is
    independent of ``G`` entirely, so it is shared across every channel
    allocation candidate the greedy evaluates in a slot.
    """

    def __init__(self, users: Sequence[UserDemand]) -> None:
        users = list(users)
        self.user_ids = [user.user_id for user in users]
        self._id_set = frozenset(self.user_ids)
        self._w_prev = np.array([user.w_prev for user in users], dtype=float)
        self._success_mbs = np.array([user.success_mbs for user in users], dtype=float)
        self._success_fbs = np.array([user.success_fbs for user in users], dtype=float)
        self._r_mbs = np.array([user.r_mbs for user in users], dtype=float)
        self._r_fbs = np.array([user.r_fbs for user in users], dtype=float)
        self._fbs_ids = sorted({user.fbs_id for user in users})
        self._members = {fbs_id: [j for j, user in enumerate(users)
                                  if user.fbs_id == fbs_id]
                         for fbs_id in self._fbs_ids}
        # (station, member index tuple, g) -> (shares list, value);
        # station 0 is the MBS (g None there).  Bounded by the number of
        # distinct groups one slot's solvers actually visit.
        self._group_cache: Dict[tuple, Tuple[List[float], float]] = {}

    def _group_solution(self, station: int, members: tuple,
                        g: Optional[float]) -> Tuple[List[float], float]:
        cached = self._group_cache.get((station, members, g))
        if cached is None:
            sel = list(members)
            if station == 0:
                weights = self._success_mbs[sel]
                slopes = self._r_mbs[sel]
            else:
                weights = self._success_fbs[sel]
                slopes = g * self._r_fbs[sel]
            rho, value = _water_filling_arrays(weights, self._w_prev[sel], slopes)
            cached = (rho.tolist(), value)
            self._group_cache[(station, members, g)] = cached
        return cached

    def solve_assignment(self, mbs_user_ids,
                         expected_channels: Dict[int, float]) -> Allocation:
        """Exact solution of (17) for a fixed binary assignment."""
        mbs_user_ids = set(mbs_user_ids)
        unknown = mbs_user_ids - self._id_set
        if unknown:
            raise ConfigurationError(
                f"assignment references unknown users {sorted(unknown)}")
        rho_mbs: Dict[int, float] = {}
        rho_fbs: Dict[int, float] = {}
        objective = 0.0
        on_mbs = tuple(j for j, user_id in enumerate(self.user_ids)
                       if user_id in mbs_user_ids)
        if on_mbs:
            shares, value = self._group_solution(0, on_mbs, None)
            for j, share in zip(on_mbs, shares):
                rho_mbs[self.user_ids[j]] = share
            objective += value
        for fbs_id in self._fbs_ids:
            members = tuple(j for j in self._members[fbs_id]
                            if self.user_ids[j] not in mbs_user_ids)
            if not members:
                continue
            shares, value = self._group_solution(
                fbs_id, members, expected_channels[fbs_id])
            for j, share in zip(members, shares):
                rho_fbs[self.user_ids[j]] = share
            objective += value
        return Allocation(mbs_user_ids=mbs_user_ids, rho_mbs=rho_mbs,
                          rho_fbs=rho_fbs, objective=objective)


#: Recently compiled user sets, keyed on the user tuple.
_COMPILE_CACHE: "OrderedDict[tuple, CompiledSlotProblem]" = OrderedDict()
_COMPILE_CACHE_SIZE = 64


def compile_slot_problem(problem: SlotProblem) -> CompiledSlotProblem:
    """The compiled form of ``problem``'s user set, cached across calls.

    Keyed on the user tuple only (``UserDemand`` is frozen/hashable) --
    ``G`` enters at :meth:`CompiledSlotProblem.solve_assignment` time --
    so the repeated ``with_expected_channels`` copies the greedy
    allocator creates for one slot all share a single compiled instance
    and its water-filling group cache.
    """
    key = tuple(problem.users)
    compiled = _COMPILE_CACHE.get(key)
    if compiled is None:
        compiled = CompiledSlotProblem(problem.users)
        _COMPILE_CACHE[key] = compiled
        if len(_COMPILE_CACHE) > _COMPILE_CACHE_SIZE:
            _COMPILE_CACHE.popitem(last=False)
    else:
        _COMPILE_CACHE.move_to_end(key)
    return compiled


def _solve_given_assignment_scalar(problem: SlotProblem, mbs_user_ids) -> Allocation:
    """The original per-group extraction loop (oracle path)."""
    mbs_user_ids = set(mbs_user_ids)
    known = {user.user_id for user in problem.users}
    unknown = mbs_user_ids - known
    if unknown:
        raise ConfigurationError(f"assignment references unknown users {sorted(unknown)}")
    rho_mbs: Dict[int, float] = {}
    rho_fbs: Dict[int, float] = {}
    objective = 0.0

    mbs_users = [user for user in problem.users if user.user_id in mbs_user_ids]
    shares, value = water_filling(
        [user.success_mbs for user in mbs_users],
        [user.w_prev for user in mbs_users],
        [user.r_mbs for user in mbs_users],
    ) if mbs_users else ([], 0.0)
    for user, share in zip(mbs_users, shares):
        rho_mbs[user.user_id] = share
    objective += value

    for fbs_id in problem.fbs_ids:
        cell_users = [user for user in problem.users_of_fbs(fbs_id)
                      if user.user_id not in mbs_user_ids]
        if not cell_users:
            continue
        g_i = problem.expected_channels[fbs_id]
        shares, value = water_filling(
            [user.success_fbs for user in cell_users],
            [user.w_prev for user in cell_users],
            [g_i * user.r_fbs for user in cell_users],
        )
        for user, share in zip(cell_users, shares):
            rho_fbs[user.user_id] = share
        objective += value

    return Allocation(mbs_user_ids=mbs_user_ids, rho_mbs=rho_mbs,
                      rho_fbs=rho_fbs, objective=objective)


def solve_given_assignment(problem: SlotProblem, mbs_user_ids) -> Allocation:
    """Exact solution of (17) for a fixed binary base-station assignment.

    Parameters
    ----------
    problem:
        The slot problem.
    mbs_user_ids:
        Users with ``p_j = 1`` (scheduled on the MBS); everyone else is on
        their associated FBS.
    """
    if acceleration_enabled():
        return compile_slot_problem(problem).solve_assignment(
            mbs_user_ids, problem.expected_channels)
    return _solve_given_assignment_scalar(problem, mbs_user_ids)


def exhaustive_reference_solution(problem: SlotProblem, *,
                                  max_users: int = 16) -> Allocation:
    """Globally optimal solution by enumerating all binary assignments.

    By Theorem 1 the optimum of (12)/(17) has every ``p_j`` in ``{0, 1}``,
    so enumerating the ``2^K`` assignments and exactly water-filling each
    is an exact (if exponential) algorithm.

    Raises
    ------
    ConfigurationError
        If ``K > max_users`` -- the guard against accidentally launching an
        exponential search on a large instance.
    """
    if problem.n_users > max_users:
        raise ConfigurationError(
            f"exhaustive search limited to {max_users} users, got {problem.n_users}")
    user_ids = [user.user_id for user in problem.users]
    best: Allocation = None
    for pattern in itertools.product((False, True), repeat=len(user_ids)):
        assignment = {uid for uid, on_mbs in zip(user_ids, pattern) if on_mbs}
        candidate = solve_given_assignment(problem, assignment)
        if best is None or candidate.objective > best.objective:
            best = candidate
    return best
