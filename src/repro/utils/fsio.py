"""Filesystem durability helpers shared by the persistence layers.

Writing bytes and fsyncing the file is only half of crash safety: the
*directory entry* pointing at a freshly created (or renamed-over) file
lives in the directory's own metadata, and survives power loss only if
the directory is fsynced too.  The checkpoint writer, the atomic results
saver, and the manifest exporter all share this helper so the rule is
applied uniformly.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_dir(path: Union[str, Path]) -> None:
    """Fsync a directory so its entries survive power loss.

    Best-effort by design: some platforms and filesystems (Windows,
    certain network mounts) refuse to open or fsync directories, and a
    durability *upgrade* must never turn into a new failure mode for an
    otherwise-successful write, so every ``OSError`` is swallowed.
    """
    name = os.fspath(path) or "."
    try:
        fd = os.open(name, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically and durably.

    The full tmpfile -> fsync -> ``os.replace`` -> directory-fsync
    discipline shared by every persistence surface (results, manifests,
    workspace index, scenario artifacts): an interrupted or failed write
    never corrupts an existing file -- either the old contents survive
    intact or the new file is complete.  On any failure (including
    ``KeyboardInterrupt`` mid-write) the temporary file is removed and
    the destination is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or ".")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # The rename is only durable once the directory entry itself is
    # synced; without this a power loss can resurrect the old file.
    fsync_dir(path.parent or ".")
    return path
