"""Opportunistic channel access with primary-user protection (Section III-C).

After fusion, the CR network decides per channel whether to access it in
the transmission phase.  The paper uses a *probabilistic* policy: access
channel ``m`` (set ``D_m(t) = 0``) with probability ``P_D`` chosen as large
as possible subject to the collision cap (eq. 6):

    (1 - P_A) * P_D <= gamma_m
    =>  P_D = min{ gamma_m / (1 - P_A), 1 }              (eq. 7)

The *expected number of available channels* used by the rate model is
``G_t = sum_{m in A(t)} P_A^m`` where ``A(t)`` is the set of channels the
policy decided to access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_probability, check_probability_array


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of the access policy for one slot.

    Attributes
    ----------
    access_probabilities:
        ``P_D`` per licensed channel (eq. 7).
    decisions:
        ``D_m`` per channel: 0 = access (considered idle), 1 = abstain.
    posteriors:
        Fused idle posteriors ``P_A`` per channel.
    """

    access_probabilities: np.ndarray
    decisions: np.ndarray
    posteriors: np.ndarray

    @property
    def available_channels(self) -> np.ndarray:
        """The set ``A(t) = {m : D_m = 0}`` of channels to be accessed."""
        return np.flatnonzero(self.decisions == 0)

    @property
    def expected_available(self) -> float:
        """``G_t = sum_{m in A(t)} P_A^m`` -- expected available channels."""
        available = self.available_channels
        if available.size == 0:
            return 0.0
        return float(self.posteriors[available].sum())

    def expected_available_subset(self, channels: Sequence[int]) -> float:
        """``G_t`` restricted to ``channels`` (used for per-FBS allocations).

        Channels outside ``A(t)`` contribute nothing even if listed, and a
        channel listed more than once still counts once -- ``G`` sums over
        a channel *set*, so duplicated indices must not inflate it.
        """
        available = set(self.available_channels.tolist())
        return float(sum(self.posteriors[m] for m in dict.fromkeys(channels)
                         if m in available))


class AccessPolicy:
    """The collision-capped probabilistic access policy of eqs. (5)-(7).

    Parameters
    ----------
    collision_caps:
        Per-channel maximum allowable collision probabilities ``gamma_m``.
    rng:
        Randomness used to realise the probabilistic decisions ``D_m``.
    """

    def __init__(self, collision_caps, *, rng: RandomState = None) -> None:
        self.collision_caps = check_probability_array(collision_caps, "collision_caps")
        self._rng = as_generator(rng)

    @property
    def n_channels(self) -> int:
        """Number of licensed channels the policy covers."""
        return int(self.collision_caps.size)

    def access_probability(self, channel: int, posterior_idle: float) -> float:
        """``P_D`` for one channel given its fused idle posterior (eq. 7)."""
        posterior_idle = check_probability(posterior_idle, "posterior_idle")
        gamma = self.collision_caps[channel]
        busy_posterior = 1.0 - posterior_idle
        if busy_posterior <= gamma:
            # Even accessing with certainty keeps expected collisions below
            # the cap.
            return 1.0
        return gamma / busy_posterior

    def access_probabilities(self, posteriors: np.ndarray) -> np.ndarray:
        """Vectorized ``P_D`` for every channel at once (eq. 7).

        Bit-exact batched counterpart of calling
        :meth:`access_probability` per channel: the comparisons and the
        ``gamma / (1 - P_A)`` divisions are the same IEEE-754 double
        operations element by element, so the returned array matches the
        scalar loop exactly.  Subclasses overriding
        :meth:`access_probability` must override this too (see
        :class:`HardThresholdAccessPolicy`).
        """
        busy = 1.0 - posteriors
        exceeds = busy > self.collision_caps
        probs = np.ones(posteriors.size)
        np.divide(self.collision_caps, busy, out=probs, where=exceeds)
        return probs

    def decide(self, posteriors) -> AccessDecision:
        """Draw access decisions ``D_m`` for every channel in one slot.

        Parameters
        ----------
        posteriors:
            Fused idle posteriors ``P_A^m`` per channel, length ``M``.
        """
        posteriors = check_probability_array(posteriors, "posteriors")
        if posteriors.size != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} posteriors, got {posteriors.size}")
        probs = np.array([
            self.access_probability(m, posteriors[m]) for m in range(self.n_channels)
        ])
        draws = self._rng.random(self.n_channels)
        decisions = np.where(draws < probs, 0, 1).astype(np.int8)
        return AccessDecision(
            access_probabilities=probs,
            decisions=decisions,
            posteriors=posteriors.copy(),
        )

    def decide_batched(self, posteriors) -> AccessDecision:
        """Batched counterpart of :meth:`decide`.

        Computes every ``P_D`` through :meth:`access_probabilities` and
        draws the same ``M`` uniforms as the scalar path (one
        ``rng.random(M)`` call either way), so the returned decision --
        and the RNG state afterwards -- is bit-identical to
        :meth:`decide` on the same posteriors.
        """
        posteriors = check_probability_array(posteriors, "posteriors")
        if posteriors.size != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} posteriors, got {posteriors.size}")
        probs = self.access_probabilities(posteriors)
        draws = self._rng.random(self.n_channels)
        decisions = np.where(draws < probs, 0, 1).astype(np.int8)
        return AccessDecision(
            access_probabilities=probs,
            decisions=decisions,
            posteriors=posteriors.copy(),
        )


@dataclass
class CollisionTracker:
    """Accounting of actual collisions with primary users.

    A collision happens when the CR network accesses a channel (``D_m = 0``)
    whose *true* state is busy.  :class:`CollisionTracker` accumulates
    per-channel access and collision counts so tests and experiments can
    verify the empirical collision probability stays below ``gamma_m``.
    """

    n_channels: int
    accesses: np.ndarray = field(init=False)
    collisions: np.ndarray = field(init=False)
    slots: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.accesses = np.zeros(self.n_channels, dtype=np.int64)
        self.collisions = np.zeros(self.n_channels, dtype=np.int64)

    def record(self, decision: AccessDecision, true_occupancy) -> None:
        """Fold one slot's decision against the true channel occupancy."""
        true_occupancy = np.asarray(true_occupancy)
        if true_occupancy.shape != (self.n_channels,):
            raise ValueError(
                f"true_occupancy must have shape ({self.n_channels},), "
                f"got {true_occupancy.shape}")
        accessed = decision.decisions == 0
        self.accesses += accessed.astype(np.int64)
        self.collisions += (accessed & (true_occupancy == 1)).astype(np.int64)
        self.slots += 1

    def collision_rates(self) -> np.ndarray:
        """Per-channel empirical collision probability, *per slot*.

        The paper's constraint (eq. 6) bounds the unconditional per-slot
        collision probability ``Pr{access and busy}``, so the denominator
        is the number of slots, not the number of accesses.
        """
        if self.slots == 0:
            return np.zeros(self.n_channels)
        return self.collisions / float(self.slots)


class HardThresholdAccessPolicy(AccessPolicy):
    """Ablation variant of the access policy: deterministic thresholding.

    Instead of the paper's probabilistic rule (eq. 7), access channel
    ``m`` iff the fused busy posterior is at most ``gamma_m``:

        D_m = 0  <=>  1 - P_A <= gamma_m

    This also satisfies the collision cap of eq. (6) -- accessed channels
    have ``(1 - P_A) * 1 <= gamma`` -- but wastes every opportunity whose
    busy posterior sits just above the cap, opportunities the
    probabilistic rule can still exploit a fraction of the time.  Used by
    the A1 ablation benchmark to quantify that loss.
    """

    def access_probability(self, channel: int, posterior_idle: float) -> float:
        """1 if the busy posterior clears the cap, else 0."""
        posterior_idle = check_probability(posterior_idle, "posterior_idle")
        return 1.0 if 1.0 - posterior_idle <= self.collision_caps[channel] else 0.0

    def access_probabilities(self, posteriors: np.ndarray) -> np.ndarray:
        """Vectorized thresholding, element-identical to the scalar rule."""
        return np.where(1.0 - posteriors <= self.collision_caps, 1.0, 0.0)
