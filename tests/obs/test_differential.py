"""Telemetry is out-of-band: identical output with observability on/off.

The load-bearing guarantee of the obs package (DESIGN.md section 12):
tracing, metrics, and logging never touch RNG streams or results.  These
tests run the same experiment with full observability (``--profile``
tracing + metrics) and with everything off, then compare

* the canonical SlotRecord stream fingerprint (engine level),
* saved results files byte-for-byte,
* sweep checkpoint files (byte-for-byte at ``--jobs 1``; as an ordered-
  independent line set at ``--jobs 2``, where the append order follows
  worker completion order and is not deterministic even without
  telemetry).
"""

from repro import obs
from repro.experiments.fig4 import run_fig4b
from repro.experiments.results_io import save_results
from repro.experiments.scenarios import single_fbs_scenario
from tests.sim.test_seed_stability import compute_fingerprint

SCHEMES = ("proposed-fast", "heuristic1")
SEED = 7


def _observed(trace_path, metrics_path):
    obs.configure(trace_path=str(trace_path), metrics_path=str(metrics_path),
                  profile=True)


def _run_sweep(tmp_path, tag, jobs, observe):
    checkpoint = tmp_path / f"checkpoint-{tag}.jsonl"
    if observe:
        _observed(tmp_path / f"trace-{tag}.jsonl",
                  tmp_path / f"metrics-{tag}.prom")
    try:
        result = run_fig4b(n_runs=2, n_gops=1, seed=SEED, channels=(4,),
                           schemes=SCHEMES,
                           checkpoint_path=str(checkpoint), jobs=jobs)
    finally:
        obs.shutdown()
    results_path = tmp_path / f"results-{tag}.json"
    save_results(result, results_path,
                 provenance=obs.result_provenance(seed=SEED))
    return results_path.read_bytes(), checkpoint.read_bytes()


class TestEngineLevel:
    def test_slot_record_stream_identical_with_observability_on(self, tmp_path):
        config = single_fbs_scenario(n_gops=1, seed=SEED)
        baseline, _ = compute_fingerprint(config)
        _observed(tmp_path / "trace.jsonl", tmp_path / "metrics.prom")
        try:
            observed, _ = compute_fingerprint(config)
        finally:
            obs.shutdown()
        assert observed == baseline


class TestSweepLevel:
    def test_jobs1_results_and_checkpoint_byte_identical(self, tmp_path):
        plain_results, plain_ckpt = _run_sweep(tmp_path, "off", 1, False)
        traced_results, traced_ckpt = _run_sweep(tmp_path, "on", 1, True)
        assert traced_results == plain_results
        assert traced_ckpt == plain_ckpt
        # The telemetry side actually ran: trace and metrics files exist
        # and are non-trivial.
        trace = obs.read_trace(str(tmp_path / "trace-on.jsonl"))
        assert trace[-1]["kind"] == "trace-summary"
        assert any(e["kind"] == "replication" for e in trace)
        metrics_text = (tmp_path / "metrics-on.prom").read_text()
        assert "repro_slots_total" in metrics_text
        assert "repro_solver_iterations" in metrics_text

    def test_jobs2_results_byte_identical_checkpoint_content_equal(
            self, tmp_path):
        plain_results, plain_ckpt = _run_sweep(tmp_path, "off-2", 2, False)
        traced_results, traced_ckpt = _run_sweep(tmp_path, "on-2", 2, True)
        assert traced_results == plain_results
        # Checkpoint cells are appended in worker completion order, which
        # varies run to run regardless of telemetry; the *content* (header
        # plus the set of cell lines) must match exactly.
        assert sorted(traced_ckpt.splitlines()) == sorted(plain_ckpt.splitlines())
        assert len(traced_ckpt) == len(plain_ckpt)

    def test_jobs_counts_agree_with_each_other(self, tmp_path):
        # Transitivity check: traced jobs=2 == untraced jobs=1 results.
        plain_results, _ = _run_sweep(tmp_path, "off-j1", 1, False)
        traced_results, _ = _run_sweep(tmp_path, "on-j2", 2, True)
        assert traced_results == plain_results


class TestMetricsParallelInvariance:
    def test_engine_metric_totals_jobs1_vs_jobs2(self, tmp_path):
        # Snapshot-and-absorb makes deterministic engine-side counters
        # (slots, access decisions, solver iterations, PSNR histograms)
        # identical at any worker count; executor-side wall-clock metrics
        # are excluded from the comparison by nature.
        def engine_lines(tag, jobs):
            _run_sweep(tmp_path, tag, jobs, True)
            text = (tmp_path / f"metrics-{tag}.prom").read_text()
            return sorted(
                line for line in text.splitlines()
                if line.startswith(("repro_slots_total", "repro_access_",
                                    "repro_solver_", "repro_user_psnr_db",
                                    "repro_degradations_total")))

        assert engine_lines("agg-1", 1) == engine_lines("agg-2", 2)


class TestCliArtifacts:
    def test_trace_metrics_and_manifest_files_created(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "run.trace.jsonl"
        metrics_path = tmp_path / "run.prom"
        exit_code = main([
            "simulate", "--runs", "1", "--gops", "1",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
            "--profile",
        ])
        assert exit_code == 0
        events = obs.read_trace(str(trace_path))
        kinds = {e["kind"] for e in events}
        assert {"run", "replication", "slot", "phase",
                "trace-summary"} <= kinds
        manifest = obs.read_manifest(str(trace_path) + ".manifest.json")
        assert manifest["command"] == "simulate"
        assert "repro_slots_total" in metrics_path.read_text()

    def test_plain_trace_omits_phase_spans(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "plain.trace.jsonl"
        exit_code = main([
            "simulate", "--runs", "1", "--gops", "1",
            "--trace", str(trace_path),
        ])
        assert exit_code == 0
        kinds = {e["kind"] for e in obs.read_trace(str(trace_path))}
        assert "slot" in kinds
        assert "phase" not in kinds
        assert "solver" not in kinds
