"""Tests for the colour-partition baseline channel assignment."""

import pytest

from repro.net.interference import interference_graph_from_edges, is_valid_allocation
from repro.sim.channel_assignment import (
    color_partition_allocation,
    expected_channels_of,
)
from repro.utils.errors import ConfigurationError


def chain():
    return interference_graph_from_edges([1, 2, 3], [(1, 2), (2, 3)])


class TestColorPartition:
    def test_conflict_free(self):
        graph = chain()
        posteriors = {m: 0.9 - 0.1 * m for m in range(6)}
        allocation = color_partition_allocation(graph, [1, 2, 3],
                                                list(range(6)), posteriors)
        assert is_valid_allocation(graph, allocation)

    def test_non_adjacent_share(self):
        graph = chain()
        allocation = color_partition_allocation(graph, [1, 2, 3], [0, 1],
                                                {0: 0.9, 1: 0.8})
        # 1 and 3 are one colour class: they receive identical channels.
        assert allocation[1] == allocation[3]
        assert not (allocation[1] & allocation[2])

    def test_every_channel_assigned_somewhere(self):
        graph = chain()
        channels = list(range(5))
        allocation = color_partition_allocation(
            graph, [1, 2, 3], channels, {m: 0.5 for m in channels})
        assigned = set().union(*allocation.values())
        assert assigned == set(channels)

    def test_best_channels_dealt_first(self):
        # With two colour classes, the best and third-best channels go to
        # class 0, the second-best to class 1: no class is starved.
        graph = chain()
        posteriors = {0: 0.9, 1: 0.5, 2: 0.7}
        allocation = color_partition_allocation(graph, [1, 2, 3], [0, 1, 2],
                                                posteriors)
        expected = expected_channels_of(allocation, posteriors)
        assert min(expected.values()) > 0.0

    def test_edgeless_graph_full_reuse(self):
        graph = interference_graph_from_edges([1, 2], [])
        allocation = color_partition_allocation(graph, [1, 2], [0, 1],
                                                {0: 0.9, 1: 0.8})
        assert allocation[1] == allocation[2] == {0, 1}

    def test_empty_inputs(self):
        graph = chain()
        assert color_partition_allocation(graph, [], [0], {0: 0.5}) == {}
        allocation = color_partition_allocation(graph, [1, 2, 3], [], {})
        assert all(not chans for chans in allocation.values())

    def test_unknown_fbs_rejected(self):
        with pytest.raises(ConfigurationError):
            color_partition_allocation(chain(), [9], [0], {0: 0.5})


class TestExpectedChannels:
    def test_sums(self):
        expected = expected_channels_of({1: {0, 2}, 2: set()},
                                        {0: 0.9, 1: 0.5, 2: 0.6})
        assert expected[1] == pytest.approx(1.5)
        assert expected[2] == 0.0
