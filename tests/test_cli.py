"""Tests for the command-line interface."""

import signal

import pytest

from repro import cli
from repro.cli import FIGURES, build_parser, main
from repro.exec.supervisor import (
    EXIT_DEADLINE,
    EXIT_FAILED_RUNS,
    EXIT_INTERRUPTED,
)
from repro.utils.errors import SweepDeadlineExceeded, SweepInterrupted


class TestParser:
    def test_all_figure_commands_exist(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name] if name == "fig4a"
                                     else [name, "--runs", "2"])
            assert args.command == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--scenario", "interfering", "--scheme", "heuristic2"])
        assert args.scenario == "interfering"
        assert args.scheme == "heuristic2"

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheme", "magic"])


class TestExecution:
    def test_fig3_prints_table(self, capsys):
        assert main(["fig3", "--runs", "1", "--gops", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "proposed-fast" in out
        assert "user 0" in out

    def test_fig4a_prints_trace(self, capsys):
        assert main(["fig4a"]) == 0
        out = capsys.readouterr().out
        assert "lambda_0" in out
        assert "converged=True" in out

    def test_fig4c_prints_sweep(self, capsys):
        assert main(["fig4c", "--runs", "1", "--gops", "1"]) == 0
        out = capsys.readouterr().out
        assert "eta=0.3" in out
        assert "heuristic1" in out

    def test_simulate_single(self, capsys):
        assert main(["simulate", "--runs", "2", "--gops", "1",
                     "--scheme", "heuristic1"]) == 0
        out = capsys.readouterr().out
        assert "mean PSNR" in out
        assert "collision rate" in out

    def test_simulate_interfering_proposed_shows_bound(self, capsys):
        assert main(["simulate", "--runs", "1", "--gops", "1",
                     "--scenario", "interfering"]) == 0
        out = capsys.readouterr().out
        assert "eq. (23) bound" in out

    def test_simulate_profile_prints_phase_seconds(self, capsys):
        assert main(["simulate", "--runs", "1", "--gops", "1",
                     "--scheme", "heuristic1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase seconds" in out
        for phase in ("sensing", "access", "allocation", "transmission"):
            assert phase in out

    def test_profile_without_progress_prints_timing_report(self, capsys):
        assert main(["fig4c", "--runs", "1", "--gops", "1", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "Timing report" in captured.out
        assert "per phase" in captured.out
        # --profile alone must not narrate per-cell lines.
        assert "heuristic1|0|0" not in captured.err


class TestSupervisionFlags:
    def test_budget_flags_parse(self):
        args = build_parser().parse_args(
            ["fig4b", "--cell-timeout", "30", "--deadline", "600",
             "--fail-on-error"])
        assert args.cell_timeout == 30.0
        assert args.deadline == 600.0
        assert args.fail_on_error is True

    def test_budget_flags_default_off(self):
        args = build_parser().parse_args(["fig4b"])
        assert args.cell_timeout is None
        assert args.deadline is None
        assert args.fail_on_error is False

    def test_simulate_runs_under_supervision(self, capsys):
        # A generous budget must not change the happy path at all.
        assert main(["simulate", "--runs", "1", "--gops", "1",
                     "--scheme", "heuristic1", "--cell-timeout", "120"]) == 0
        assert "mean PSNR" in capsys.readouterr().out


class TestExitCodes:
    """The documented contract: 0 success, 3 failed replications under
    --fail-on-error, 4 interrupted, 5 deadline expired."""

    def test_failed_runs_tolerated_by_default(self, capsys, monkeypatch):
        monkeypatch.setattr(cli, "_run_figure",
                            lambda name, args: ("report", 2))
        assert main(["fig4b", "--runs", "1"]) == 0

    def test_fail_on_error_exits_3(self, capsys, monkeypatch):
        monkeypatch.setattr(cli, "_run_figure",
                            lambda name, args: ("report", 2))
        assert main(["fig4b", "--runs", "1",
                     "--fail-on-error"]) == EXIT_FAILED_RUNS
        assert "2 replication(s) failed" in capsys.readouterr().err

    def test_fail_on_error_with_clean_run_exits_0(self, capsys, monkeypatch):
        monkeypatch.setattr(cli, "_run_figure",
                            lambda name, args: ("report", 0))
        assert main(["fig4b", "--runs", "1", "--fail-on-error"]) == 0

    def test_all_accumulates_failures_across_figures(self, capsys,
                                                     monkeypatch):
        monkeypatch.setattr(cli, "_run_figure",
                            lambda name, args: (f"report {name}", 1))
        monkeypatch.setattr(
            cli, "run_fig4a",
            lambda **kwargs: pytest.fail("fig4a not expected here"))
        # Restrict "all" to two sweep figures for speed.
        monkeypatch.setattr(cli, "FIGURES", ("fig4b", "fig6a"))
        assert main(["all", "--fail-on-error"]) == EXIT_FAILED_RUNS
        assert "2 replication(s) failed" in capsys.readouterr().err

    def test_interrupted_sweep_exits_4(self, capsys, monkeypatch):
        def interrupted(name, args):
            raise SweepInterrupted("drained 5 of 12 cells")

        monkeypatch.setattr(cli, "_run_figure", interrupted)
        assert main(["fig4b", "--runs", "1"]) == EXIT_INTERRUPTED
        assert "interrupted" in capsys.readouterr().err

    def test_expired_deadline_exits_5(self, capsys, monkeypatch):
        def expired(name, args):
            raise SweepDeadlineExceeded("0.6s budget spent")

        monkeypatch.setattr(cli, "_run_figure", expired)
        assert main(["fig4b", "--runs", "1",
                     "--deadline", "0.6"]) == EXIT_DEADLINE
        assert "deadline exceeded" in capsys.readouterr().err

    def test_main_restores_signal_handlers(self, monkeypatch):
        monkeypatch.setattr(cli, "_run_figure", lambda name, args: ("", 0))
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        main(["fig4b", "--runs", "1"])
        assert signal.getsignal(signal.SIGINT) == before_int
        assert signal.getsignal(signal.SIGTERM) == before_term


class TestServiceParsers:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--workspace", "ws"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.job_workers == 2

    def test_submit_parser_defaults(self):
        args = build_parser().parse_args(["submit", "fig4b"])
        assert args.job_command == "fig4b"
        assert args.url == "http://127.0.0.1:8765"
        assert args.wait is False
        assert args.force is False
        assert args.job_trace is False

    def test_submit_accepts_scenario_options(self):
        args = build_parser().parse_args(
            ["submit", "simulate", "--scenario", "city-grid",
             "--scenario-arg", "n-fbss=4", "--job-trace", "--wait"])
        assert args.scenario == "city-grid"
        assert args.scenario_arg == ["n-fbss=4"]
        assert args.job_trace is True

    def test_compare_parser(self):
        args = build_parser().parse_args(
            ["compare", "a.json", "b.json", "--json", "--fail-on-diff"])
        assert args.result_a == "a.json"
        assert args.result_b == "b.json"
        assert args.as_json is True
        assert args.fail_on_diff is True

    def test_run_name_accepted_by_figures(self):
        args = build_parser().parse_args(
            ["fig4b", "--runs", "1", "--run-name", "job-0042"])
        assert args.run_name == "job-0042"


class TestServiceExecution:
    def test_serve_without_workspace_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKSPACE", raising=False)
        assert main(["serve"]) == 2
        assert "no workspace" in capsys.readouterr().err

    def test_submit_unreachable_service_exits_2(self, capsys):
        assert main(["submit", "fig4b", "--url", "http://127.0.0.1:1"]) == 2
        assert "cannot reach service" in capsys.readouterr().err

    def test_submit_bad_scenario_arg_exits_2(self, capsys):
        assert main(["submit", "simulate", "--scenario-arg", "oops"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_submit_end_to_end_writes_the_result(self, capsys, tmp_path):
        import threading

        from repro.serve.api import make_server

        server = make_server(tmp_path / "ws", port=0, job_workers=1)
        server.manager.start()
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.1}, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        output = tmp_path / "report.txt"
        try:
            code = main(["submit", "simulate", "--runs", "1", "--gops", "1",
                         "--scheme", "heuristic1",
                         "--url", f"http://{host}:{port}",
                         "--wait", "--timeout", "300",
                         "--output", str(output)])
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.manager.stop(graceful=False, timeout=30)
            server.server_close()
        assert code == 0
        out = capsys.readouterr().out
        assert "queued as job-0001" in out
        assert "job-0001 succeeded" in out
        assert "mean PSNR" in output.read_text()


class TestCompareCli:
    def payload(self, mean):
        return {"kind": "sweep",
                "provenance": {"seed": 7, "backend": "numpy"},
                "summaries": {"heuristic1": [{"mean_psnr": {"mean": mean}}]}}

    def write_pair(self, tmp_path, mean_a, mean_b):
        import json
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(self.payload(mean_a)))
        b.write_text(json.dumps(self.payload(mean_b)))
        return str(a), str(b)

    def test_identical_files_exit_0(self, capsys, tmp_path):
        a, b = self.write_pair(tmp_path, 30.0, 30.0)
        assert main(["compare", a, b]) == 0
        assert "bit-identical  : yes" in capsys.readouterr().out

    def test_fail_on_diff_exits_1(self, capsys, tmp_path):
        a, b = self.write_pair(tmp_path, 30.0, 31.0)
        assert main(["compare", a, b, "--fail-on-diff"]) == 1
        out = capsys.readouterr().out
        assert "bit-identical  : no" in out
        assert "heuristic1" in out

    def test_json_output_is_parseable(self, capsys, tmp_path):
        import json
        a, b = self.write_pair(tmp_path, 30.0, 31.0)
        assert main(["compare", a, b, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bit_identical"] is False
        assert payload["scheme_deltas"]["heuristic1"] == [1.0]

    def test_missing_file_exits_2(self, capsys, tmp_path):
        a, _ = self.write_pair(tmp_path, 30.0, 30.0)
        assert main(["compare", a, str(tmp_path / "gone.json")]) == 2
        assert "does not exist" in capsys.readouterr().err
