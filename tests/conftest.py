"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SlotProblem, UserDemand
from repro.experiments.scenarios import interfering_fbs_scenario, single_fbs_scenario


def make_user(user_id: int = 0, *, fbs_id: int = 1, w_prev: float = 30.0,
              success_mbs: float = 0.8, success_fbs: float = 0.9,
              r_mbs: float = 0.9, r_fbs: float = 0.96, **kwargs) -> UserDemand:
    """A UserDemand with sensible defaults, overridable per test."""
    return UserDemand(
        user_id=user_id, fbs_id=fbs_id, w_prev=w_prev,
        success_mbs=success_mbs, success_fbs=success_fbs,
        r_mbs=r_mbs, r_fbs=r_fbs, **kwargs)


def make_problem(n_users: int = 3, *, n_fbss: int = 1, g: float = 2.0,
                 seed: int = 0) -> SlotProblem:
    """A random-but-reproducible slot problem."""
    rng = np.random.default_rng(seed)
    users = [
        make_user(
            user_id=j,
            fbs_id=1 + j % n_fbss,
            w_prev=26.0 + 8.0 * rng.random(),
            success_mbs=0.5 + 0.5 * rng.random(),
            success_fbs=0.5 + 0.5 * rng.random(),
            r_mbs=float(rng.random() * 2.0),
            r_fbs=float(rng.random() * 1.5),
        )
        for j in range(n_users)
    ]
    return SlotProblem(
        users=users,
        expected_channels={i: g for i in range(1, n_fbss + 1)})


def random_problem(rng: np.random.Generator, *, max_users: int = 6,
                   max_fbss: int = 3) -> SlotProblem:
    """A fully random slot problem drawn from ``rng`` (for sweeps)."""
    n_users = int(rng.integers(1, max_users + 1))
    n_fbss = int(rng.integers(1, max_fbss + 1))
    users = [
        make_user(
            user_id=j,
            fbs_id=int(rng.integers(1, n_fbss + 1)),
            w_prev=26.0 + 8.0 * rng.random(),
            success_mbs=0.4 + 0.6 * rng.random(),
            success_fbs=0.4 + 0.6 * rng.random(),
            r_mbs=float(rng.random() * 2.0),
            r_fbs=float(rng.random() * 1.5),
        )
        for j in range(n_users)
    ]
    return SlotProblem(
        users=users,
        expected_channels={i: float(rng.random() * 4.0)
                           for i in range(1, n_fbss + 1)})


@pytest.fixture
def rng_pair():
    """Two identically seeded generators for differential draw tests.

    The first is conventionally driven by the batched code path, the
    second by the equivalent scalar sequence; asserting equal outputs
    *and* equal final states proves the two consume the stream
    identically.
    """
    return np.random.default_rng(20260806), np.random.default_rng(20260806)


@pytest.fixture
def small_scenario():
    """Tiny single-FBS scenario shared by the equivalence suites.

    One GOP, four channels: large enough to exercise round-robin
    sensing, fusion, access, and the PSNR recursion; small enough that
    a scalar-vs-batched double run stays cheap.
    """
    return single_fbs_scenario(n_gops=1, n_channels=4, seed=20260806)


def random_scenario(rng: np.random.Generator):
    """A fuzzed small scenario config for the differential suites.

    Randomises the knobs that reach the batched backend: channel count,
    sensing error profile (including the degenerate 0/1 corners), access
    policy, fusion ablation, belief tracking, and the deployment shape.
    """
    interfering = bool(rng.integers(0, 2))
    build = interfering_fbs_scenario if interfering else single_fbs_scenario
    config = build(
        n_channels=int(rng.integers(1, 7)),
        p01=float(rng.uniform(0.05, 0.95)),
        p10=float(rng.uniform(0.05, 0.95)),
        gamma=float(rng.uniform(0.05, 0.5)),
        false_alarm=float(rng.choice([0.0, 1.0, rng.uniform(0.05, 0.45)])),
        miss_detection=float(rng.choice([0.0, 1.0, rng.uniform(0.05, 0.45)])),
        deadline_slots=int(rng.integers(2, 7)),
        n_gops=1,
        seed=int(rng.integers(0, 2**31)),
    )
    return config.replace(
        access_policy=str(rng.choice(["probabilistic", "threshold"])),
        single_observation_fusion=bool(rng.integers(0, 2)),
        belief_tracking=bool(rng.integers(0, 2)),
        realized_throughput=bool(rng.integers(0, 2)),
    )


@pytest.fixture
def single_config():
    """Small single-FBS scenario config (fast to simulate)."""
    return single_fbs_scenario(n_gops=2, seed=123)


@pytest.fixture
def interfering_config():
    """Small interfering scenario config (fast to simulate)."""
    return interfering_fbs_scenario(n_gops=1, n_channels=4, seed=123)
