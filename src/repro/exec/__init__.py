"""Parallel execution subsystem: plan/execute split for Monte-Carlo work.

A figure sweep is an embarrassingly parallel grid of independent
``(scheme, sweep point, replication)`` cells whose seeds are all derived
from one root seed.  This package separates *planning* -- flattening a
sweep (or a single Monte-Carlo campaign) into a deterministic list of
picklable :class:`~repro.exec.plan.Cell` work items -- from *execution*,
a swappable :class:`~repro.exec.executor.Executor` strategy
(:class:`~repro.exec.executor.SerialExecutor` in-process,
:class:`~repro.exec.executor.ParallelExecutor` across a process pool).

Because every cell's randomness is derived from ``(root seed, run
index)`` alone and results are assembled by cell key rather than
completion order, parallel execution is bit-identical to serial
execution -- the paired comparisons of the paper's figures survive
unchanged at any worker count.
"""

from repro.exec.executor import (
    CellOutcome,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.exec.plan import Cell, SweepPlan, ensure_picklable, plan_campaign, plan_sweep
from repro.exec.progress import CellTiming, ProgressTracker, TimingReport

__all__ = [
    "Cell",
    "CellOutcome",
    "CellTiming",
    "Executor",
    "ParallelExecutor",
    "ProgressTracker",
    "SerialExecutor",
    "SweepPlan",
    "TimingReport",
    "ensure_picklable",
    "make_executor",
    "plan_campaign",
    "plan_sweep",
]
