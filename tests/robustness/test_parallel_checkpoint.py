"""Checkpoint/resume under parallel execution.

The contract being verified: a sweep interrupted mid-flight (with
fault-injected worker failures in the mix) can be resumed with a
*different* worker count and still produce exactly the result an
uninterrupted serial run would have -- the checkpoint is single-writer,
executor-agnostic, and keyed by cell, never by completion order.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec.executor import SerialExecutor
from repro.exec.supervisor import EXIT_INTERRUPTED
from repro.experiments.results_io import sweep_to_dict
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.runner import sweep
from repro.testing.faults import FaultPlan
from repro.utils.errors import ConfigurationError


class InterruptedSweep(RuntimeError):
    """Test-only stand-in for a crash / operator Ctrl-C."""


class InterruptingExecutor(SerialExecutor):
    """Serial executor that dies after a fixed number of cells."""

    def __init__(self, stop_after: int) -> None:
        self.stop_after = stop_after

    def run(self, cells):
        for done, outcome in enumerate(super().run(cells)):
            if done >= self.stop_after:
                raise InterruptedSweep(f"injected crash after {done} cells")
            yield outcome


@pytest.fixture
def faulty_config(single_config):
    """Small scenario where replication 1 always fails (after retry)."""
    plan = FaultPlan(nan_fading_slots={0}, poison_runs={1})
    return single_config.replace(fault_plan=plan, n_gops=1)


SWEEP_ARGS = ("n_channels", [4, 6], ["heuristic1", "heuristic2"])


def run(config, **kwargs):
    return sweep(config, *SWEEP_ARGS, n_runs=3, **kwargs)


class TestInterruptedParallelResume:
    def test_resume_with_different_jobs_matches_serial(self, faulty_config,
                                                       tmp_path):
        reference = run(faulty_config)  # uninterrupted, serial, no checkpoint

        path = tmp_path / "sweep.ckpt"
        with pytest.raises(InterruptedSweep):
            run(faulty_config, checkpoint_path=path,
                executor=InterruptingExecutor(stop_after=5))

        # The interruption left a partial, loadable checkpoint behind.
        partial = SweepCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=3, seed=faulty_config.seed)
        assert 0 < len(partial) < 12

        resumed = run(faulty_config, checkpoint_path=path, jobs=2)
        assert json.dumps(sweep_to_dict(resumed), sort_keys=True) == \
            json.dumps(sweep_to_dict(reference), sort_keys=True)

    def test_parallel_checkpoint_resumes_serially_too(self, faulty_config,
                                                      tmp_path):
        """jobs=2 writes the checkpoint, jobs=1 finishes from it."""
        reference = run(faulty_config)

        path = tmp_path / "sweep.ckpt"
        with pytest.raises(InterruptedSweep):
            run(faulty_config, checkpoint_path=path,
                executor=InterruptingExecutor(stop_after=7))
        resumed = run(faulty_config, checkpoint_path=path, jobs=1)
        assert json.dumps(sweep_to_dict(resumed), sort_keys=True) == \
            json.dumps(sweep_to_dict(reference), sort_keys=True)

    def test_failed_runs_are_checkpointed_not_recomputed(self, faulty_config,
                                                         tmp_path):
        path = tmp_path / "sweep.ckpt"
        result = run(faulty_config, checkpoint_path=path, jobs=2)
        assert result.n_failed == 4  # run 1 of each (scheme, point)

        # Resuming a complete checkpoint executes nothing.
        class ExplodingExecutor(SerialExecutor):
            def run(self, cells):
                assert list(cells) == []
                return iter(())

        resumed = run(faulty_config, checkpoint_path=path,
                      executor=ExplodingExecutor())
        assert json.dumps(sweep_to_dict(resumed), sort_keys=True) == \
            json.dumps(sweep_to_dict(result), sort_keys=True)

    def test_parallel_sweep_with_unpicklable_plan_fails_clearly(
            self, single_config):
        poisoned = single_config.replace(fault_plan=lambda slot: False)
        with pytest.raises(ConfigurationError, match="--jobs 1"):
            run(poisoned, jobs=2)


_SIGINT_DRIVER = """\
import sys

from repro.exec.executor import ParallelExecutor
from repro.exec.supervisor import EXIT_INTERRUPTED, ShutdownCoordinator
from repro.experiments.scenarios import single_fbs_scenario
from repro.sim.runner import sweep
from repro.testing.faults import FaultPlan
from repro.utils.errors import SweepInterrupted

# Slow every slot so the sweep is reliably mid-flight when the parent's
# SIGINT lands.  The fault only sleeps: results are identical to the
# fault-free run's, and the fault plan is not part of the checkpoint
# fingerprint, so the parent resumes fault-free.  chunk_size=1 keeps
# most cells out of the pool's prefetch queue (a chunk already handed
# to a worker pipeline cannot be cancelled, only drained).
config = single_fbs_scenario(n_gops=1, seed=123).replace(
    fault_plan=FaultPlan(slow_slots=frozenset(range(200)),
                         slow_seconds=0.1))
ShutdownCoordinator().install()
try:
    sweep(config, "n_channels", [4, 6], ["heuristic1", "heuristic2"],
          n_runs=3, checkpoint_path=sys.argv[1],
          executor=ParallelExecutor(2, chunk_size=1))
except SweepInterrupted:
    sys.exit(EXIT_INTERRUPTED)
sys.exit(0)
"""


class TestRealSigintMidSweep:
    """A genuine SIGINT, not a simulated one: the subprocess drains,
    exits with the documented code, and the parent resumes its
    checkpoint at a different --jobs to byte-identical results."""

    def test_sigint_drains_and_resume_is_byte_identical(self, single_config,
                                                        tmp_path):
        fault_free = single_config.replace(n_gops=1)
        reference = run(fault_free)

        script = tmp_path / "driver.py"
        script.write_text(_SIGINT_DRIVER)
        ckpt = tmp_path / "sweep.ckpt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen([sys.executable, str(script), str(ckpt)],
                                env=env)
        try:
            # Wait until at least two cells are checkpointed (header +
            # 2 lines) before interrupting, so the resume genuinely
            # mixes checkpointed and recomputed cells.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if ckpt.exists() and \
                        len(ckpt.read_bytes().splitlines()) >= 3:
                    break
                if proc.poll() is not None:
                    pytest.fail(f"driver exited early with {proc.returncode}")
                time.sleep(0.05)
            else:
                pytest.fail("driver never checkpointed a cell")
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert returncode == EXIT_INTERRUPTED

        partial = SweepCheckpoint(
            ckpt, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=3, seed=fault_free.seed)
        assert 0 < len(partial) < 12

        resumed = run(fault_free, checkpoint_path=ckpt, jobs=1)
        assert json.dumps(sweep_to_dict(resumed), sort_keys=True) == \
            json.dumps(sweep_to_dict(reference), sort_keys=True)
