"""Smoke checks on the example scripts.

Full example runs take seconds-to-minutes, so the unit suite only
verifies that every example compiles, has a ``main`` entry point, a
usage docstring, and imports cleanly; the repository's verification run
executes them for real.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert {"quickstart.py", "scheme_comparison.py",
            "interfering_femtocells.py", "sensing_tradeoff.py",
            "ablation_study.py", "figure_pipeline.py"} <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_structure(path):
    tree = ast.parse(path.read_text())
    # Usage docstring.
    docstring = ast.get_docstring(tree)
    assert docstring and "Run with" in docstring
    # A main() function and the __main__ guard.
    function_names = {node.name for node in ast.walk(tree)
                      if isinstance(node, ast.FunctionDef)}
    assert "main" in function_names
    assert "__main__" in path.read_text()


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(module.main)
