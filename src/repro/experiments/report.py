"""Plain-text rendering of experiment results.

The benchmark harness prints these tables so each run of
``pytest benchmarks/`` regenerates the same rows/series the paper's
figures report, without needing a plotting stack.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.fig3 import Fig3Row
from repro.sim.runner import SweepResult


def bound_reference_scheme(schemes: Sequence[str]) -> str:
    """The scheme whose eq. (23) bound should be reported.

    Only the proposed scheme runs the greedy allocation that produces a
    bound, so prefer it regardless of the (possibly alphabetised) order
    the schemes are stored in.
    """
    if not schemes:
        raise ValueError("schemes must be non-empty")
    for scheme in schemes:
        if scheme.startswith("proposed"):
            return scheme
    return schemes[0]


def format_fig3(rows: Sequence[Fig3Row]) -> str:
    """Render Fig. 3 as a per-user table."""
    if not rows:
        raise ValueError("rows must be non-empty")
    user_ids = sorted(rows[0].per_user_psnr)
    header = ["scheme".ljust(16)] + [f"user {u}".rjust(14) for u in user_ids]
    header.append("fairness".rjust(10))
    lines = ["  ".join(header)]
    for row in rows:
        cells = [row.scheme.ljust(16)]
        for user_id in user_ids:
            ci = row.per_user_psnr[user_id]
            cells.append(f"{ci.mean:6.2f} +/-{ci.half_width:4.2f}".rjust(14))
        cells.append(f"{row.fairness.mean:10.3f}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_sweep(result: SweepResult, *, upper_bound: bool = False,
                 value_format: str = "{}") -> str:
    """Render a parameter sweep as one row per sweep point.

    Parameters
    ----------
    result:
        The sweep to render.
    upper_bound:
        Include the eq. (23) upper-bound column (interfering scenarios).
    value_format:
        ``str.format`` pattern for the swept values.
    """
    schemes = list(result.summaries)
    header = [result.parameter.ljust(14)]
    if upper_bound:
        header.append("upper bound".rjust(14))
    header += [scheme.rjust(16) for scheme in schemes]
    lines = ["  ".join(header)]
    reference = bound_reference_scheme(schemes)
    for index, value in enumerate(result.values):
        cells = [value_format.format(value).ljust(14)]
        if upper_bound:
            ub = result.summaries[reference][index].upper_bound_psnr
            cells.append(f"{ub.mean:6.2f} +/-{ub.half_width:4.2f}".rjust(14))
        for scheme in schemes:
            ci = result.summaries[scheme][index].mean_psnr
            cells.append(f"{ci.mean:6.2f} +/-{ci.half_width:4.2f}".rjust(16))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_convergence(trace, stations: List[int], *, samples: int = 12) -> str:
    """Render a dual-variable trace (Fig. 4a) as sampled rows."""
    n_rows = trace.shape[0]
    if n_rows == 0:
        raise ValueError("trace must be non-empty")
    step = max(1, n_rows // samples)
    header = ["iter".rjust(6)] + [
        ("lambda_0" if s == 0 else f"lambda_{s}").rjust(12) for s in stations]
    lines = ["  ".join(header)]
    for index in list(range(0, n_rows, step)) + [n_rows - 1]:
        cells = [f"{index:6d}"] + [f"{value:12.6f}" for value in trace[index]]
        lines.append("  ".join(cells))
    return "\n".join(lines)
