"""Argument-validation helpers.

Every public constructor in the library validates its inputs eagerly and
raises :class:`~repro.utils.errors.ConfigurationError` with a message that
names the offending parameter -- failures at construction time are much
easier to debug than NaNs surfacing deep inside a simulation.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.utils.errors import ConfigurationError


def check_probability(value: float, name: str, *, allow_zero: bool = True,
                      allow_one: bool = True) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``.

    Parameters
    ----------
    value:
        The candidate probability.
    name:
        Parameter name used in the error message.
    allow_zero, allow_one:
        Whether the closed endpoints are acceptable.

    Returns
    -------
    float
        ``value`` coerced to ``float``.
    """
    value = _check_finite_number(value, name)
    low_ok = value > 0.0 or (allow_zero and value == 0.0)
    high_ok = value < 1.0 or (allow_one and value == 1.0)
    if not (low_ok and high_ok):
        lo = "[0" if allow_zero else "(0"
        hi = "1]" if allow_one else "1)"
        raise ConfigurationError(f"{name} must be in {lo}, {hi}, got {value}")
    return value


def check_probability_array(values, name: str) -> np.ndarray:
    """Validate a 1-D array of probabilities; returns a float ndarray."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} must be finite, got {arr!r}")
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ConfigurationError(f"{name} entries must be in [0, 1], got {arr!r}")
    return arr


def check_positive(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number."""
    value = _check_finite_number(value, name)
    if allow_zero:
        if value < 0.0:
            raise ConfigurationError(f"{name} must be >= 0, got {value}")
    elif value <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float, *,
                   inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    value = _check_finite_number(value, name)
    if inclusive:
        if not (low <= value <= high):
            raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    elif not (low < value < high):
        raise ConfigurationError(f"{name} must be in ({low}, {high}), got {value}")
    return value


def check_index(value: int, name: str, size: Optional[int] = None) -> int:
    """Validate a non-negative integer index, optionally bounded by ``size``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    if size is not None and value >= size:
        raise ConfigurationError(f"{name} must be < {size}, got {value}")
    return int(value)


def _check_finite_number(value, name: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    return value
