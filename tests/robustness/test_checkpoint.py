"""Fault-injection tests of sweep checkpoint/resume.

Acceptance path (c): killing a sweep mid-way and rerunning resumes from
the checkpoint without recomputing completed cells.
"""

import json

import numpy as np
import pytest

from repro.sim import MonteCarloRunner, SweepCheckpoint, sweep
from repro.sim.checkpoint import run_metrics_from_dict, run_metrics_to_dict
from repro.sim.metrics import FailedRun
from repro.testing.faults import FaultPlan, corrupt_json_file
from repro.utils.errors import CheckpointError


SWEEP_ARGS = dict(parameter="n_channels", values=[4, 6],
                  schemes=["heuristic1", "heuristic2"], n_runs=2)


def run_sweep(config, path=None, **overrides):
    kwargs = dict(SWEEP_ARGS, **overrides)
    return sweep(config, kwargs["parameter"], kwargs["values"],
                 kwargs["schemes"], n_runs=kwargs["n_runs"],
                 checkpoint_path=path)


class TestRunMetricsSerialization:
    def test_round_trip(self, single_config):
        metrics = MonteCarloRunner(single_config, n_runs=1).run_all()[0]
        restored = run_metrics_from_dict(run_metrics_to_dict(metrics))
        assert restored.per_user_psnr == metrics.per_user_psnr
        assert restored.mean_psnr == metrics.mean_psnr
        assert restored.fairness == metrics.fairness
        assert restored.upper_bound_psnr == metrics.upper_bound_psnr
        assert list(restored.collision_rates) == list(metrics.collision_rates)
        assert restored.bound_gaps_per_gop == metrics.bound_gaps_per_gop

    def test_degradation_events_survive(self, single_config):
        plan = FaultPlan(nonconvergent_slots={1})
        metrics = MonteCarloRunner(
            single_config.replace(fault_plan=plan), n_runs=1).run_all()[0]
        restored = run_metrics_from_dict(run_metrics_to_dict(metrics))
        assert restored.degradation_events == metrics.degradation_events


class TestCheckpointResume:
    def test_fresh_checkpoint_writes_all_cells(self, single_config, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(single_config, path)
        # header + values x schemes x runs cells
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 2 * 2 * 2

    def test_resume_skips_completed_cells(self, single_config, tmp_path,
                                          monkeypatch):
        path = tmp_path / "ckpt.jsonl"
        first = run_sweep(single_config, path)

        # A resumed run must not construct a single engine.
        import repro.sim.runner as runner_module

        def explode(config, run_index):
            raise AssertionError("completed cell was recomputed")

        monkeypatch.setattr(runner_module, "execute_run", explode)
        resumed = run_sweep(single_config, path)
        for scheme in SWEEP_ARGS["schemes"]:
            assert resumed.series(scheme) == first.series(scheme)

    def test_interrupted_sweep_resumes_where_it_stopped(self, single_config,
                                                        tmp_path, monkeypatch):
        """Acceptance (c): kill the sweep mid-way, rerun, get identical results."""
        path = tmp_path / "ckpt.jsonl"
        reference = run_sweep(single_config)  # no checkpoint

        import repro.sim.runner as runner_module
        real_execute = runner_module.execute_run
        calls = {"n": 0}

        def killed_after_three(config, run_index):
            if calls["n"] >= 3:
                raise KeyboardInterrupt  # simulated operator kill
            calls["n"] += 1
            return real_execute(config, run_index)

        monkeypatch.setattr(runner_module, "execute_run", killed_after_three)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(single_config, path)
        completed_lines = len(path.read_text().splitlines())
        assert completed_lines == 1 + 3  # header + the three finished cells

        # Rerun without the kill: only the remaining cells are computed.
        monkeypatch.setattr(runner_module, "execute_run", real_execute)
        recomputed = {"n": 0}

        def counting(config, run_index):
            recomputed["n"] += 1
            return real_execute(config, run_index)

        monkeypatch.setattr(runner_module, "execute_run", counting)
        resumed = run_sweep(single_config, path)
        assert recomputed["n"] == 2 * 2 * 2 - 3
        for scheme in SWEEP_ARGS["schemes"]:
            assert resumed.series(scheme) == reference.series(scheme)

    def test_failed_cells_are_not_retried_across_resumes(self, single_config,
                                                         tmp_path, monkeypatch):
        plan = FaultPlan(nan_fading_slots={0}, poison_runs={1})
        config = single_config.replace(fault_plan=plan)
        path = tmp_path / "ckpt.jsonl"
        first = run_sweep(config, path, schemes=["heuristic1"])
        assert first.n_failed == 2  # one failed run per sweep point

        import repro.sim.runner as runner_module
        monkeypatch.setattr(
            runner_module, "execute_run",
            lambda config, run_index: pytest.fail("failed cell recomputed"))
        resumed = run_sweep(config, path, schemes=["heuristic1"])
        assert resumed.n_failed == 2


class TestCheckpointSafety:
    def test_mismatched_sweep_is_refused(self, single_config, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(single_config, path)
        with pytest.raises(CheckpointError):
            run_sweep(single_config, path, values=[4, 8])
        with pytest.raises(CheckpointError):
            run_sweep(single_config, path, n_runs=5)
        with pytest.raises(CheckpointError):
            run_sweep(single_config.with_seed(99), path)

    def test_non_checkpoint_file_is_refused(self, single_config, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "sweep"}) + "\n")
        with pytest.raises(CheckpointError):
            run_sweep(single_config, path)

    def test_truncated_final_line_is_dropped_and_repaired(self, single_config,
                                                          tmp_path):
        path = tmp_path / "ckpt.jsonl"
        first = run_sweep(single_config, path)
        corrupt_json_file(path, keep_fraction=0.9)
        resumed = run_sweep(single_config, path)
        assert resumed.series("heuristic2") == first.series("heuristic2")
        # The repaired file must be fully parseable line by line.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_mid_file_corruption_raises(self, single_config, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep(single_config, path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # damage a middle line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            run_sweep(single_config, path)

    def test_numpy_sweep_values_serialize(self, single_config, tmp_path):
        """Regression: ``np.linspace`` values / numpy seed crashed the header.

        ``json.dumps`` refuses ``np.float64``/``np.int64``, so a sweep over
        ``np.linspace(...)`` died with ``TypeError: Object of type int64 is
        not JSON serializable`` the moment the checkpoint was created.
        """
        path = tmp_path / "np.jsonl"
        ckpt = SweepCheckpoint(path, parameter="gamma",
                               values=np.linspace(0.1, 0.3, 2),
                               schemes=["heuristic1"], n_runs=1,
                               seed=np.int64(7))
        metrics = MonteCarloRunner(single_config, n_runs=1).run_all()[0]
        ckpt.record(SweepCheckpoint.cell_key("heuristic1", 0, 0), metrics)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_numpy_sweep_values_fingerprint_matches_builtins(self, tmp_path):
        """A numpy-valued sweep resumes under numpy *or* builtin values."""
        path = tmp_path / "np2.jsonl"
        SweepCheckpoint(path, parameter="gamma",
                        values=np.linspace(0.1, 0.3, 2),
                        schemes=["heuristic1"], n_runs=1, seed=np.int64(7))
        # Same sweep, numpy values again: accepted.
        SweepCheckpoint(path, parameter="gamma",
                        values=np.linspace(0.1, 0.3, 2),
                        schemes=["heuristic1"], n_runs=1, seed=np.int64(7))
        # Same sweep expressed with builtins: also accepted.
        SweepCheckpoint(path, parameter="gamma", values=[0.1, 0.3],
                        schemes=["heuristic1"], n_runs=1, seed=7)
        # A genuinely different sweep is still refused.
        with pytest.raises(CheckpointError):
            SweepCheckpoint(path, parameter="gamma",
                            values=np.linspace(0.1, 0.5, 2),
                            schemes=["heuristic1"], n_runs=1, seed=7)

    def test_sweep_with_numpy_values_checkpoints_end_to_end(
            self, single_config, tmp_path):
        path = tmp_path / "np3.jsonl"
        first = run_sweep(single_config, path, parameter="gamma",
                          values=np.linspace(0.1, 0.3, 2),
                          schemes=["heuristic1"], n_runs=1)
        resumed = run_sweep(single_config, path, parameter="gamma",
                            values=np.linspace(0.1, 0.3, 2),
                            schemes=["heuristic1"], n_runs=1)
        assert resumed.series("heuristic1") == first.series("heuristic1")

    def test_cell_api_round_trip(self, single_config, tmp_path):
        path = tmp_path / "cells.jsonl"
        ckpt = SweepCheckpoint(path, parameter="p", values=[1],
                               schemes=["heuristic1"], n_runs=1, seed=1)
        key = SweepCheckpoint.cell_key("heuristic1", 0, 0)
        assert key not in ckpt
        failure = FailedRun(run_index=0, error_type="NumericalError",
                            error="nan", attempts=2, seeds=(1, 2))
        ckpt.record(key, failure)
        reloaded = SweepCheckpoint(path, parameter="p", values=[1],
                                   schemes=["heuristic1"], n_runs=1, seed=1)
        assert reloaded.get(key) == failure
