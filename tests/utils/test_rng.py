"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    batched_exponential,
    batched_uniform,
    derive_seed,
    spawn_streams,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(9)
        a = as_generator(seq)
        assert isinstance(a, np.random.Generator)


class TestSpawnStreams:
    def test_streams_are_deterministic(self):
        a = spawn_streams(7, ["x", "y"])
        b = spawn_streams(7, ["x", "y"])
        assert a["x"].random() == b["x"].random()
        assert a["y"].random() == b["y"].random()

    def test_streams_are_independent(self):
        streams = spawn_streams(7, ["x", "y"])
        x = streams["x"].random(1000)
        y = streams["y"].random(1000)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            spawn_streams(1, ["a", "a"])

    def test_order_matters_not_name_hash(self):
        a = spawn_streams(3, ["first", "second"])
        b = spawn_streams(3, ["second", "first"])
        # Stream identity is positional: the first-spawned child matches.
        assert a["first"].random() == b["second"].random()

    def test_generator_root_accepted(self):
        streams = spawn_streams(np.random.default_rng(5), ["a"])
        assert isinstance(streams["a"], np.random.Generator)


class TestDeriveSeed:
    def test_none_passthrough(self):
        assert derive_seed(None, 3) is None

    def test_deterministic(self):
        assert derive_seed(10, 2) == derive_seed(10, 2)

    def test_distinct_across_runs(self):
        seeds = {derive_seed(10, r) for r in range(50)}
        assert len(seeds) == 50

    def test_distinct_across_adjacent_roots(self):
        # SeedSequence composition avoids the classic seed+index collision:
        # root 10 run 1 must differ from root 11 run 0.
        assert derive_seed(10, 1) != derive_seed(11, 0)

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(1, -1)


class TestBatchedDraws:
    """The stream-consumption contract the batched backend stands on.

    Every bit-exactness guarantee of the batched PHY/sensing engine path
    reduces to these two facts: an array draw produces the same values
    as the equivalent sequence of scalar draws AND leaves the generator
    in the same state, so scalar and batched backends can be swapped
    mid-simulation (or mid-checkpoint) without shifting any later draw.
    """

    def test_uniform_matches_scalar_sequence(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        batch = batched_uniform(batched_rng, 257)
        scalars = np.array([scalar_rng.random() for _ in range(257)])
        assert np.array_equal(batch, scalars)

    def test_uniform_leaves_identical_state(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        batched_uniform(batched_rng, 100)
        for _ in range(100):
            scalar_rng.random()
        assert batched_rng.bit_generator.state == scalar_rng.bit_generator.state
        assert batched_rng.random() == scalar_rng.random()

    def test_exponential_matches_scalar_sequence(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        scales = np.abs(np.random.default_rng(9).normal(2.0, 1.5, 301)) + 0.05
        batch = batched_exponential(batched_rng, scales)
        scalars = np.array([scalar_rng.exponential(s) for s in scales])
        assert np.array_equal(batch, scalars)

    def test_exponential_leaves_identical_state(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        scales = np.linspace(0.1, 5.0, 64)
        batched_exponential(batched_rng, scales)
        for s in scales:
            scalar_rng.exponential(s)
        assert batched_rng.bit_generator.state == scalar_rng.bit_generator.state

    def test_empty_batches(self, rng_pair):
        batched_rng, scalar_rng = rng_pair
        assert batched_uniform(batched_rng, 0).size == 0
        assert batched_exponential(batched_rng, []).size == 0
        # Zero-size draws must not consume the stream.
        assert batched_rng.bit_generator.state == scalar_rng.bit_generator.state

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            batched_uniform(as_generator(0), -1)
