"""Bayesian fusion of sensing results (eqs. (2)-(4)).

Given ``L`` independent sensing observations of channel ``m`` and the
channel's prior busy probability (its utilisation ``eta_m``), the posterior
probability that the channel is available (idle) is

    P_A(Theta_1..Theta_L)
      = [ 1 + eta/(1-eta) * prod_i LR_i ]^{-1}          (eq. 2)

where ``LR_i`` is the likelihood ratio of observation ``i``.  The paper
also gives an iterative decomposition (eqs. (3)-(4)) that folds one
observation at a time -- convenient when results arrive sequentially over
the common channel.  Both forms are implemented and tested for exact
agreement.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.sensing.detector import SensingResult
from repro.spectrum.markov import BUSY
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_probability


def posterior_idle_probability(eta: float, results: Sequence[SensingResult]) -> float:
    """Closed-form posterior ``P_A`` of eq. (2).

    Parameters
    ----------
    eta:
        Prior busy probability of the channel (its utilisation, eq. 1).
    results:
        Sensing observations of the *same* channel.  An empty sequence
        returns the prior idle probability ``1 - eta``.

    Returns
    -------
    float
        ``Pr{H0 | Theta_1..Theta_L}`` in ``[0, 1]``.
    """
    eta = check_probability(eta, "eta")
    _check_single_channel(results)
    if eta == 0.0:
        return 1.0
    if eta == 1.0:
        return 0.0
    # Work in log space: with many observations the likelihood-ratio
    # product under/overflows double precision long before L is large.
    log_ratio = math.log(eta / (1.0 - eta))
    for result in results:
        lr = result.likelihood_ratio
        if lr == 0.0:
            return 1.0
        if math.isinf(lr):
            return 0.0
        log_ratio += math.log(lr)
    # P_A = 1 / (1 + exp(log_ratio)) = sigmoid(-log_ratio)
    if log_ratio > 700.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(log_ratio))


def fuse_posterior(eta: float, results: Sequence[SensingResult]) -> float:
    """Alias for :func:`posterior_idle_probability` (the paper's ``P_A^m``)."""
    return posterior_idle_probability(eta, results)


def fuse_iterative(eta: float, results: Iterable[SensingResult]) -> float:
    """Posterior computed by the paper's iterative updates (eqs. (3)-(4)).

    Folds observations one at a time: eq. (3) initialises with the first
    observation, eq. (4) updates with each subsequent one.  Numerically
    equivalent to :func:`posterior_idle_probability`; provided because the
    paper's protocol shares results incrementally over the common channel.
    """
    eta = check_probability(eta, "eta")
    results = list(results)
    _check_single_channel(results)
    if not results:
        return 1.0 - eta
    if eta == 0.0:
        return 1.0
    if eta == 1.0:
        return 0.0
    # eq. (3): first observation, prior odds eta/(1-eta).
    posterior = _fold(eta / (1.0 - eta), results[0])
    # eq. (4): each further observation uses the previous posterior's odds
    # (1/P_A - 1) as its prior odds.
    for result in results[1:]:
        if posterior == 0.0:
            return 0.0
        if posterior == 1.0:
            return 1.0
        prior_odds = 1.0 / posterior - 1.0
        posterior = _fold(prior_odds, result)
    return posterior


def _fold(prior_busy_odds: float, result: SensingResult) -> float:
    """One Bayes update: posterior idle prob from prior busy odds + result."""
    lr = result.likelihood_ratio
    if math.isinf(lr):
        return 0.0 if prior_busy_odds > 0.0 else 1.0
    odds = prior_busy_odds * lr
    return 1.0 / (1.0 + odds)


def likelihood_ratio_pair(false_alarm: float, miss_detection: float) -> tuple:
    """The two possible likelihood ratios under one ``(epsilon, delta)``.

    Every observation from a sensor with this error profile has ratio
    ``(1 - delta) / epsilon`` when it reports busy and
    ``delta / (1 - epsilon)`` when it reports idle -- computed with the
    exact arithmetic (including the 0/0 -> 1 convention) of
    :attr:`SensingResult.likelihood_ratio`, so table lookups against
    this pair reproduce the scalar per-object property bit for bit.

    Returns
    -------
    tuple
        ``(lr_busy, lr_idle)``.
    """
    false_alarm = check_probability(false_alarm, "false_alarm")
    miss_detection = check_probability(miss_detection, "miss_detection")

    def ratio(numerator: float, denominator: float) -> float:
        if denominator == 0.0:
            return math.inf if numerator > 0.0 else 1.0
        return numerator / denominator

    return (ratio(1.0 - miss_detection, false_alarm),
            ratio(miss_detection, 1.0 - false_alarm))


def fuse_posteriors_batched(busy_priors, observations, counts,
                            false_alarm: float,
                            miss_detection: float) -> np.ndarray:
    """Fuse every channel's sensing observations in one vectorized pass.

    Bit-exact batched counterpart of calling
    :func:`posterior_idle_probability` per channel with the same
    observations in the same order.  Exactness is engineered, not
    incidental:

    * the per-observation log likelihood ratios take only two values
      under a shared ``(epsilon, delta)`` profile; both are computed
      with ``math.log`` (numpy's SIMD ``np.log`` differs from libm by
      1 ulp on a few percent of inputs) and selected into the matrix;
    * the log-odds accumulation walks the observation axis column by
      column, reproducing the scalar path's strictly sequential
      left-to-right additions (padding columns add ``0.0``, which is
      exact on finite floats);
    * the final sigmoid runs through ``math.exp`` per channel -- an
      ``O(M)`` loop, cheap next to the ``O(M L)`` work above.

    Parameters
    ----------
    busy_priors:
        Per-channel prior busy probabilities (``eta_m``, length ``M``).
    observations:
        ``(M, L)`` int array; row ``m`` holds channel ``m``'s
        observations in fusion order, padded arbitrarily past
        ``counts[m]``.
    counts:
        Number of valid observations per channel (length ``M``).
    false_alarm, miss_detection:
        The shared sensor error profile ``(epsilon, delta)``.

    Returns
    -------
    numpy.ndarray
        Idle posteriors ``P_A^m`` per channel, each identical to the
        scalar fusion of the same observation sequence.
    """
    priors = np.asarray(busy_priors, dtype=float)
    observations = np.atleast_2d(np.asarray(observations))
    counts = np.asarray(counts, dtype=np.int64)
    n_channels = priors.size
    if observations.shape[0] != n_channels or counts.shape != (n_channels,):
        raise ConfigurationError(
            f"shape mismatch: {n_channels} priors, observation matrix "
            f"{observations.shape}, counts {counts.shape}")
    if np.any(priors < 0.0) or np.any(priors > 1.0):
        raise ConfigurationError("busy_priors entries must be probabilities")
    if np.any(counts < 0) or np.any(counts > observations.shape[1]):
        raise ConfigurationError(
            f"counts must lie in [0, {observations.shape[1]}], got {counts}")

    lr_busy, lr_idle = likelihood_ratio_pair(false_alarm, miss_detection)
    mask = np.arange(observations.shape[1]) < counts[:, None]
    is_busy_obs = observations == BUSY

    special_lr = {lr for lr in (lr_busy, lr_idle)
                  if lr == 0.0 or math.isinf(lr)}
    first_special = np.full(n_channels, -1, dtype=np.int64)
    special_value = np.zeros(n_channels)
    if special_lr and observations.shape[1]:
        # Degenerate profiles (epsilon or delta at 0/1): the scalar path
        # short-circuits at the first zero/infinite likelihood ratio, so
        # locate that observation per channel and honour its verdict.
        is_special = mask & np.where(is_busy_obs, lr_busy in special_lr,
                                     lr_idle in special_lr)
        has_special = is_special.any(axis=1)
        idx = np.argmax(is_special, axis=1)
        first_special = np.where(has_special, idx, -1)
        first_obs_busy = is_busy_obs[np.arange(n_channels), np.maximum(idx, 0)]
        lr_first = np.where(first_obs_busy, lr_busy, lr_idle)
        special_value = np.where(lr_first == 0.0, 1.0, 0.0)

    log_busy = math.log(lr_busy) if lr_busy not in special_lr else 0.0
    log_idle = math.log(lr_idle) if lr_idle not in special_lr else 0.0
    log_lr = np.where(mask, np.where(is_busy_obs, log_busy, log_idle), 0.0)

    posteriors = np.empty(n_channels)
    log_ratio = np.zeros(n_channels)
    regular = np.ones(n_channels, dtype=bool)
    for m in range(n_channels):
        eta = float(priors[m])
        if eta == 0.0 or eta == 1.0 or first_special[m] >= 0:
            regular[m] = False
        else:
            log_ratio[m] = math.log(eta / (1.0 - eta))
    # Sequential left-to-right accumulation, vectorized across channels.
    for column in range(observations.shape[1]):
        log_ratio += log_lr[:, column]
    for m in range(n_channels):
        eta = float(priors[m])
        if eta == 0.0:
            posteriors[m] = 1.0
        elif eta == 1.0:
            posteriors[m] = 0.0
        elif first_special[m] >= 0:
            posteriors[m] = special_value[m]
        elif log_ratio[m] > 700.0:
            posteriors[m] = 0.0
        else:
            posteriors[m] = 1.0 / (1.0 + math.exp(log_ratio[m]))
    return posteriors


def _check_single_channel(results: Sequence[SensingResult]) -> None:
    channels = {result.channel for result in results}
    if len(channels) > 1:
        raise ConfigurationError(
            f"fusion requires observations of a single channel, got channels {sorted(channels)}")
