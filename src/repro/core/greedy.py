"""Greedy FBS-channel allocation for interfering FBSs (Table III).

When FBS coverage areas overlap, adjacent FBSs in the interference graph
cannot reuse the same licensed channel (Lemma 4), so channels must be
*allocated* before the convex time-share problem can be solved.  The
paper's greedy algorithm repeatedly picks the FBS-channel pair with the
largest marginal objective gain:

    {i', m'} = argmax_{(i,m) in C} [ Q(c + e_{i,m}) - Q(c) ]

then removes the chosen pair and its conflicting neighbour pairs
``R(i') x {m'}`` from the candidate set.  ``Q(c)`` is the optimal value of
problem (17) given the channel allocation ``c`` (computed by the Table II
algorithm; we use the fast exact-inner solver by default).

Implementation note: ``Q`` is nondecreasing in every ``G_i`` (raising
``G_i`` enlarges the FBS-branch utilities pointwise over an unchanged
feasible set), and ``G_i`` enters only through the sum of allocated
posteriors.  Hence, among candidate pairs sharing the same FBS, the best
is always the remaining channel with the largest posterior ``P^A_m`` -- so
each greedy step needs only ``N`` evaluations of ``Q`` instead of
``N * M``, preserving the exact argmax of Table III at a fraction of the
cost.  Set ``exhaustive_scan=True`` to force the literal full scan (used
by the test suite to confirm equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.batch import SolveRequest, drive, fast_solve_iter
from repro.core.bounds import GreedyStep, GreedyTrace
from repro.core.dual import fast_solve
from repro.core.problem import Allocation, SlotProblem
from repro.obs.metrics import global_registry, metrics_enabled
from repro.utils.errors import ConfigurationError

#: Signature of the inner solver used to evaluate Q(c).
SolverFn = Callable[[SlotProblem], Allocation]


@dataclass
class GreedyResult:
    """Outcome of the greedy channel allocation for one slot.

    Attributes
    ----------
    channel_allocation:
        ``{fbs_id: set of channel indices}`` -- the chosen ``c`` matrix.
    expected_channels:
        ``{fbs_id: G_i}`` implied by the allocation and the posteriors.
    allocation:
        The time-share solution of problem (17) at the final ``c``, or
        ``None`` when the caller requested ``final_solve=False`` (e.g.
        the simulation engine, which recomputes the allocation through
        its fallback chain anyway).
    trace:
        Execution trace feeding the bounds of Section IV-C3.
    evaluations:
        Number of ``Q`` evaluations actually solved (complexity
        accounting; memo hits are excluded).
    cache_hits:
        ``Q`` evaluations answered from the memo instead of a solve.
    """

    channel_allocation: Dict[int, Set[int]]
    expected_channels: Dict[int, float]
    allocation: Optional[Allocation]
    trace: GreedyTrace
    evaluations: int = 0
    cache_hits: int = 0


class GreedyChannelAllocator:
    """Table III's greedy algorithm.

    Parameters
    ----------
    interference_graph:
        Graph over FBS ids (Definition 1).
    solver:
        Inner solver evaluating ``Q(c)``; ``None`` (default) uses a
        warm-started, iteration-capped dual solve for the evaluations and
        the full :func:`~repro.core.dual.fast_solve` for the final
        allocation.
    eval_iterations:
        Subgradient budget per ``Q`` evaluation on the default path.
    exhaustive_scan:
        Evaluate every candidate pair each step (the literal Table III
        loop) instead of only each FBS's best remaining channel.
    memoize:
        Cache ``Q`` evaluations within a slot.  ``Q`` depends on the
        allocation matrix ``c`` only through the per-FBS sums ``G_i =
        sum_m c_{i,m} P^A_m`` (problem (17) never sees individual
        channels), so candidates with equal ``G`` vectors are literally
        the same problem.  On the default (warm-started) evaluation path
        the memo key additionally includes the current warm multipliers,
        so a hit is by construction the same solver input -- memoized
        runs are bit-identical to unmemoized ones.
    warm_start:
        Persist the evaluation warm-start multipliers *across*
        ``allocate`` calls (consecutive slots) instead of starting each
        slot cold.  Changes the dual iterate path, so results are no
        longer bit-identical to cold runs (they are equal-or-better in
        objective; see the solver benchmark).  Off by default.
    """

    def __init__(self, interference_graph: nx.Graph, *,
                 solver: Optional[SolverFn] = None,
                 eval_iterations: int = 150,
                 exhaustive_scan: bool = False,
                 memoize: bool = True,
                 warm_start: bool = False) -> None:
        self.graph = interference_graph
        self.solver = solver
        self.eval_iterations = int(eval_iterations)
        self.exhaustive_scan = bool(exhaustive_scan)
        self.memoize = bool(memoize)
        self.warm_start = bool(warm_start)
        self._persistent_warm: Dict[int, float] = {}

    def allocate(self, problem: SlotProblem, available_channels: Sequence[int],
                 posteriors: Dict[int, float], *,
                 final_solve: bool = True) -> GreedyResult:
        """Run the greedy allocation for one slot.

        Parameters
        ----------
        problem:
            The slot problem; its ``expected_channels`` are ignored (the
            greedy determines them).
        available_channels:
            The access set ``A(t)`` of licensed-channel indices.
        posteriors:
            ``{channel: P^A_m}`` fused idle posteriors for (at least) the
            available channels.
        final_solve:
            Solve the time-share problem at the final ``c`` (default).
            Pass ``False`` when only the channel allocation is needed;
            ``GreedyResult.allocation`` is then ``None``.

        Raises
        ------
        ConfigurationError
            If an available channel has no posterior, or an FBS with users
            is missing from the interference graph.
        """
        return drive(self.allocate_iter(problem, available_channels,
                                        posteriors, final_solve=final_solve))

    def allocate_iter(self, problem: SlotProblem,
                      available_channels: Sequence[int],
                      posteriors: Dict[int, float], *,
                      final_solve: bool = True):
        """Generator form of :meth:`allocate`.

        Yields one :class:`~repro.core.batch.SolveRequest` per inner
        ``Q(c)`` solve (and the final solve), returning the
        :class:`GreedyResult`.  The evaluations within one slot are
        inherently sequential -- each solve warm-starts from the
        previous one's multipliers, and the memo key includes that warm
        state -- so batching happens *across* engines driving this
        generator in lockstep, never across candidates.
        """
        fbs_ids = problem.fbs_ids
        missing_nodes = [i for i in fbs_ids if i not in self.graph]
        if missing_nodes:
            raise ConfigurationError(
                f"FBS ids {missing_nodes} are not vertices of the interference graph")
        missing_posteriors = [m for m in available_channels if m not in posteriors]
        if missing_posteriors:
            raise ConfigurationError(
                f"posteriors missing for available channels {missing_posteriors}")

        allocation_map: Dict[int, Set[int]] = {i: set() for i in fbs_ids}
        candidates: Set[Tuple[int, int]] = {
            (i, m) for i in fbs_ids for m in available_channels}
        evaluations = 0
        cache_hits = 0
        steps: List[GreedyStep] = []

        def g_of(alloc: Dict[int, Set[int]]) -> Dict[int, float]:
            return {i: sum(posteriors[m] for m in channels)
                    for i, channels in alloc.items()}

        # Q(c) memo (see class docstring): the key is the G vector the
        # allocation induces -- plus, on the warm-started default path,
        # the warm multipliers the solve would start from, which makes a
        # hit the exact same solver input as the original evaluation.
        memo: Dict[tuple, object] = {}

        if self.solver is not None:
            def q_of(alloc: Dict[int, Set[int]]) -> float:
                nonlocal evaluations, cache_hits
                g = g_of(alloc)
                key = tuple(g[i] for i in fbs_ids)
                if self.memoize:
                    hit = memo.get(key)
                    if hit is not None:
                        cache_hits += 1
                        return hit
                evaluations += 1
                objective = self.solver(
                    problem.with_expected_channels(g)).objective
                if self.memoize:
                    memo[key] = objective
                return objective
                yield  # unreachable: gives q_of the generator protocol
        else:
            # Default evaluation path: a capped subgradient run per Q(c),
            # warm-started from the previous evaluation's multipliers --
            # consecutive candidate allocations differ by one channel, so
            # the dual variables barely move between evaluations.
            warm = self._persistent_warm if self.warm_start else {}

            def q_of(alloc: Dict[int, Set[int]]) -> float:
                nonlocal evaluations, cache_hits
                g = g_of(alloc)
                if self.memoize:
                    key = (tuple(g[i] for i in fbs_ids),
                           tuple(sorted(warm.items())))
                    hit = memo.get(key)
                    if hit is not None:
                        cache_hits += 1
                        objective, multipliers = hit
                        # Replay the original evaluation's effect on the
                        # warm state so subsequent solves are unchanged.
                        warm.update(multipliers)
                        return objective
                solution = yield SolveRequest(
                    problem=problem.with_expected_channels(g),
                    max_iterations=self.eval_iterations,
                    initial_multipliers=dict(warm) or None)
                evaluations += 1
                if self.memoize:
                    memo[key] = (solution.allocation.objective,
                                 dict(solution.multipliers))
                warm.update(solution.multipliers)
                return solution.allocation.objective

        q_empty = yield from q_of(allocation_map)
        q_current = q_empty

        def q_with(pair: Tuple[int, int]):
            trial = {k: set(v) for k, v in allocation_map.items()}
            trial[pair[0]].add(pair[1])
            return (yield from q_of(trial))

        while candidates:
            scan = (candidates if self.exhaustive_scan
                    else _best_channel_per_fbs(candidates, posteriors))
            step_evals: Dict[Tuple[int, int], float] = {}
            best_pair = None
            best_q = None
            for pair in sorted(scan):
                q_trial = yield from q_with(pair)
                step_evals[pair] = q_trial
                if best_q is None or q_trial > best_q:
                    best_q = q_trial
                    best_pair = pair
            # Table III allocates until the candidate set is empty, even
            # when the marginal gain is zero: a zero-gain channel can
            # still enable a later gain (a user's MBS->FBS switch may need
            # several channels' worth of G_i before it pays off), so
            # stopping early would not be faithful -- and measurably hurts.
            # Tiny negative gains are inner-solver noise; clip to zero.
            gain = max(0.0, best_q - q_current)
            i_star, m_star = best_pair
            # Evaluated bound term: the pruned conflicting pairs are a
            # superset of omega_l (a pair of the optimal solution that
            # conflicts with e(l) but with no earlier selection is, by the
            # same token, still in the candidate set), so summing their
            # actual marginal gains instantiates Lemma 7 directly.  Each
            # term is additionally capped at Delta_l per Lemma 6.
            conflict_gain_sum = 0.0
            pruned = [(neighbor, m_star) for neighbor in self.graph.neighbors(i_star)
                      if (neighbor, m_star) in candidates]
            for pair in pruned:
                q_pair = step_evals.get(pair)
                if q_pair is None:
                    q_pair = yield from q_with(pair)
                conflict_gain_sum += min(max(0.0, q_pair - q_current), gain)
            allocation_map[i_star].add(m_star)
            q_current = max(q_current, best_q)
            steps.append(GreedyStep(
                fbs_id=i_star, channel=m_star, gain=gain,
                degree=int(self.graph.degree(i_star)),
                conflict_gain_sum=conflict_gain_sum))
            candidates.discard((i_star, m_star))
            for pair in pruned:
                candidates.discard(pair)

        expected = g_of(allocation_map)
        final_allocation = None
        if final_solve:
            if self.solver is not None:
                final_allocation = self.solver(
                    problem.with_expected_channels(expected))
            else:
                final_allocation = yield from fast_solve_iter(
                    problem.with_expected_channels(expected))
        trace = GreedyTrace(steps=tuple(steps), q_empty=q_empty, q_final=q_current)
        if metrics_enabled():
            registry = global_registry()
            registry.counter("repro_greedy_q_evaluations_total").inc(evaluations)
            registry.counter("repro_greedy_q_cache_hits_total").inc(cache_hits)
        return GreedyResult(
            channel_allocation=allocation_map,
            expected_channels=expected,
            allocation=final_allocation,
            trace=trace,
            evaluations=evaluations,
            cache_hits=cache_hits,
        )


def _best_channel_per_fbs(candidates: Set[Tuple[int, int]],
                          posteriors: Dict[int, float]) -> List[Tuple[int, int]]:
    """For each FBS, its remaining channel with the largest posterior.

    Exact reduction of the Table III argmax (see module docstring); ties
    are broken toward the lower channel index for determinism.
    """
    best: Dict[int, Tuple[int, int]] = {}
    for i, m in sorted(candidates):
        if i not in best or posteriors[m] > posteriors[best[i][1]]:
            best[i] = (i, m)
    return sorted(best.values())


def exhaustive_channel_optimum(problem: SlotProblem, available_channels: Sequence[int],
                               posteriors: Dict[int, float], graph: nx.Graph, *,
                               solver: Optional[SolverFn] = None,
                               max_pairs: int = 16) -> Tuple[Dict[int, Set[int]], float]:
    """Globally optimal channel allocation by exhaustive enumeration.

    Enumerates every conflict-free assignment of available channels to
    FBS subsets (each channel independently goes to any *independent set*
    of the interference graph).  Exponential; used in tests to verify the
    Theorem 2 / eq. (23) bounds.  ``Q(Omega)`` is returned alongside the
    argmax allocation.
    """
    solver = solver if solver is not None else fast_solve
    fbs_ids = problem.fbs_ids
    channels = list(available_channels)
    if len(fbs_ids) * len(channels) > max_pairs:
        raise ConfigurationError(
            f"exhaustive channel search limited to {max_pairs} FBS-channel pairs, "
            f"got {len(fbs_ids) * len(channels)}")
    independent_sets = _independent_sets(fbs_ids, graph)

    best_alloc: Dict[int, Set[int]] = {i: set() for i in fbs_ids}
    best_q = None

    def recurse(index: int, current: Dict[int, Set[int]]) -> None:
        nonlocal best_alloc, best_q
        if index == len(channels):
            expected = {i: sum(posteriors[m] for m in chans)
                        for i, chans in current.items()}
            q_value = solver(problem.with_expected_channels(expected)).objective
            if best_q is None or q_value > best_q:
                best_q = q_value
                best_alloc = {i: set(chans) for i, chans in current.items()}
            return
        channel = channels[index]
        for subset in independent_sets:
            for fbs_id in subset:
                current[fbs_id].add(channel)
            recurse(index + 1, current)
            for fbs_id in subset:
                current[fbs_id].discard(channel)

    recurse(0, {i: set() for i in fbs_ids})
    return best_alloc, best_q


def _independent_sets(fbs_ids: Sequence[int], graph: nx.Graph) -> List[Set[int]]:
    """All independent sets (including the empty set) over ``fbs_ids``."""
    sets: List[Set[int]] = [set()]
    for fbs_id in fbs_ids:
        new_sets = []
        for existing in sets:
            if all(not graph.has_edge(fbs_id, other) for other in existing):
                new_sets.append(existing | {fbs_id})
        sets.extend(new_sets)
    return sets
