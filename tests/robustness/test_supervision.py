"""The supervised execution runtime: watchdog timeouts and backoff.

Acceptance contract (ISSUE 6): a deterministic ``hang`` fault in one
cell of a ``--jobs 2`` sweep completes the sweep with that cell recorded
as ``error_type="CellTimedOut"`` (the pool never wedges); timed-out
cells are checkpointed, not retried forever; supervision is
telemetry-and-scheduling only, so a healthy supervised run is
byte-identical to a serial one; and timeout/backoff events surface in
the obs metrics registry and the trace-summary trailer.
"""

import json
import multiprocessing
import os

import pytest

from repro import obs
from repro.exec import executor as executor_module
from repro.exec.executor import SerialExecutor, make_executor
from repro.exec.supervisor import (
    MAX_DISPATCH_ATTEMPTS,
    SupervisedExecutor,
    backoff_delay,
)
from repro.experiments.results_io import sweep_to_dict
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.metrics import FailedRun
from repro.sim.runner import sweep
from repro.testing.faults import FaultPlan
from repro.utils.errors import ConfigurationError, SweepDeadlineExceeded

SWEEP_ARGS = ("n_channels", [4, 6], ["heuristic1", "heuristic2"])


def run(config, **kwargs):
    return sweep(config, *SWEEP_ARGS, n_runs=2, **kwargs)


def as_json(result) -> str:
    return json.dumps(sweep_to_dict(result), sort_keys=True)


@pytest.fixture
def fast_config(single_config):
    return single_config.replace(n_gops=1)


@pytest.fixture
def hanging_config(fast_config):
    """Replication 1 of every (scheme, point) hangs at its first slot."""
    plan = FaultPlan(hang_slots={0}, hang_seconds=60.0, poison_runs={1})
    return fast_config.replace(fault_plan=plan)


class TestBackoffDelay:
    def test_first_attempt_never_waits(self):
        assert backoff_delay(7, 0, 0) == 0.0
        assert backoff_delay(None, 3, 0) == 0.0

    def test_deterministic_for_same_inputs(self):
        assert backoff_delay(7, 2, 1) == backoff_delay(7, 2, 1)
        assert backoff_delay(None, 2, 1) == backoff_delay(None, 2, 1)

    def test_varies_with_seed_and_run(self):
        delays = {backoff_delay(seed, run, 1)
                  for seed in (1, 2, 3) for run in (0, 1)}
        assert len(delays) == 6  # jitter separates every (seed, run)

    def test_exponential_and_bounded(self):
        # Attempt n draws from [magnitude/2, magnitude) with
        # magnitude = min(cap, base * 2**(n-1)).
        for attempt, magnitude in ((1, 0.05), (2, 0.1), (3, 0.2)):
            delay = backoff_delay(7, 0, attempt)
            assert magnitude / 2 <= delay < magnitude
        assert backoff_delay(7, 0, 50) < 2.0  # capped, no overflow


class TestMakeExecutor:
    def test_timeouts_select_supervised_executor(self):
        ex = make_executor(2, cell_timeout=5.0)
        assert isinstance(ex, SupervisedExecutor)
        assert ex.jobs == 2 and ex.cell_timeout == 5.0
        ex = make_executor(None, deadline=30.0)
        assert isinstance(ex, SupervisedExecutor)
        assert ex.jobs == 1 and ex.deadline == 30.0

    def test_no_timeouts_keep_existing_strategies(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert not isinstance(make_executor(2), SupervisedExecutor)

    def test_rejects_bad_budgets(self):
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(1, cell_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(1, deadline=-1.0)
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(0)


class TestSupervisedByteIdentity:
    def test_healthy_supervised_run_matches_serial(self, fast_config):
        reference = run(fast_config)  # plain serial, unsupervised
        for jobs in (1, 2):
            supervised = run(fast_config, jobs=jobs, cell_timeout=120.0)
            assert as_json(supervised) == as_json(reference)


class TestCellTimeout:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_hung_cell_recorded_as_timed_out(self, hanging_config, tmp_path,
                                             jobs):
        path = tmp_path / "sweep.ckpt"
        result = run(hanging_config, checkpoint_path=path, jobs=jobs,
                     cell_timeout=2.0)
        # Run 1 of each of the 4 (scheme, point) cells hung and was
        # killed; the sweep still completed -- the pool never wedged.
        assert result.n_failed == 4

        ckpt = SweepCheckpoint(path, parameter=SWEEP_ARGS[0],
                               values=SWEEP_ARGS[1], schemes=SWEEP_ARGS[2],
                               n_runs=2, seed=hanging_config.seed)
        timed_out = [key for key in (ckpt.cell_key(s, p, 1)
                                     for s in SWEEP_ARGS[2] for p in (0, 1))
                     for cell in [ckpt.get(key)]
                     if isinstance(cell, FailedRun)
                     and cell.error_type == "CellTimedOut"]
        assert len(timed_out) == 4

    def test_timed_out_cells_resume_without_retry(self, hanging_config,
                                                  tmp_path):
        path = tmp_path / "sweep.ckpt"
        result = run(hanging_config, checkpoint_path=path, jobs=2,
                     cell_timeout=2.0)

        class ExplodingExecutor(SerialExecutor):
            def run(self, cells):
                assert list(cells) == []  # nothing left to execute
                return iter(())

        resumed = run(hanging_config, checkpoint_path=path,
                      executor=ExplodingExecutor())
        assert as_json(resumed) == as_json(result)

    def test_surviving_cells_match_unsupervised_run(self, hanging_config,
                                                    fast_config):
        # The hang only sleeps; killed cells aside, every surviving
        # replication must be byte-identical to the fault-free run's.
        supervised = run(hanging_config, jobs=2, cell_timeout=2.0)
        reference = run(fast_config)
        for scheme in SWEEP_ARGS[2]:
            for sup, ref in zip(supervised.summaries[scheme],
                                reference.summaries[scheme]):
                # Run 0 survived in both; the summary over survivors
                # differs only in n_failed accounting.
                assert sup.n_failed == 1
                assert ref.n_failed == 0


class TestSweepDeadline:
    def test_deadline_aborts_then_resume_is_byte_identical(self, fast_config,
                                                           tmp_path):
        slow = fast_config.replace(fault_plan=FaultPlan(
            slow_slots=frozenset(range(200)), slow_seconds=0.2))
        path = tmp_path / "sweep.ckpt"
        with pytest.raises(SweepDeadlineExceeded):
            run(slow, checkpoint_path=path, jobs=2, deadline=0.6)

        # Slow faults only sleep, so finishing the sweep without them
        # (and without supervision) must give the reference bytes.
        reference = run(fast_config)
        resumed = run(fast_config, checkpoint_path=path)
        assert as_json(resumed) == as_json(reference)


def _crash_in_worker(cell):
    os._exit(17)


class TestWorkerCrash:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="monkeypatched worker body requires the fork start method")
    def test_crashing_cell_written_off_after_redispatch(self, fast_config,
                                                        monkeypatch):
        monkeypatch.setattr(executor_module, "_execute_cell",
                            _crash_in_worker)
        executor = SupervisedExecutor(2, cell_timeout=30.0)
        from repro.exec.plan import plan_campaign

        plan = plan_campaign(fast_config, 2)
        outcomes = list(executor.run(plan.cells))
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert isinstance(outcome.result, FailedRun)
            assert outcome.result.error_type == "WorkerCrashed"
            assert outcome.result.attempts == MAX_DISPATCH_ATTEMPTS


class TestSupervisionTelemetry:
    def test_timeout_and_backoff_counters_in_metrics_snapshot(
            self, hanging_config):
        obs.reset_metrics()
        obs.enable_metrics(True)
        try:
            run(hanging_config, jobs=2, cell_timeout=2.0)
            snapshot = obs.global_registry().snapshot()
        finally:
            obs.enable_metrics(False)
            obs.reset_metrics()
        counters = snapshot["counters"]
        assert counters["repro_supervisor_cell_timeouts_total"] == 4
        assert counters["repro_supervisor_worker_replacements_total"] >= 4

    def test_metrics_identical_with_and_without_supervision(self,
                                                            fast_config):
        def collect(**kwargs):
            obs.reset_metrics()
            obs.enable_metrics(True)
            try:
                run(fast_config, **kwargs)
                return obs.global_registry().snapshot()
            finally:
                obs.enable_metrics(False)
                obs.reset_metrics()

        def normalise(value):
            # Histogram sums are float accumulations folded in cell
            # *completion* order under a pool, which can differ from
            # serial order by an ulp; bucket counts stay exact.
            if isinstance(value, dict) and "sum" in value:
                return dict(value, sum=round(float(value["sum"]), 6))
            return value

        def deterministic(snapshot):
            # Wall-clock samples (busy/phase seconds) legitimately vary
            # between runs, and cache-traffic counters (scenario-store
            # and R-D table hit/miss splits) depend on how cells spread
            # over worker processes, not on simulation events; every
            # other event-count sample must not vary.
            cache_prefixes = ("repro_scenario_store_requests_total",
                              "repro_video_rd_table_requests_total")
            return {section: {key: normalise(value)
                              for key, value in samples.items()
                              if "seconds" not in key
                              and not key.startswith(cache_prefixes)}
                    for section, samples in snapshot.items()}

        plain = collect()
        supervised = collect(jobs=2, cell_timeout=120.0)
        # Engine-produced telemetry folds identically; supervision adds
        # no counters on the healthy path.
        assert deterministic(plain) == deterministic(supervised)

    def test_timeouts_surface_in_trace_trailer(self, hanging_config,
                                               tmp_path):
        trace_path = tmp_path / "run.trace"
        obs.activate(obs.SpanTracer(str(trace_path)))
        try:
            run(hanging_config, jobs=2, cell_timeout=2.0)
        finally:
            obs.deactivate()
        events = obs.read_trace(str(trace_path))
        trailer = [e for e in events if e["kind"] == "trace-summary"]
        assert len(trailer) == 1
        assert trailer[0]["attrs"]["cell_timeouts"] == 4
        assert sum(1 for e in events if e["name"] == "cell-timeout") == 4
