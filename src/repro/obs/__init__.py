"""Observability: tracing, metrics, logging, and run provenance.

The package is inert until :func:`configure` is called (the CLI does so
from ``--trace`` / ``--metrics`` / ``--log-level`` / ``--profile``);
instrumentation points across the engine, solvers, and executor check a
module-global gate first, so a run with observability off pays nothing
beyond that check.  Telemetry is strictly out-of-band: results and
checkpoints are byte-identical with observability on or off, at any
``--jobs N``.

See DESIGN.md section 12 for the architecture and the single-writer
trace rule.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    config_fingerprint,
    prometheus_text,
    read_manifest,
    read_metrics_snapshot,
    result_provenance,
    run_manifest,
    write_manifest,
    write_metrics,
    write_metrics_snapshot,
)
from repro.obs.logging import (
    configure_logging,
    get_logger,
    reset_logging,
    resolve_level,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    ITERATION_BUCKETS,
    PSNR_BUCKETS,
    MetricsRegistry,
    accumulate_phase_seconds,
    enable_metrics,
    format_phase_seconds,
    global_registry,
    metrics_enabled,
    reset_metrics,
    scoped_registry,
    set_global_registry,
)
from repro.obs.trace import (
    DEFAULT_MAX_EVENTS,
    SpanTracer,
    activate,
    active_tracer,
    deactivate,
    iter_trace,
    maybe_span,
    read_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_EVENTS",
    "ITERATION_BUCKETS",
    "PSNR_BUCKETS",
    "MetricsRegistry",
    "SpanTracer",
    "accumulate_phase_seconds",
    "activate",
    "active_tracer",
    "config_fingerprint",
    "configure",
    "configure_logging",
    "deactivate",
    "enable_metrics",
    "format_phase_seconds",
    "get_logger",
    "global_registry",
    "iter_trace",
    "maybe_span",
    "metrics_enabled",
    "prometheus_text",
    "read_manifest",
    "read_metrics_snapshot",
    "read_trace",
    "reset_logging",
    "reset_metrics",
    "resolve_level",
    "result_provenance",
    "run_manifest",
    "scoped_registry",
    "set_global_registry",
    "shutdown",
    "write_manifest",
    "write_metrics",
    "write_metrics_snapshot",
]

#: Where :func:`shutdown` writes the Prometheus dump, set by configure().
_metrics_path: Optional[str] = None


def configure(*, trace_path: Optional[str] = None,
              metrics_path: Optional[str] = None,
              log_level: Optional[str] = None,
              profile: bool = False,
              max_trace_events: int = DEFAULT_MAX_EVENTS) -> None:
    """Turn on the requested observability surfaces.

    ``trace_path`` activates the span tracer; ``metrics_path`` enables
    the metrics registry (dumped to that path by :func:`shutdown`);
    ``log_level`` installs the stderr log handler.  A plain trace
    records run/replication/slot spans; ``profile`` additionally turns
    on per-phase and solver spans (the ``--profile`` contract).
    """
    global _metrics_path
    if log_level is not None:
        configure_logging(log_level)
    if trace_path is not None:
        activate(SpanTracer(trace_path, max_events=max_trace_events,
                            collect_phases=profile))
    if metrics_path is not None:
        _metrics_path = metrics_path
        reset_metrics()
        enable_metrics(True)


def shutdown() -> None:
    """Flush and disable every surface enabled by :func:`configure`.

    Writes the metrics dump (if a metrics path was configured), closes
    the tracer (emitting its ``trace-summary`` line), and turns metric
    collection off.  Safe to call when nothing was configured.

    The metrics dump format follows the path's extension: ``*.json``
    gets a re-absorbable JSON snapshot
    (:func:`~repro.obs.export.write_metrics_snapshot`, which the job
    service folds into its server-wide registry); anything else gets
    the Prometheus text exposition.
    """
    global _metrics_path
    deactivate()
    if _metrics_path is not None:
        if _metrics_path.endswith(".json"):
            write_metrics_snapshot(_metrics_path, global_registry())
        else:
            write_metrics(_metrics_path, global_registry())
        _metrics_path = None
    enable_metrics(False)
