"""Two-state Markov (Gilbert-Elliott) primary-occupancy chains.

Section III-A of the paper models each licensed channel ``m`` as an
independent discrete-time Markov chain over states ``{idle=0, busy=1}``
with transition probabilities ``P01_m`` (idle -> busy) and ``P10_m``
(busy -> idle).  The long-run utilisation by primary users is

    eta_m = P01_m / (P01_m + P10_m)                      (eq. 1)

This module provides the chain itself plus helpers to build chains with a
prescribed utilisation -- the knob swept in Figs. 4(c) and 6(a).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_probability

#: Channel state constants (match the paper's S_m(t) encoding).
IDLE = 0
BUSY = 1


class OccupancyChain:
    """Occupancy process of one licensed channel.

    Parameters
    ----------
    p01:
        Transition probability from idle (0) to busy (1).
    p10:
        Transition probability from busy (1) to idle (0).
    initial_state:
        Starting state; ``None`` draws from the stationary distribution so
        that sampled trajectories are stationary from slot 0.
    rng:
        Randomness source (seed, Generator, or ``None``).
    """

    def __init__(self, p01: float, p10: float, *, initial_state: Optional[int] = None,
                 rng: RandomState = None) -> None:
        self.p01 = check_probability(p01, "p01")
        self.p10 = check_probability(p10, "p10")
        if self.p01 == 0.0 and self.p10 == 0.0:
            raise ConfigurationError(
                "p01 and p10 cannot both be zero: the chain would be frozen "
                "and utilisation (eq. 1) undefined")
        self._rng = as_generator(rng)
        if initial_state is None:
            self._state = BUSY if self._rng.random() < self.utilization else IDLE
        else:
            if initial_state not in (IDLE, BUSY):
                raise ConfigurationError(
                    f"initial_state must be 0 (idle) or 1 (busy), got {initial_state!r}")
            self._state = int(initial_state)

    @property
    def utilization(self) -> float:
        """Stationary busy probability eta = P01 / (P01 + P10) (eq. 1)."""
        return self.p01 / (self.p01 + self.p10)

    @property
    def state(self) -> int:
        """Current state: 0 (idle) or 1 (busy)."""
        return self._state

    def step(self) -> int:
        """Advance the chain one time slot and return the new state."""
        if self._state == IDLE:
            if self._rng.random() < self.p01:
                self._state = BUSY
        elif self._rng.random() < self.p10:
            self._state = IDLE
        return self._state

    def sample_trajectory(self, n_slots: int) -> np.ndarray:
        """Sample ``n_slots`` successive states starting from the current one.

        The returned array holds the states *after* each step; the chain's
        internal state advances accordingly.
        """
        if n_slots < 0:
            raise ConfigurationError(f"n_slots must be non-negative, got {n_slots}")
        out = np.empty(n_slots, dtype=np.int8)
        for t in range(n_slots):
            out[t] = self.step()
        return out

    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic transition matrix ``P[i, j] = Pr{next=j | cur=i}``."""
        return np.array([[1.0 - self.p01, self.p01],
                         [self.p10, 1.0 - self.p10]])

    def __repr__(self) -> str:
        return (f"OccupancyChain(p01={self.p01}, p10={self.p10}, "
                f"state={self._state}, utilization={self.utilization:.3f})")


def transition_probs_for_utilization(eta: float, *, p10: float = 0.3) -> Tuple[float, float]:
    """Transition probabilities ``(p01, p10)`` achieving utilisation ``eta``.

    Inverts eq. (1) holding ``p10`` fixed, which is how the paper sweeps
    channel utilisation in Figs. 4(c) and 6(a): eta = p01/(p01+p10) implies
    p01 = eta * p10 / (1 - eta).

    Raises
    ------
    ConfigurationError
        If the required ``p01`` would exceed 1 (eta too close to 1 for the
        given ``p10``), or eta is not in (0, 1).
    """
    eta = check_probability(eta, "eta", allow_zero=False, allow_one=False)
    p10 = check_probability(p10, "p10", allow_zero=False)
    p01 = eta * p10 / (1.0 - eta)
    if p01 > 1.0:
        raise ConfigurationError(
            f"utilisation {eta} is unreachable with p10={p10}: would need p01={p01:.3f} > 1")
    return p01, p10


def stationary_distribution(p01: float, p10: float) -> np.ndarray:
    """Stationary distribution ``[Pr{idle}, Pr{busy}]`` of the chain."""
    p01 = check_probability(p01, "p01")
    p10 = check_probability(p10, "p10")
    if p01 == 0.0 and p10 == 0.0:
        raise ConfigurationError("p01 and p10 cannot both be zero")
    eta = p01 / (p01 + p10)
    return np.array([1.0 - eta, eta])
