"""City-scale street-grid scenario generator.

Chowdhury's adaptive femtocell/macrocell resource-management work
studies dense urban deployments where femtocells sit on a street grid
and the licensed channels are *heterogeneously* loaded by the primary
network.  The ``city-grid`` registry entry reproduces that shape at a
configurable scale:

* One MBS at the origin; ``rows x cols`` FBSs at street intersections
  (block length :data:`BLOCK_M`), the grid offset :data:`GRID_OFFSET_M`
  east of the MBS so macro links stay long.
* Interference follows the street geometry: adjacent intersections
  (60 m apart) are within twice the femto coverage radius and conflict;
  diagonal neighbours (~85 m) do not.  The explicit 4-neighbour edge
  list pins the graph against geometry drift, exactly like the Fig. 5
  chain scenario does.
* ``users_per_fbs`` CR users per femtocell at deterministic
  golden-angle offsets inside the coverage disk, streaming the paper's
  three test sequences cyclically.
* Per-channel stationary utilisation ``eta_m`` ramps linearly from
  ``utilization_low`` to ``utilization_high`` across the licensed band
  (``channel_utilizations`` on the config; channel ``m``'s ``p01`` is
  derived from its ``eta_m`` and the shared ``p10``).

Defaults (10 x 10 grid, 3 users each) give 100 FBSs / 300 users; a
``rows=20, cols=20`` build reaches the "hundreds of FBSs, thousands of
users" regime the interference-graph code paths are sized for.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.experiments.scenarios import PAPER_SEQUENCES
from repro.net.interference import interference_graph_from_edges
from repro.net.nodes import CrUser, FemtoBaseStation, MacroBaseStation
from repro.net.topology import build_topology
from repro.registry.scenarios import ScenarioInfo, register_scenario
from repro.sim.config import ScenarioConfig
from repro.utils.errors import ConfigurationError

#: Street-block length between adjacent intersections (metres).
BLOCK_M = 60.0

#: Distance from the MBS to the grid's western column (metres).
GRID_OFFSET_M = 250.0

#: Golden angle (radians); irrational rotation spreads user offsets
#: around each femtocell without any RNG draw.
_GOLDEN_ANGLE = 2.399963229728653

#: Golden-ratio conjugate; irrational stride for the user radii.
_GOLDEN_FRAC = 0.6180339887498949

#: User offset radii from their FBS (metres), inside the coverage disk.
_RADIUS_MIN_M, _RADIUS_MAX_M = 6.0, 15.0


def _grid_edges(rows: int, cols: int) -> List[Tuple[int, int]]:
    """4-neighbour adjacency over the ``rows x cols`` intersection grid."""
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            fbs_id = r * cols + c + 1
            if c + 1 < cols:
                edges.append((fbs_id, fbs_id + 1))
            if r + 1 < rows:
                edges.append((fbs_id, fbs_id + cols))
    return edges


def _grid_users(positions: List[Tuple[float, float]],
                users_per_fbs: int) -> List[CrUser]:
    """Deterministic golden-angle user placement around each FBS."""
    users: List[CrUser] = []
    user_id = 0
    for fbs_index, (fx, fy) in enumerate(positions):
        for k in range(users_per_fbs):
            angle = _GOLDEN_ANGLE * (k + fbs_index)
            radius = _RADIUS_MIN_M + (_RADIUS_MAX_M - _RADIUS_MIN_M) * (
                ((k + fbs_index) * _GOLDEN_FRAC) % 1.0)
            users.append(CrUser(
                user_id=user_id,
                position=(fx + radius * math.cos(angle),
                          fy + radius * math.sin(angle)),
                sequence_name=PAPER_SEQUENCES[k % len(PAPER_SEQUENCES)],
                fbs_id=fbs_index + 1,
            ))
            user_id += 1
    return users


def city_grid_scenario(*, rows: int = 10, cols: int = 10,
                       users_per_fbs: int = 3, n_channels: int = 8,
                       utilization_low: float = 0.35,
                       utilization_high: float = 0.75,
                       p10: float = 0.3, gamma: float = 0.2,
                       false_alarm: float = 0.3, miss_detection: float = 0.3,
                       deadline_slots: int = 10,
                       common_bandwidth_mbps: float = 0.3,
                       licensed_bandwidth_mbps: float = 0.3,
                       n_gops: int = 3, scheme: str = "graph-coloring",
                       seed: Optional[int] = 7) -> ScenarioConfig:
    """Street-grid deployment with heterogeneous channel utilisation.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; ``rows * cols`` FBSs at street intersections.
    users_per_fbs:
        CR users per femtocell (each user streams one of the paper's
        sequences, assigned cyclically).
    n_channels:
        Licensed channels ``M``.
    utilization_low, utilization_high:
        Per-channel stationary utilisations ramp linearly from ``low``
        (channel 0) to ``high`` (channel M-1); both in (0, 1).
    p10:
        Shared busy->idle transition probability; each channel's
        ``p01_m`` is derived from its utilisation.
    scheme:
        Allocation scheme; defaults to ``graph-coloring``, whose
        cluster-level colouring is built for exactly this graph shape.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError(
            f"grid must be at least 1x1, got {rows}x{cols}")
    if users_per_fbs < 1:
        raise ConfigurationError(
            f"users_per_fbs must be >= 1, got {users_per_fbs}")
    if not utilization_low <= utilization_high:
        raise ConfigurationError(
            f"utilization_low ({utilization_low}) must not exceed "
            f"utilization_high ({utilization_high})")
    if n_channels == 1:
        etas = (utilization_low,)
    else:
        step = (utilization_high - utilization_low) / (n_channels - 1)
        etas = tuple(utilization_low + step * m for m in range(n_channels))

    mbs = MacroBaseStation(position=(0.0, 0.0))
    positions = [
        (GRID_OFFSET_M + c * BLOCK_M, (r - (rows - 1) / 2.0) * BLOCK_M)
        for r in range(rows) for c in range(cols)]
    fbss = [FemtoBaseStation(fbs_id=index + 1, position=position)
            for index, position in enumerate(positions)]
    graph = interference_graph_from_edges(
        [fbs.fbs_id for fbs in fbss], _grid_edges(rows, cols))
    users = _grid_users(positions, users_per_fbs)
    topology = build_topology(mbs, fbss, users, interference_graph=graph)
    return ScenarioConfig(
        topology=topology, scheme=scheme, n_channels=n_channels,
        p10=p10, channel_utilizations=etas, gamma=gamma,
        common_bandwidth_mbps=common_bandwidth_mbps,
        licensed_bandwidth_mbps=licensed_bandwidth_mbps,
        false_alarm=false_alarm, miss_detection=miss_detection,
        deadline_slots=deadline_slots, n_gops=n_gops, seed=seed,
    )


register_scenario(ScenarioInfo(
    name="city-grid",
    factory=city_grid_scenario,
    description="Street-grid deployment (rows x cols FBSs, 4-neighbour "
                "interference) with per-channel utilisation ramp "
                "(Chowdhury).",
))
