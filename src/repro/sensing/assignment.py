"""Sensor-to-channel assignment for the sensing phase.

Each CR user has a single transceiver and can sense exactly one licensed
channel per slot (Section III-B); each FBS has ``M`` antennas and can sense
every channel.  Results are then shared over the common channel and fused.
This module decides *which* channel each single-transceiver user senses.

The paper does not prescribe a specific assignment rule, only that every
channel ends up with some sensing results (FBS antennas guarantee at least
one observation per channel).  We provide a deterministic round-robin
rule -- which spreads user observations evenly and makes simulations
reproducible -- plus a randomised variant for ablations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.rng import RandomState, as_generator


def assign_sensors_round_robin(user_ids: Sequence[int], n_channels: int, *,
                               offset: int = 0) -> Dict[int, int]:
    """Assign each user one channel, cycling through channels in order.

    Parameters
    ----------
    user_ids:
        Identifiers of single-transceiver CR users.
    n_channels:
        Number of licensed channels ``M``.
    offset:
        Rotation applied before assignment; passing the slot index makes
        every user visit every channel over ``M`` slots.

    Returns
    -------
    dict
        ``{user_id: channel_index}``.
    """
    if n_channels <= 0:
        raise ConfigurationError(f"n_channels must be positive, got {n_channels}")
    if offset < 0:
        raise ConfigurationError(f"offset must be non-negative, got {offset}")
    return {
        user_id: (position + offset) % n_channels
        for position, user_id in enumerate(user_ids)
    }


def assign_sensors_random(user_ids: Sequence[int], n_channels: int, *,
                          rng: RandomState = None) -> Dict[int, int]:
    """Assign each user a uniformly random channel (ablation variant)."""
    if n_channels <= 0:
        raise ConfigurationError(f"n_channels must be positive, got {n_channels}")
    generator = as_generator(rng)
    channels = generator.integers(0, n_channels, size=len(user_ids))
    return {user_id: int(channel) for user_id, channel in zip(user_ids, channels)}


def coverage_counts(assignment: Dict[int, int], n_channels: int) -> np.ndarray:
    """How many users sense each channel under ``assignment``."""
    counts = np.zeros(n_channels, dtype=np.int64)
    for channel in assignment.values():
        if not 0 <= channel < n_channels:
            raise ConfigurationError(
                f"assignment references channel {channel} outside 0..{n_channels - 1}")
        counts[channel] += 1
    return counts
