"""Tests for the per-GOP complexity traces (extension)."""

import math

import numpy as np
import pytest

from repro.utils.errors import ConfigurationError
from repro.video.traces import GopComplexityTrace, empirical_autocorrelation


class TestTraceStatistics:
    def test_zero_sigma_is_constant_one(self):
        trace = GopComplexityTrace(sigma=0.0, rng=0)
        assert trace.complexity == 1.0
        assert trace.sample(20) == [1.0] * 20

    def test_median_near_one(self):
        trace = GopComplexityTrace(sigma=0.4, phi=0.5, rng=1)
        values = trace.sample(20000)
        assert float(np.median(values)) == pytest.approx(1.0, abs=0.05)

    def test_log_std_matches_sigma(self):
        sigma = 0.35
        trace = GopComplexityTrace(sigma=sigma, phi=0.6, rng=2)
        logs = np.log(trace.sample(30000))
        # The AR(1) is parameterised to be stationary with std sigma.
        assert float(logs.std()) == pytest.approx(sigma, abs=0.02)

    def test_autocorrelation_matches_phi(self):
        phi = 0.8
        trace = GopComplexityTrace(sigma=0.4, phi=phi, rng=3)
        logs = np.log(trace.sample(30000))
        assert empirical_autocorrelation(logs, lag=1) == pytest.approx(phi, abs=0.03)

    def test_deterministic_with_seed(self):
        a = GopComplexityTrace(sigma=0.3, rng=7).sample(10)
        b = GopComplexityTrace(sigma=0.3, rng=7).sample(10)
        assert a == b

    def test_iterator_protocol(self):
        trace = GopComplexityTrace(sigma=0.2, rng=4)
        values = [value for value, _ in zip(trace, range(5))]
        assert len(values) == 5
        assert all(value > 0 for value in values)


class TestValidation:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            GopComplexityTrace(sigma=-0.1)

    def test_phi_one_rejected(self):
        with pytest.raises(ConfigurationError):
            GopComplexityTrace(phi=1.0)

    def test_negative_sample_count(self):
        with pytest.raises(ConfigurationError):
            GopComplexityTrace(rng=0).sample(-1)

    def test_autocorrelation_needs_samples(self):
        with pytest.raises(ConfigurationError):
            empirical_autocorrelation([1.0], lag=1)


class TestEngineIntegration:
    def test_paper_mode_unchanged(self, single_config):
        """sigma = 0 must reproduce the paper's constant R-D model."""
        from repro.sim.engine import SimulationEngine
        baseline = SimulationEngine(single_config).run()
        explicit = SimulationEngine(
            single_config.replace(rd_variability=0.0)).run()
        assert baseline.per_user_psnr == explicit.per_user_psnr

    def test_variability_changes_slopes_per_gop(self, single_config):
        from repro.sim.engine import SimulationEngine
        config = single_config.replace(rd_variability=0.5)
        engine = SimulationEngine(config, record_slots=True)
        first = engine.step()
        slopes_gop1 = {u.user_id: u.r_fbs for u in first.problem.users}
        for _ in range(config.deadline_slots):
            record = engine.step()
        slopes_gop2 = {u.user_id: u.r_fbs for u in record.problem.users
                       if u.r_fbs > 0}
        changed = [uid for uid, slope in slopes_gop2.items()
                   if abs(slope - slopes_gop1[uid]) > 1e-12]
        assert changed

    def test_ceiling_invariant_under_complexity(self, single_config):
        """Complexity rescales difficulty, not the achievable quality."""
        from repro.sim.engine import SimulationEngine
        from repro.video.sequences import get_sequence
        config = single_config.replace(rd_variability=0.8)
        engine = SimulationEngine(config)
        for _ in range(config.n_slots):
            engine.step()
        for user in config.topology.users:
            ceiling = get_sequence(user.sequence_name).rd.max_psnr_db
            assert engine.clocks[user.user_id].psnr_db <= ceiling + 1e-9

    def test_invalid_config(self, single_config):
        with pytest.raises(ConfigurationError):
            single_config.replace(rd_variability=-0.5)
        with pytest.raises(ConfigurationError):
            single_config.replace(rd_trace_phi=1.0)
