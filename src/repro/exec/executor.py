"""Execution strategies for planned Monte-Carlo cells.

An :class:`Executor` turns a sequence of :class:`~repro.exec.plan.Cell`
work items into a stream of :class:`CellOutcome` records.  Outcomes are
yielded *as they complete* (completion order is unspecified for the
parallel executor); callers assemble results by cell key, never by
arrival order, which is what makes parallel runs bit-identical to serial
ones.

Isolation semantics are inherited from
:func:`repro.sim.runner.execute_run`: a replication that raises a
:class:`~repro.utils.errors.ReproError` (after its fresh-seed retry) is
returned as a :class:`~repro.sim.metrics.FailedRun`, and programming
errors propagate unchanged.  The parallel executor adds one more layer:
when a worker *process* dies (segfault, OOM kill), the affected cells
are quarantined -- each re-runs alone in a fresh single-worker pool --
and a cell that kills its worker again is recorded as a ``FailedRun``
with ``error_type="WorkerCrashed"`` instead of poisoning the whole
sweep.
"""

from __future__ import annotations

import math
import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.exec.plan import Cell, ensure_picklable
from repro.obs.logging import get_logger
from repro.obs.metrics import global_registry, metrics_enabled
from repro.sim import runner as _runner
from repro.sim.metrics import FailedRun, RunMetrics
from repro.utils.errors import ConfigurationError

logger = get_logger(__name__)

#: Chunks per worker the default chunk size aims for; small enough to
#: load-balance scheme-dependent cell costs, large enough to amortise
#: per-task dispatch overhead.
_CHUNKS_PER_WORKER = 4

#: Dispatch attempts before a pool-killing cell is written off.
_MAX_DISPATCH_ATTEMPTS = 2


@dataclass(frozen=True)
class CellOutcome:
    """One completed cell: its work item, result, and wall-clock cost.

    Attributes
    ----------
    cell:
        The work item that was executed.
    result:
        :class:`RunMetrics` for a surviving replication or
        :class:`FailedRun` for one lost after its retry.
    seconds:
        Wall-clock execution time of the cell, measured inside the
        process that ran it (so pool queueing time is excluded).
    """

    cell: Cell
    result: Union[RunMetrics, FailedRun]
    seconds: float


def _execute_cell(cell: Cell) -> Tuple[str, Union[RunMetrics, FailedRun], float]:
    """Run one cell and return ``(key, result, seconds)``.

    Module-level so process-pool workers can resolve it by qualified
    name under any multiprocessing start method.
    """
    from repro.core import caches

    caches.scope_to(cell.scenario_ref or ("config", id(cell.config)))
    start = time.perf_counter()
    # Resolved through the module so test-time interception of
    # repro.sim.runner.execute_run keeps working under every executor.
    metrics, failure = _runner.execute_run(cell.config, cell.run_index)
    result = metrics if metrics is not None else failure
    return cell.key, result, time.perf_counter() - start


#: Unpatched originals, captured at import: lockstep batching bypasses
#: these seams (it runs real engines directly), so it must stand down
#: whenever a test has monkeypatched either one.
_EXECUTE_RUN_BASELINE = _runner.execute_run
_EXECUTE_CELL_BASELINE = _execute_cell


def _interception_active() -> bool:
    """Whether a test double has replaced an execution seam."""
    return (_runner.execute_run is not _EXECUTE_RUN_BASELINE
            or _execute_cell is not _EXECUTE_CELL_BASELINE)


def _lockstep_group(group: Sequence[Cell]) -> bool:
    """Whether a planned group should run through the lockstep driver."""
    from repro.sim import lockstep

    return (len(group) >= 2 and lockstep.lockstep_eligible()
            and not _interception_active())


def _run_cells(cells: Sequence[Cell]
               ) -> List[Tuple[str, Union[RunMetrics, FailedRun], float]]:
    """Execute cells, batching consecutive same-scenario replications.

    The shared body of the worker chunk entry point and the serial
    executor: consecutive cells that are replications of one derived
    config run in lockstep through the stacked allocation kernel
    (:mod:`repro.sim.lockstep`); everything else takes the per-cell
    path.  Results are ``(key, result, seconds)`` in cell order either
    way.
    """
    from repro.core import caches
    from repro.sim import lockstep

    out: List[Tuple[str, Union[RunMetrics, FailedRun], float]] = []
    for group in lockstep.plan_batch_groups(cells):
        if _lockstep_group(group):
            caches.scope_to(group[0].scenario_ref
                            or ("config", id(group[0].config)))
            out.extend(lockstep.run_cells_lockstep(group,
                                                   fallback=_execute_cell))
        else:
            out.extend(_execute_cell(cell) for cell in group)
    return out


def _run_chunk(chunk: Sequence[Cell]
               ) -> List[Tuple[str, Union[RunMetrics, FailedRun], float]]:
    """Worker entry point: execute a chunk of cells back-to-back."""
    return _run_cells(chunk)


class Executor(ABC):
    """Strategy interface: execute planned cells, stream their outcomes."""

    @abstractmethod
    def run(self, cells: Sequence[Cell]) -> Iterator[CellOutcome]:
        """Execute every cell, yielding a :class:`CellOutcome` per cell.

        Yield order is an implementation detail; every input cell is
        represented exactly once in the output stream.
        """


class SerialExecutor(Executor):
    """Execute cells one at a time in the calling process.

    The reference implementation: no pickling requirements, no
    subprocess overhead, results streamed in plan order.
    """

    def run(self, cells: Sequence[Cell]) -> Iterator[CellOutcome]:
        from repro.exec.supervisor import shutdown_draining
        from repro.sim import lockstep

        for group in lockstep.plan_batch_groups(cells):
            if shutdown_draining():
                logger.warning("shutdown requested; serial executor stopping "
                               "before cell %s", group[0].key)
                return
            if _lockstep_group(group):
                by_key = {cell.key: cell for cell in group}
                from repro.core import caches

                caches.scope_to(group[0].scenario_ref
                                or ("config", id(group[0].config)))
                for key, result, seconds in lockstep.run_cells_lockstep(
                        group, fallback=_execute_cell):
                    yield CellOutcome(cell=by_key[key], result=result,
                                      seconds=seconds)
                continue
            for cell in group:
                if shutdown_draining():
                    logger.warning("shutdown requested; serial executor "
                                   "stopping before cell %s", cell.key)
                    return
                _, result, seconds = _execute_cell(cell)
                yield CellOutcome(cell=cell, result=result, seconds=seconds)


class ParallelExecutor(Executor):
    """Execute cells across a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Worker process count (default: every available core).
    chunk_size:
        Cells per dispatched task; defaults to roughly
        ``len(cells) / (jobs * 4)`` so stragglers can be load-balanced
        while dispatch overhead stays amortised.

    Notes
    -----
    Cells are validated as picklable up front
    (:func:`~repro.exec.plan.ensure_picklable`), so a stateful
    ``fault_plan`` fails with a clear :class:`ConfigurationError` rather
    than an opaque mid-flight pickling error.  Results arrive in
    completion order; callers must key off :attr:`CellOutcome.cell`.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 chunk_size: Optional[int] = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size

    def _chunks(self, cells: Sequence[Cell]) -> List[List[Cell]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(cells) / (self.jobs * _CHUNKS_PER_WORKER)))
        return [list(cells[i:i + size]) for i in range(0, len(cells), size)]

    def run(self, cells: Sequence[Cell]) -> Iterator[CellOutcome]:
        from repro.exec.supervisor import shutdown_draining

        cells = list(cells)
        if not cells:
            return
        ensure_picklable(cells)
        by_key = {cell.key: cell for cell in cells}
        suspects: List[Cell] = []
        chunks = self._chunks(cells)
        logger.info("dispatching %d cells as %d chunks to %d workers",
                    len(cells), len(chunks), self.jobs)
        drained = False
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {pool.submit(_run_chunk, chunk): chunk
                       for chunk in chunks}
            for future in as_completed(futures):
                if not drained and shutdown_draining():
                    # Drain: cancel everything still queued; chunks already
                    # running finish (their cells reach the checkpoint).
                    cancelled = sum(f.cancel() for f in futures
                                    if not f.done())
                    drained = True
                    logger.warning("shutdown requested; cancelled %d queued "
                                   "chunk(s), draining in-flight work",
                                   cancelled)
                if future.cancelled():
                    continue
                chunk = futures[future]
                try:
                    results = future.result()
                except BrokenProcessPool:
                    # A worker died mid-flight.  Every not-yet-done future
                    # fails with the pool, so the culprit cannot be told
                    # apart from innocent chunk-mates here -- quarantine
                    # all of them below.
                    logger.warning(
                        "worker pool broke; quarantining %d cell(s): %s",
                        len(chunk), ", ".join(c.key for c in chunk))
                    suspects.extend(chunk)
                    continue
                for key, result, seconds in results:
                    yield CellOutcome(cell=by_key[key], result=result,
                                      seconds=seconds)
        for cell in suspects:
            if shutdown_draining():
                logger.warning("shutdown requested; leaving quarantined cell "
                               "%s unexecuted", cell.key)
                continue
            yield self._run_quarantined(cell)

    def _run_quarantined(self, cell: Cell) -> CellOutcome:
        """Re-run one crash suspect alone in its own single-worker pool.

        Running solo makes crash attribution exact: if this pool breaks
        too, *this* cell kills workers, and it is written off as a
        ``FailedRun`` instead of being retried forever or taking other
        cells down with it.  The redispatch waits out a deterministic
        backoff first, so a transient resource squeeze (OOM killer) gets
        a chance to clear.
        """
        from repro.exec.supervisor import apply_backoff

        apply_backoff(cell.config.seed, cell.run_index, 1,
                      reason="worker-crash")
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_run_chunk, [cell])
            try:
                [(_, result, seconds)] = future.result()
            except BrokenProcessPool:
                logger.error("cell %s killed its quarantine worker too; "
                             "written off as WorkerCrashed", cell.key)
                if metrics_enabled():
                    global_registry().counter(
                        "repro_executor_worker_crashes_total").inc()
                return CellOutcome(
                    cell=cell,
                    result=FailedRun(
                        run_index=cell.run_index,
                        error_type="WorkerCrashed",
                        error=f"worker process died executing cell "
                              f"{cell.key} (twice: chunked and quarantined)",
                        attempts=_MAX_DISPATCH_ATTEMPTS,
                    ),
                    seconds=0.0)
        return CellOutcome(cell=cell, result=result, seconds=seconds)


def make_executor(jobs: Optional[int] = None, *,
                  cell_timeout: Optional[float] = None,
                  deadline: Optional[float] = None) -> Executor:
    """Map ``--jobs``/``--cell-timeout``/``--deadline`` onto a strategy.

    ``None`` or ``1`` selects :class:`SerialExecutor`; anything larger
    selects a :class:`ParallelExecutor` with that worker count.  Setting
    either deadline switches to the watchdog
    :class:`~repro.exec.supervisor.SupervisedExecutor`, which runs cells
    in killable child processes even at ``jobs=1``.
    """
    if cell_timeout is not None or deadline is not None:
        from repro.exec.supervisor import SupervisedExecutor

        return SupervisedExecutor(jobs or 1, cell_timeout=cell_timeout,
                                  deadline=deadline)
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return ParallelExecutor(jobs)
