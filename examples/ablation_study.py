#!/usr/bin/env python
"""Ablation study: which design choices actually carry the performance?

Runs the single-FBS scenario under the proposed scheme while switching
individual design choices off (DESIGN.md §6):

* A1 -- replace the probabilistic access rule (eq. 7) with deterministic
  thresholding;
* A2 -- fuse only one sensing observation per channel instead of all;
* A5 -- (extension) carry channel beliefs across slots through the
  Markov transition matrix.

Run with:  python examples/ablation_study.py
"""

from repro.experiments import single_fbs_scenario
from repro.sim import MonteCarloRunner


def main() -> None:
    base = single_fbs_scenario(n_gops=3, seed=7, scheme="proposed-fast")
    variants = {
        "paper configuration": base,
        "A1: hard-threshold access": base.replace(access_policy="threshold"),
        "A2: single-observation fusion": base.replace(
            single_observation_fusion=True),
        "A2+A5: sparse sensing + belief tracking": base.replace(
            single_observation_fusion=True, belief_tracking=True),
        "A5: belief tracking": base.replace(belief_tracking=True),
        "realized-throughput accounting": base.replace(
            realized_throughput=True),
    }
    print(f"{'variant':42s} {'mean PSNR':>12s} {'collisions':>11s}")
    print("-" * 68)
    for name, config in variants.items():
        summary = MonteCarloRunner(config, n_runs=8).summary()
        print(f"{name:42s} {summary.mean_psnr.mean:9.2f} dB "
              f"{summary.mean_collision_rate.mean:11.3f}")
    print(f"\n(collision cap gamma = {base.gamma}; note how thresholding "
          f"strands most of the budget)")


if __name__ == "__main__":
    main()
