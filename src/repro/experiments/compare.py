"""Structured comparison of two saved result files (``repro compare``).

Reproduction work constantly asks "is this re-run the same experiment,
and if not, how far apart are the curves?".  This module answers both
questions from the artifacts alone:

* **bit identity** -- the strongest verdict, a byte comparison of the
  two files.  The pipeline guarantees identical runs serialise
  identically (at any ``--jobs N``, store on or off), so two files from
  the same seed/config either match exactly or something real changed.
* **provenance** -- the deterministic header embedded by
  :func:`~repro.experiments.results_io.save_results` (seed, backend,
  acceleration, scenario/config hashes).  A mismatch here explains a
  byte difference before any numbers are compared.
* **per-scheme PSNR deltas** -- for sweep and Fig. 3 files, the
  numeric distance between the curves, per scheme and sweep point.

The CLI surfaces this as ``repro compare A B [--fail-on-diff]``; the
job service's smoke test uses it to diff an HTTP-fetched result against
a direct CLI run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.utils.errors import ConfigurationError

#: Provenance fields that must agree for two runs to claim the same
#: deterministic identity (compared only when both files carry them).
PROVENANCE_KEYS = ("seed", "backend", "acceleration", "scenario_hash",
                   "config_hash")


@dataclass(frozen=True)
class SchemeDelta:
    """Per-point mean-PSNR distance of one scheme between two files.

    Attributes
    ----------
    scheme:
        Scheme name (present in both files).
    deltas:
        ``mean_psnr(B) - mean_psnr(A)`` in dB per sweep point, in sweep
        order (one entry for Fig. 3 files, which have no sweep axis).
    """

    scheme: str
    deltas: Tuple[float, ...]

    @property
    def max_abs(self) -> float:
        """The largest absolute per-point delta, 0.0 when empty."""
        return max((abs(d) for d in self.deltas), default=0.0)


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of :func:`compare_results` (see module docstring)."""

    path_a: str
    path_b: str
    bit_identical: bool
    kind_a: Optional[str]
    kind_b: Optional[str]
    provenance_a: Dict[str, object]
    provenance_b: Dict[str, object]
    provenance_mismatches: Tuple[str, ...]
    scheme_deltas: Tuple[SchemeDelta, ...] = ()
    only_in_a: Tuple[str, ...] = ()
    only_in_b: Tuple[str, ...] = ()
    notes: Tuple[str, ...] = field(default=())

    @property
    def provenance_agrees(self) -> bool:
        """Whether every shared deterministic provenance field matches."""
        return not self.provenance_mismatches

    @property
    def max_abs_delta(self) -> float:
        """Largest absolute mean-PSNR delta across schemes and points."""
        return max((d.max_abs for d in self.scheme_deltas), default=0.0)

    def to_dict(self) -> dict:
        """JSON-compatible form of the report."""
        return {
            "path_a": self.path_a,
            "path_b": self.path_b,
            "bit_identical": self.bit_identical,
            "kind_a": self.kind_a,
            "kind_b": self.kind_b,
            "provenance_agrees": self.provenance_agrees,
            "provenance_mismatches": list(self.provenance_mismatches),
            "max_abs_delta_db": self.max_abs_delta,
            "scheme_deltas": {d.scheme: list(d.deltas)
                              for d in self.scheme_deltas},
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
            "notes": list(self.notes),
        }

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"A: {self.path_a}",
                 f"B: {self.path_b}",
                 f"bit-identical  : {'yes' if self.bit_identical else 'no'}"]
        if self.bit_identical:
            return "\n".join(lines)
        prov = "match" if self.provenance_agrees else "MISMATCH"
        lines.append(f"provenance     : {prov}")
        for key in self.provenance_mismatches:
            lines.append(f"  {key}: {self.provenance_a.get(key)!r} != "
                         f"{self.provenance_b.get(key)!r}")
        if self.kind_a != self.kind_b:
            lines.append(f"result kinds   : {self.kind_a!r} vs {self.kind_b!r} "
                         f"(numeric comparison skipped)")
        for delta in self.scheme_deltas:
            rendered = ", ".join(f"{d:+.4f}" for d in delta.deltas)
            lines.append(f"  {delta.scheme}: max |delta| "
                         f"{delta.max_abs:.4f} dB  [{rendered}]")
        if self.only_in_a:
            lines.append("only in A      : " + ", ".join(self.only_in_a))
        if self.only_in_b:
            lines.append("only in B      : " + ", ".join(self.only_in_b))
        for note in self.notes:
            lines.append(f"note           : {note}")
        return "\n".join(lines)


def _load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read result file {path}: {exc}") \
            from exc
    except ValueError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc


def _scheme_curves(payload: dict) -> Dict[str, List[float]]:
    """``{scheme: per-point mean PSNR}`` of one loaded payload.

    Sweep files contribute one value per sweep point; Fig. 3 files
    contribute the mean over the row's per-user PSNR means (a single
    point).  Other kinds (e.g. convergence traces) have no PSNR curve
    and return empty.
    """
    kind = payload.get("kind")
    if kind == "sweep":
        return {scheme: [s["mean_psnr"]["mean"] for s in summaries]
                for scheme, summaries in payload.get("summaries", {}).items()}
    if kind == "fig3":
        curves: Dict[str, List[float]] = {}
        for row in payload.get("rows", []):
            per_user = [ci["mean"] for ci in row["per_user_psnr"].values()]
            if per_user:
                curves[row["scheme"]] = [sum(per_user) / len(per_user)]
        return curves
    return {}


def compare_results(path_a: Union[str, Path],
                    path_b: Union[str, Path]) -> ComparisonReport:
    """Compare two files written by ``save_results`` (module docstring).

    Raises
    ------
    ConfigurationError
        When either file is missing or not parseable JSON.
    """
    path_a, path_b = Path(path_a), Path(path_b)
    bytes_a = path_a.read_bytes() if path_a.exists() else None
    bytes_b = path_b.read_bytes() if path_b.exists() else None
    if bytes_a is None:
        raise ConfigurationError(f"result file {path_a} does not exist")
    if bytes_b is None:
        raise ConfigurationError(f"result file {path_b} does not exist")
    payload_a = _load_payload(path_a)
    payload_b = _load_payload(path_b)
    prov_a = dict(payload_a.get("provenance", {}))
    prov_b = dict(payload_b.get("provenance", {}))
    mismatches = tuple(
        key for key in PROVENANCE_KEYS
        if key in prov_a and key in prov_b and prov_a[key] != prov_b[key])
    notes: List[str] = []
    if not prov_a or not prov_b:
        notes.append("one or both files carry no provenance header")
    curves_a = _scheme_curves(payload_a)
    curves_b = _scheme_curves(payload_b)
    if payload_a.get("kind") != payload_b.get("kind"):
        # A sweep curve and a fig3 point are not comparable numbers;
        # report the kind clash (format() says so) instead of deltas.
        curves_a, curves_b = {}, {}
    shared = sorted(set(curves_a) & set(curves_b))
    deltas = []
    for scheme in shared:
        a, b = curves_a[scheme], curves_b[scheme]
        if len(a) != len(b):
            notes.append(f"scheme {scheme!r} has {len(a)} point(s) in A "
                         f"but {len(b)} in B; comparing the overlap")
        deltas.append(SchemeDelta(
            scheme=scheme,
            deltas=tuple(vb - va for va, vb in zip(a, b))))
    return ComparisonReport(
        path_a=str(path_a),
        path_b=str(path_b),
        bit_identical=bytes_a == bytes_b,
        kind_a=payload_a.get("kind"),
        kind_b=payload_b.get("kind"),
        provenance_a=prov_a,
        provenance_b=prov_b,
        provenance_mismatches=mismatches,
        scheme_deltas=tuple(deltas),
        only_in_a=tuple(sorted(set(curves_a) - set(curves_b))),
        only_in_b=tuple(sorted(set(curves_b) - set(curves_a))),
        notes=tuple(notes),
    )
