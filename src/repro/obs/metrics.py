"""Counter / gauge / histogram registry for simulation telemetry.

The registry gives every layer of the per-slot pipeline a place to
record *what happened* -- dual-solver iterations and convergence status,
greedy ``Q(c)`` cache hits, fallback degradations, access-decision
collision/deny counts, per-user PSNR distributions, executor worker
utilization -- without threading a telemetry object through every call
signature.  Instrumentation points consult :func:`metrics_enabled`
first; with observability off that is one module-global read, so the
disabled path adds no measurable overhead to the hot loops.

Telemetry is strictly out-of-band: nothing in this module touches RNG
streams, results, or checkpoints, so simulation output stays
byte-identical with metrics on or off (asserted by
``tests/obs/test_differential.py``).

Cross-process collection under ``--jobs N`` works by snapshot, not by
shared state: :func:`repro.sim.runner.execute_run` runs each replication
under :func:`scoped_registry`, attaches the snapshot to the (picklable)
``RunMetrics``, and the parent folds every snapshot into its own global
registry with :meth:`MetricsRegistry.absorb`.  Engine-side counts are
deterministic given the seed, so the merged totals are identical at any
worker count.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (generic positive quantities).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0)

#: Bucket upper bounds for Y-PSNR observations (dB).
PSNR_BUCKETS = (10.0, 15.0, 20.0, 25.0, 28.0, 30.0, 32.0, 34.0, 36.0,
                38.0, 40.0, 45.0, 50.0)

#: Bucket upper bounds for dual-solver iteration counts.
ITERATION_BUCKETS = (10.0, 25.0, 50.0, 100.0, 150.0, 250.0, 400.0,
                     1000.0, 2500.0, 5000.0)


def accumulate_phase_seconds(totals: Dict[str, float],
                             phases: Mapping[str, float]) -> Dict[str, float]:
    """Fold one ``{phase: seconds}`` mapping into a running total.

    The single shared implementation of the phase-aggregation loop that
    used to be duplicated between ``repro.sim.metrics.summarize_runs``
    and ``repro.exec.progress.ProgressTracker``; mutates and returns
    ``totals``.
    """
    for phase, seconds in phases.items():
        totals[phase] = totals.get(phase, 0.0) + float(seconds)
    return totals


def format_phase_seconds(phases: Mapping[str, float]) -> str:
    """Render a phase-seconds mapping as the canonical report fragment.

    One format for every surface that prints phase timings (the timing
    report's ``per phase`` line, the CLI's ``simulate --profile`` row).
    """
    return "; ".join(f"{phase} {seconds:.2f} s"
                     for phase, seconds in phases.items())


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class Gauge:
    """Last-written instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything else.  ``counts[i]`` is the number of
    observations ``<= buckets[i]`` exclusive of earlier buckets (plain
    per-bucket counts; the exporter renders them cumulatively).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered or list(ordered) != sorted(ordered):
            raise ValueError(f"bucket bounds must be sorted, got {buckets}")
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1


def sample_name(name: str, labels: Mapping[str, str]) -> str:
    """Canonical ``name{label="value",...}`` sample key (labels sorted)."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{rendered}}}"


def split_sample_name(key: str) -> Tuple[str, str]:
    """Split a sample key into ``(name, label-body)`` (body may be empty)."""
    if "{" not in key:
        return key, ""
    name, _, rest = key.partition("{")
    return name, rest.rstrip("}")


class MetricsRegistry:
    """Process-local registry of named counters, gauges, and histograms.

    Metrics are keyed by their Prometheus-style sample name (metric name
    plus sorted labels), created on first use, and aggregated across
    registries with :meth:`merge` / :meth:`absorb` -- the operation the
    Monte-Carlo harness uses to fold per-replication registries into one
    sweep-level registry regardless of which worker process produced
    them.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter for ``name`` + ``labels``."""
        key = sample_name(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge for ``name`` + ``labels``."""
        key = sample_name(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str, *, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        """Get or create the histogram for ``name`` + ``labels``.

        ``buckets`` only applies on creation; observing an existing
        histogram with different buckets raises to catch drift between
        instrumentation points sharing a metric name.
        """
        key = sample_name(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(buckets)
        elif histogram.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {key!r} already registered with buckets "
                f"{histogram.buckets}, got {tuple(buckets)}")
        return histogram

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> dict:
        """JSON/pickle-compatible dump of every metric in the registry."""
        return {
            "counters": {key: c.value for key, c in self._counters.items()},
            "gauges": {key: g.value for key, g in self._gauges.items()},
            "histograms": {
                key: {"buckets": list(h.buckets), "counts": list(h.counts),
                      "sum": h.sum, "count": h.count}
                for key, h in self._histograms.items()
            },
        }

    def absorb(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value (last write wins).  Histogram bucket layouts must agree.
        """
        for key, value in snapshot.get("counters", {}).items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(float(value))
        for key, value in snapshot.get("gauges", {}).items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(float(value))
        for key, dump in snapshot.get("histograms", {}).items():
            buckets = tuple(float(b) for b in dump["buckets"])
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(buckets)
            elif histogram.buckets != buckets:
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket layout "
                    f"{buckets} != {histogram.buckets}")
            for i, count in enumerate(dump["counts"]):
                histogram.counts[i] += int(count)
            histogram.sum += float(dump["sum"])
            histogram.count += int(dump["count"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see :meth:`absorb`)."""
        self.absorb(other.snapshot())

    # Read accessors used by the exporter and tests ----------------------

    def counters(self) -> Dict[str, float]:
        """``{sample name: value}`` of every counter."""
        return {key: c.value for key, c in self._counters.items()}

    def gauges(self) -> Dict[str, float]:
        """``{sample name: value}`` of every gauge."""
        return {key: g.value for key, g in self._gauges.items()}

    def histograms(self) -> Dict[str, Histogram]:
        """``{sample name: Histogram}`` of every histogram."""
        return dict(self._histograms)


#: Whether instrumentation points should record metrics at all.
_ENABLED = False

#: The process-global registry instrumentation points write to.
_REGISTRY = MetricsRegistry()


def metrics_enabled() -> bool:
    """Cheap global check guarding every instrumentation point."""
    return _ENABLED


def enable_metrics(enabled: bool = True) -> None:
    """Turn metric collection on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(enabled)


def global_registry() -> MetricsRegistry:
    """The process-global registry (see :func:`scoped_registry`)."""
    return _REGISTRY


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def reset_metrics() -> None:
    """Fresh empty global registry (test isolation)."""
    set_global_registry(MetricsRegistry())


@contextmanager
def scoped_registry() -> Iterator[MetricsRegistry]:
    """Run a block against a fresh global registry, then restore.

    The Monte-Carlo harness wraps each replication in this scope so the
    replication's metrics can be snapshotted in isolation (and shipped
    back from worker processes on the run's ``RunMetrics``); the parent
    then absorbs every snapshot, which makes sweep-level totals
    identical at every ``--jobs N``.
    """
    fresh = MetricsRegistry()
    previous = set_global_registry(fresh)
    try:
        yield fresh
    finally:
        set_global_registry(previous)
