"""Tests for the Markov belief tracker (extension)."""

import numpy as np
import pytest

from repro.sensing.belief import ChannelBeliefTracker
from repro.sensing.detector import SensingResult, SpectrumSensor
from repro.sensing.fusion import fuse_posterior
from repro.spectrum.markov import BUSY, IDLE, OccupancyChain
from repro.utils.errors import ConfigurationError


def _result(observation, channel=0, eps=0.3, delta=0.3):
    return SensingResult(channel=channel, observation=observation,
                         false_alarm=eps, miss_detection=delta)


class TestPriors:
    def test_starts_stationary(self):
        tracker = ChannelBeliefTracker(4, 0.4, 0.3)
        assert np.allclose(tracker.busy_priors, 0.4 / 0.7)

    def test_stationary_is_fixed_point_of_predict(self):
        tracker = ChannelBeliefTracker(2, 0.4, 0.3)
        before = tracker.busy_priors
        tracker.predict()
        assert np.allclose(tracker.busy_priors, before)

    def test_without_updates_reduces_to_paper_fusion(self):
        # With no evidence folded in, fuse() equals eq. (2) with eta.
        tracker = ChannelBeliefTracker(1, 0.4, 0.3)
        results = [_result(IDLE), _result(BUSY)]
        assert tracker.fuse(0, results) == pytest.approx(
            fuse_posterior(0.4 / 0.7, results))

    def test_per_channel_parameters(self):
        tracker = ChannelBeliefTracker(2, [0.2, 0.6], [0.4, 0.2])
        assert tracker.prior(0) == pytest.approx(0.2 / 0.6)
        assert tracker.prior(1) == pytest.approx(0.6 / 0.8)


class TestDynamics:
    def test_posterior_propagates(self):
        tracker = ChannelBeliefTracker(1, 0.4, 0.3)
        # Strong idle evidence drives the busy belief down...
        tracker.fuse(0, [_result(IDLE, eps=0.05, delta=0.05)] * 3)
        low_busy = tracker.prior(0)
        assert low_busy < 0.1
        # ...and predict() pulls it back toward the stationary point.
        tracker.predict()
        assert low_busy < tracker.prior(0) < 0.4 / 0.7

    def test_prediction_formula(self):
        tracker = ChannelBeliefTracker(1, 0.25, 0.6)
        tracker.fuse(0, [_result(BUSY, eps=0.01, delta=0.01)])
        busy = tracker.prior(0)
        tracker.predict()
        expected = busy * (1 - 0.6) + (1 - busy) * 0.25
        assert tracker.prior(0) == pytest.approx(expected)

    def test_reset(self):
        tracker = ChannelBeliefTracker(1, 0.4, 0.3)
        tracker.fuse(0, [_result(BUSY)])
        tracker.reset()
        assert tracker.prior(0) == pytest.approx(0.4 / 0.7)

    def test_tracking_beats_stationary_prior_monte_carlo(self):
        """With sparse sensing, tracked posteriors are better calibrated
        (lower Brier score) than restarting from eta every slot."""
        rng = np.random.default_rng(0)
        chain = OccupancyChain(0.2, 0.15, rng=1)
        sensor = SpectrumSensor(0.3, 0.3, rng=rng)
        tracker = ChannelBeliefTracker(1, 0.2, 0.15)
        eta = chain.utilization
        brier_tracked = brier_stationary = 0.0
        n_slots = 4000
        for _ in range(n_slots):
            state = chain.step()
            result = sensor.sense(0, state)
            tracker.predict()
            tracked = tracker.fuse(0, [result])
            stationary = fuse_posterior(eta, [result])
            truth_idle = 1.0 - state
            brier_tracked += (tracked - truth_idle) ** 2
            brier_stationary += (stationary - truth_idle) ** 2
        assert brier_tracked < brier_stationary


class TestValidation:
    def test_invalid_channel_count(self):
        with pytest.raises(ConfigurationError):
            ChannelBeliefTracker(0, 0.4, 0.3)

    def test_frozen_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelBeliefTracker(2, 0.0, 0.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelBeliefTracker(3, [0.4, 0.3], 0.3)

    def test_unknown_channel_rejected(self):
        tracker = ChannelBeliefTracker(2, 0.4, 0.3)
        with pytest.raises(ConfigurationError):
            tracker.fuse(5, [])

    def test_out_of_range_probability(self):
        with pytest.raises(ConfigurationError):
            ChannelBeliefTracker(2, [0.4, 1.4], 0.3)
