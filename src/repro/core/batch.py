"""Cross-replication batched dual-decomposition kernel.

The per-slot allocation dominates the accelerated engine's budget
(BENCH_engine.json), and PR 3/4 already vectorised everything *inside*
one solve -- the remaining stacking dimension is *across* independent
slot problems.  The paper's dual decomposition makes this easy: the
subgradient iteration of Tables I/II touches only its own problem's
arrays, so B independent solves can run as one ``(B, N)``-shaped
iteration with per-member convergence masks.

The module provides three layers:

* :class:`SolveRequest` / :func:`solve_requests` -- the stacked kernel.
  Each request describes one ``DualDecompositionSolver.solve`` call
  (problem, warm start, solver parameters); ``solve_requests`` answers a
  whole batch with the exact :class:`~repro.core.dual.DualSolution` each
  scalar call would have produced.  **Bit-exactness contract:** every
  elementwise operation (water-filling shares, branch utilities) runs
  stacked -- numpy ufuncs are value-deterministic per element, so a row
  of a ``(B, N)`` array computes the same bits as the lone ``(N,)``
  array -- while every order-sensitive reduction (per-station usage
  sums, multiplier movement) is stacked only in ways that preserve each
  row's exact scalar operand sequence: the compressed MBS-usage sum
  replays numpy's pairwise-summation association column-wise
  (:func:`_masked_row_sums`), the FBS usage accumulates through one
  row-major flattened ``np.add.at`` (rows touch disjoint buckets), and
  the movement norm reduces along the contiguous last axis, which runs
  the same per-row kernel as the scalar ``.sum()``.  Finished members
  freeze: their rows
  are removed from the stack and never recomputed, so a member that
  converges at iteration 37 returns the same iterate whether its batch
  mates run 37 or 5000 iterations.

* Solve *generators* -- :func:`fast_solve_iter` and friends mirror the
  scalar entry points of :mod:`repro.core.dual` but ``yield`` each
  :class:`SolveRequest` instead of solving inline, so a driver can
  interleave many call sites.  :func:`drive` runs such a generator
  sequentially (answering each request with the real scalar solver),
  which is how the non-batched path executes the exact same code.

* The ``use_batching`` switch, mirroring
  :mod:`repro.core.accel`: process-global, on by default, scoped off by
  differential tests, disabled by ``REPRO_BATCHED_ALLOCATION=0``.

An optional numba JIT of the elementwise stage is feature-detected and
**off by default** (``REPRO_NUMBA_BATCH=1`` opts in, and only if numba
is importable); the numpy stage is the reference either way.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Generator, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.dual import (
    _LAMBDA_EPS,
    _STALL_CHECK_EVERY,
    _STALL_PATIENCE,
    DualDecompositionSolver,
    DualSolution,
    flip_polish,
)
from repro.core.problem import SlotProblem
from repro.core.reference import solve_given_assignment
from repro.obs.metrics import ITERATION_BUCKETS, global_registry, metrics_enabled

#: Environment switch: ``0`` disables batched allocation process-wide.
ENV_BATCHING = "REPRO_BATCHED_ALLOCATION"

#: Opt-in switch for the numba JIT of the elementwise stage.
ENV_NUMBA = "REPRO_NUMBA_BATCH"

#: Tri-state in-process override: ``None`` follows the environment.
_ENABLED: Optional[bool] = None


def batching_enabled() -> bool:
    """Whether cross-replication batched allocation is active."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get(ENV_BATCHING, "1") != "0"


@contextmanager
def use_batching(enabled: bool) -> Iterator[None]:
    """Scoped override of the batching switch (differential tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


@dataclass
class SolveRequest:
    """One deferred ``DualDecompositionSolver.solve`` call.

    Attributes mirror the solver's constructor and ``solve`` arguments;
    ``registry`` captures the requester's metrics registry at creation
    time (the batched kernel runs under the *driver's* registry, but the
    solve belongs to the member replication, so its solver counters must
    land on the member's books).  Requests are only ever created by
    non-strict, non-tracing call sites -- strict solvers and multiplier
    traces take the inline scalar path.
    """

    problem: SlotProblem
    initial_multipliers: Optional[Dict[int, float]] = None
    max_iterations: int = 400
    step_size: float = 0.02
    threshold: float = 1e-5
    decay_after: int = 400
    registry: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.registry is None and metrics_enabled():
            self.registry = global_registry()


#: A solve generator: yields requests, returns its final result.
SolveGenerator = Generator[SolveRequest, DualSolution, object]


@lru_cache(maxsize=32)
def _solver_for(step_size: float, threshold: float, max_iterations: int,
                decay_after: int) -> DualDecompositionSolver:
    """Shared scalar solver instances keyed on the request parameters.

    The solver is stateless across calls, so an equivalent instance
    answers a request bit-identically to the caller's own; the cache is
    scoped per scenario by :mod:`repro.core.caches`.
    """
    return DualDecompositionSolver(
        step_size=step_size, threshold=threshold,
        max_iterations=max_iterations, decay_after=decay_after)


def answer_request(request: SolveRequest) -> DualSolution:
    """Solve one request inline with the scalar solver."""
    solver = _solver_for(request.step_size, request.threshold,
                         request.max_iterations, request.decay_after)
    return solver.solve(request.problem,
                        initial_multipliers=request.initial_multipliers)


def drive(gen: SolveGenerator):
    """Run a solve generator to completion, answering requests inline.

    The sequential executor of the generator protocol: each yielded
    :class:`SolveRequest` is solved immediately by the scalar solver, so
    ``drive(some_iter(...))`` is the exact unbatched computation.
    Exceptions raised inside the generator propagate unchanged.
    """
    try:
        request = gen.send(None)
        while True:
            request = gen.send(answer_request(request))
    except StopIteration as stop:
        return stop.value


# -- solve generators mirroring repro.core.dual entry points -------------


def fast_solve_iter(problem: SlotProblem, *, max_iterations: int = 400,
                    polish: bool = True,
                    initial_multipliers: Optional[Dict[int, float]] = None
                    ) -> SolveGenerator:
    """Generator form of :func:`repro.core.dual.fast_solve`.

    The subgradient stage is yielded as a request (batchable); the
    :func:`~repro.core.dual.flip_polish` stage stays sequential -- it is
    a data-dependent local search over exact re-solves and measures a
    few percent of the solve cost.
    """
    solution = yield SolveRequest(problem=problem,
                                  max_iterations=max_iterations,
                                  initial_multipliers=initial_multipliers)
    if not polish:
        return solution.allocation
    return flip_polish(problem, solution.allocation)


def fast_solve_warm_iter(problem: SlotProblem,
                         warm_multipliers: Dict[int, float], *,
                         max_iterations: int = 400,
                         polish: bool = True) -> SolveGenerator:
    """Generator form of :func:`repro.core.dual.fast_solve_warm`.

    The warm store is read when the request is *created* and written
    when the answer arrives; the owning generator is suspended in
    between, so the store cannot be observed half-updated.
    """
    solution = yield SolveRequest(
        problem=problem, max_iterations=max_iterations,
        initial_multipliers=dict(warm_multipliers) or None)
    warm_multipliers.clear()
    warm_multipliers.update(solution.multipliers)
    if not polish:
        return solution.allocation
    return flip_polish(problem, solution.allocation)


# -- the stacked kernel ---------------------------------------------------


class _Member:
    """Per-request state of the stacked iteration (one batch member)."""

    __slots__ = (
        "request", "problem", "users", "stations", "station_pos", "n",
        "w", "s_mbs", "s_fbs", "r_mbs", "r_fbs_eff", "fbs_pos",
        "cost0", "cost1", "dead0", "dead1", "lam", "step", "stop_sq",
        "max_iterations", "decay_after", "iterations", "converged",
        "choose_mbs", "final_lam", "best_recovered", "stagnant_checks",
    )

    def __init__(self, request: SolveRequest) -> None:
        # This prologue is the scalar solver's, statement for statement
        # (repro.core.dual.DualDecompositionSolver.solve up to the
        # iteration loop), so every per-member constant -- scale, step,
        # threshold, initial multipliers, hoisted costs -- is bit-equal.
        self.request = request
        problem = request.problem
        self.problem = problem
        stations = [0] + problem.fbs_ids
        self.stations = stations
        self.station_pos = {station: pos
                            for pos, station in enumerate(stations)}
        users = list(problem.users)
        self.users = users
        self.n = len(users)
        self.w = np.array([u.w_prev for u in users])
        self.s_mbs = np.array([u.success_mbs for u in users])
        self.s_fbs = np.array([u.success_fbs for u in users])
        self.r_mbs = np.array([u.r_mbs for u in users])
        self.r_fbs_eff = np.array(
            [problem.g_for_user(u) * u.r_fbs for u in users])
        self.fbs_pos = np.array([self.station_pos[u.fbs_id] for u in users])

        marginals = np.concatenate([
            self.s_mbs * self.r_mbs / self.w,
            self.s_fbs * self.r_fbs_eff / self.w])
        positive = marginals[marginals > 0]
        scale = float(positive.mean()) if positive.size else 1.0
        self.step = float(request.step_size) * scale
        self.stop_sq = (float(request.threshold) * scale) ** 2

        lam = np.full(len(stations), scale)
        if request.initial_multipliers:
            for station, value in request.initial_multipliers.items():
                if station in self.station_pos:
                    lam[self.station_pos[station]] = max(0.0, float(value))
        self.lam = lam

        live0 = (self.r_mbs > 0) & (self.s_mbs > 0)
        live1 = (self.r_fbs_eff > 0) & (self.s_fbs > 0)
        self.dead0 = ~live0
        self.dead1 = ~live1
        with np.errstate(over="ignore"):
            self.cost0 = self.w / np.where(live0, self.r_mbs, 1.0)
            self.cost1 = self.w / np.where(live1, self.r_fbs_eff, 1.0)

        self.max_iterations = int(request.max_iterations)
        self.decay_after = int(request.decay_after)
        self.iterations = 0
        self.converged = False
        self.choose_mbs = np.zeros(self.n, dtype=bool)
        self.final_lam = lam
        self.best_recovered = None
        self.stagnant_checks = 0

    def finalize(self) -> DualSolution:
        """Primal recovery + metrics, exactly as the scalar epilogue."""
        registry = self.request.registry
        if registry is not None:
            registry.counter("repro_solver_solves_total",
                             converged=str(self.converged).lower()).inc()
            registry.counter("repro_solver_iterations_total").inc(
                self.iterations)
            registry.histogram("repro_solver_iterations",
                               buckets=ITERATION_BUCKETS).observe(
                                   self.iterations)
        mbs_set = {self.users[j].user_id for j in range(self.n)
                   if self.choose_mbs[j]}
        allocation = solve_given_assignment(self.problem, mbs_set)
        if self.best_recovered is not None and (
                self.best_recovered.objective > allocation.objective):
            allocation = self.best_recovered
        return DualSolution(
            allocation=allocation,
            multipliers={station: float(self.final_lam[self.station_pos[station]])
                         for station in self.stations},
            iterations=self.iterations,
            converged=self.converged,
        )


def _iteration_stage(lam0, lam_user, safe_lam0, safe_lam1, s_mbs, s_fbs,
                     cost0, cost1, dead0, dead1, r_mbs, r_fbs_eff, w):
    """Elementwise stage of one stacked iteration (Table I steps 3-4).

    Pure ufunc arithmetic over ``(B, N)`` stacks: each element's value
    depends only on the matching elements of the inputs, so every row
    is bit-equal to the scalar solver's ``(N,)`` computation.  The
    shares divide by the epsilon-guarded multipliers but the Lagrangian
    terms multiply by the *raw* ones, exactly as the scalar loop does
    (the distinction matters when a multiplier projects to zero).
    Written without in-place tricks so the optional numba JIT can
    compile the identical source.
    """
    rho0 = s_mbs / safe_lam0 - cost0
    rho0 = np.maximum(rho0, 0.0)
    rho0 = np.minimum(rho0, 1.0)
    rho0 = np.where(dead0, 0.0, rho0)
    rho1 = s_fbs / safe_lam1 - cost1
    rho1 = np.maximum(rho1, 0.0)
    rho1 = np.minimum(rho1, 1.0)
    rho1 = np.where(dead1, 0.0, rho1)
    util0 = s_mbs * np.log1p(rho0 * r_mbs / w) - lam0 * rho0
    util1 = s_fbs * np.log1p(rho1 * r_fbs_eff / w) - lam_user * rho1
    return rho0, rho1, util0 > util1


def _masked_row_sums(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-row ``values[row, mask[row]].sum()``, bit-exactly, stacked.

    The scalar solver sums the *compressed* selection, so numpy's
    summation order depends on the selected count ``k``: strict
    left-to-right for ``k < 8``, and for ``8 <= k <= 15`` the
    unrolled-by-8 kernel -- eight accumulators over the first eight
    elements, a fixed combine tree, then sequential remainder.  Both
    regimes tolerate zero padding exactly (adding ``+0.0`` to a
    non-negative partial sum is the identity), so replaying the two
    association patterns over columns of the zeroed stack reproduces
    every row's scalar sum without a Python-level per-row loop -- the
    sequential regime directly, the combine tree after left-justifying
    each row's selection.  Rows wide enough to engage numpy's block
    loop (``n >= 16``) fall back to the literal per-row computation.
    """
    b, n = values.shape
    if n >= 16:
        return np.array([values[row, mask[row]].sum() for row in range(b)])
    counts = mask.sum(axis=1)
    zeroed = np.where(mask, values, 0.0)
    # cumsum is sequential by definition, so its last column is the
    # strict left-to-right sum -- and because the zero padding is exact
    # (the values are non-negative, so no ``-0.0`` can appear and every
    # ``+0.0`` is the identity), the masked-out positions need not even
    # be packed to the right for this regime.
    seq = np.cumsum(zeroed, axis=1)[:, -1]
    if n < 8 or not (counts >= 8).any():
        return seq
    # Some row selected >= 8 elements: left-justify and replay the
    # unrolled-by-8 combine tree ((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))
    # with three stride-2 slice adds, then the sequential remainder.
    order = np.argsort(~mask, axis=1, kind="stable")
    packed = np.take_along_axis(zeroed, order, axis=1)
    head = packed[:, :8]
    pairs = head[:, 0::2] + head[:, 1::2]
    quads = pairs[:, 0::2] + pairs[:, 1::2]
    comb = quads[:, 0] + quads[:, 1]
    for j in range(8, n):
        comb = comb + packed[:, j]
    return np.where(counts < 8, seq, comb)


#: Below this active width the stacked iteration costs more than the
#: scalar loop (its per-iteration overhead is ~constant in B), so the
#: group finishes member-by-member via :func:`_finish_single`.
_MIN_STACK_WIDTH = 3


def _finish_single(member: _Member, lam: np.ndarray, start_t: int) -> None:
    """Scalar continuation of one member from iteration ``start_t``.

    A statement-for-statement twin of the scalar solver's accelerated
    inner loop (``repro.core.dual.DualDecompositionSolver.solve``),
    operating on the member's hoisted arrays: batch rows never interact,
    so running one member forward alone is bit-identical to keeping it
    in the stack -- and to the scalar solver itself.  Used for width-1
    groups (``start_t == 0`` replays the whole solve) and for the last
    members of a draining group, which would otherwise pay the stacked
    iteration's fixed overhead for a nearly-empty stack.
    """
    w, s_mbs, s_fbs = member.w, member.s_mbs, member.s_fbs
    r_mbs, r_fbs_eff = member.r_mbs, member.r_fbs_eff
    cost0, cost1 = member.cost0, member.cost1
    dead0, dead1 = member.dead0, member.dead1
    fbs_pos = member.fbs_pos
    n_stations = len(member.stations)
    step = member.step
    decay_after = member.decay_after
    choose_mbs = member.choose_mbs
    t = start_t
    with np.errstate(over="ignore"):
        for t in range(start_t + 1, member.max_iterations + 1):
            lam0 = lam[0]
            lam_user = lam[fbs_pos]
            safe_lam0 = lam0 if lam0 > _LAMBDA_EPS else _LAMBDA_EPS
            rho0 = s_mbs / safe_lam0 - cost0
            np.maximum(rho0, 0.0, out=rho0)
            np.minimum(rho0, 1.0, out=rho0)
            rho0[dead0] = 0.0
            safe_lam1 = np.where(lam_user > _LAMBDA_EPS, lam_user,
                                 _LAMBDA_EPS)
            rho1 = s_fbs / safe_lam1 - cost1
            np.maximum(rho1, 0.0, out=rho1)
            np.minimum(rho1, 1.0, out=rho1)
            rho1[dead1] = 0.0
            util0 = s_mbs * np.log1p(rho0 * r_mbs / w) - lam0 * rho0
            util1 = s_fbs * np.log1p(rho1 * r_fbs_eff / w) - lam_user * rho1
            choose_mbs = util0 > util1
            usage = np.zeros(n_stations)
            usage[0] = rho0[choose_mbs].sum()
            np.add.at(usage, fbs_pos[~choose_mbs], rho1[~choose_mbs])
            effective_step = (step if t <= decay_after
                              else step * decay_after / t)
            new_lam = np.maximum(0.0, lam - effective_step * (1.0 - usage))
            movement = float(np.square(new_lam - lam).sum())
            lam = new_lam
            if movement <= member.stop_sq:
                member.converged = True
                break
            if t % _STALL_CHECK_EVERY == 0 and t > decay_after:
                assignment = {member.users[j].user_id
                              for j in range(member.n) if choose_mbs[j]}
                candidate = solve_given_assignment(member.problem,
                                                   assignment)
                if member.best_recovered is None or (
                        candidate.objective
                        > member.best_recovered.objective + 1e-12):
                    member.best_recovered = candidate
                    member.stagnant_checks = 0
                else:
                    member.stagnant_checks += 1
                    if member.stagnant_checks >= _STALL_PATIENCE:
                        break
    member.iterations = t
    member.choose_mbs = choose_mbs
    member.final_lam = lam


#: Resolved elementwise stage (numpy, or a numba JIT when opted in).
_STAGE = None


def _resolve_stage():
    """Feature-detect the optional numba JIT of the elementwise stage.

    Off by default: ``REPRO_NUMBA_BATCH=1`` opts in, and the JIT is used
    only if numba imports and compiles cleanly.  Every fallback lands on
    the reference numpy stage, so the environment can never change
    results -- only speed.
    """
    global _STAGE
    if _STAGE is None:
        _STAGE = _iteration_stage
        if os.environ.get(ENV_NUMBA, "0") == "1":
            try:
                import numba

                _STAGE = numba.njit(cache=False)(_iteration_stage)
            except Exception:  # pragma: no cover - numba not installed
                _STAGE = _iteration_stage
    return _STAGE


def solve_requests(requests: Sequence[SolveRequest]) -> List[DualSolution]:
    """Answer a batch of solve requests with the stacked kernel.

    Requests are grouped by problem shape ``(n_users, n_stations)`` --
    members of a group share their array stack; groups iterate
    independently.  Returns one :class:`DualSolution` per request, in
    request order, bit-identical to answering each request with
    :func:`answer_request` (asserted by
    ``tests/core/test_batched_allocation.py``).
    """
    results: List[Optional[DualSolution]] = [None] * len(requests)
    groups: Dict[tuple, List[tuple]] = {}
    for index, request in enumerate(requests):
        member = _Member(request)
        groups.setdefault((member.n, len(member.stations)), []).append(
            (index, member))
    for (_, n_stations), entries in groups.items():
        _solve_group([member for _, member in entries], n_stations)
        for index, member in entries:
            results[index] = member.finalize()
    return results


def _solve_group(members: List[_Member], n_stations: int) -> None:
    """Run the masked stacked iteration for one same-shape group.

    All members start at iteration 1 together and only ever *freeze*
    (converge, stall out, or exhaust their budget), so the global
    iteration counter ``t`` equals every active member's own iteration
    count -- the step-decay schedule and the stall-check cadence need no
    per-member clock.  The hot loop is fully stacked (see the module
    docstring for the reduction-order argument); Python-level per-member
    work happens only on the slow path -- a convergence, a budget
    exhaustion, or a stall-check tick every ``_STALL_CHECK_EVERY``
    iterations.  Frozen rows are compressed out of the stack (fancy
    indexing copies values exactly), never recomputed.
    """
    stage = _resolve_stage()
    # Stack the per-member constants; row b of each array is member b's
    # (N,) vector, so elementwise ops per row match the scalar path.
    w = np.stack([m.w for m in members])
    s_mbs = np.stack([m.s_mbs for m in members])
    s_fbs = np.stack([m.s_fbs for m in members])
    r_mbs = np.stack([m.r_mbs for m in members])
    r_fbs_eff = np.stack([m.r_fbs_eff for m in members])
    cost0 = np.stack([m.cost0 for m in members])
    cost1 = np.stack([m.cost1 for m in members])
    dead0 = np.stack([m.dead0 for m in members])
    dead1 = np.stack([m.dead1 for m in members])
    fbs_pos = np.stack([m.fbs_pos for m in members])
    lam = np.stack([m.lam for m in members])
    steps = np.array([m.step for m in members])
    decays = np.array([float(m.decay_after) for m in members])
    stop_sqs = np.array([m.stop_sq for m in members])
    active = list(members)
    row_offsets = np.arange(len(active))[:, None] * n_stations
    flat_pos = row_offsets + fbs_pos
    min_budget = min(m.max_iterations for m in active)
    min_decay = float(decays.min())
    t = 0
    with np.errstate(over="ignore"):
        while active:
            if len(active) < _MIN_STACK_WIDTH:
                # Too narrow for the stack's fixed per-iteration cost:
                # finish the remaining members one by one on the scalar
                # loop (rows are independent, so this is exact).
                for row, member in enumerate(active):
                    _finish_single(member, lam[row], t)
                return
            t += 1
            # Elementwise stage, stacked: shares and branch choices.
            lam0 = lam[:, 0:1]
            lam_user = np.take_along_axis(lam, fbs_pos, axis=1)
            # The multipliers are projected non-negative, so the scalar
            # path's epsilon guard (``x if x > eps else eps``) is exactly
            # one ``maximum`` here.
            safe_lam0 = np.maximum(lam0, _LAMBDA_EPS)
            safe_lam1 = np.maximum(lam_user, _LAMBDA_EPS)
            rho0, rho1, choose_mbs = stage(
                lam0, lam_user, safe_lam0, safe_lam1, s_mbs, s_fbs,
                cost0, cost1, dead0, dead1, r_mbs, r_fbs_eff, w)
            # Reduction stage, also stacked, but with the scalar operand
            # order preserved per row: the MBS usage replays numpy's
            # compressed-sum association (_masked_row_sums), the FBS
            # usage runs one flattened ``np.add.at`` whose row-major
            # element order is each row's scalar order (rows touch
            # disjoint buckets), and the movement norm reduces along the
            # contiguous last axis -- the same per-row kernel the scalar
            # ``.sum()`` uses.
            not_choose = ~choose_mbs
            usage = np.zeros((len(active), n_stations))
            usage[:, 0] = _masked_row_sums(rho0, choose_mbs)
            np.add.at(usage.reshape(-1), flat_pos[not_choose],
                      rho1[not_choose])
            if t <= min_decay:
                effective_step = steps
            else:
                effective_step = np.where(t <= decays, steps,
                                          steps * decays / t)
            new_lam = np.maximum(
                0.0, lam - effective_step[:, None] * (1.0 - usage))
            movement = np.square(new_lam - lam).sum(axis=1)
            lam = new_lam
            converged = movement <= stop_sqs
            stall_tick = t % _STALL_CHECK_EVERY == 0
            if not (stall_tick or t >= min_budget or converged.any()):
                continue
            # Slow path: at least one member converged, hit its budget,
            # or reached a stall-check tick.
            finished: List[int] = []
            for row, member in enumerate(active):
                done = False
                if converged[row]:
                    member.converged = True
                    done = True
                elif stall_tick and t > member.decay_after:
                    # Limit-cycle exit, per member (scalar semantics:
                    # recover the primal, stop after three stagnant
                    # recoveries).
                    choose = choose_mbs[row]
                    assignment = {member.users[j].user_id
                                  for j in range(member.n) if choose[j]}
                    candidate = solve_given_assignment(member.problem,
                                                       assignment)
                    if member.best_recovered is None or (
                            candidate.objective
                            > member.best_recovered.objective + 1e-12):
                        member.best_recovered = candidate
                        member.stagnant_checks = 0
                    else:
                        member.stagnant_checks += 1
                        if member.stagnant_checks >= _STALL_PATIENCE:
                            done = True
                if not done and t >= member.max_iterations:
                    done = True
                if done:
                    member.iterations = t
                    member.choose_mbs = choose_mbs[row].copy()
                    member.final_lam = lam[row].copy()
                    finished.append(row)
            if finished:
                keep = np.ones(len(active), dtype=bool)
                keep[finished] = False
                active = [m for row, m in enumerate(active) if keep[row]]
                if not active:
                    break
                w = w[keep]
                s_mbs = s_mbs[keep]
                s_fbs = s_fbs[keep]
                r_mbs = r_mbs[keep]
                r_fbs_eff = r_fbs_eff[keep]
                cost0 = cost0[keep]
                cost1 = cost1[keep]
                dead0 = dead0[keep]
                dead1 = dead1[keep]
                fbs_pos = fbs_pos[keep]
                lam = lam[keep]
                steps = steps[keep]
                decays = decays[keep]
                stop_sqs = stop_sqs[keep]
                row_offsets = np.arange(len(active))[:, None] * n_stations
                flat_pos = row_offsets + fbs_pos
                min_budget = min(m.max_iterations for m in active)
                min_decay = float(decays.min())
