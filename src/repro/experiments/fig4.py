"""Fig. 4 -- single-FBS experiments.

* **Fig. 4(a)**: convergence of the two dual variables ``lambda_0`` and
  ``lambda_1`` of the distributed algorithm (Table I) on one slot
  problem.
* **Fig. 4(b)**: received quality vs number of licensed channels
  ``M in {4, 6, 8, 10, 12}``.
* **Fig. 4(c)**: received quality vs channel utilisation
  ``eta in {0.3 .. 0.7}`` (``p10`` fixed at 0.3, ``p01`` adjusted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.dual import DualDecompositionSolver
from repro.experiments.scenarios import single_fbs_scenario, utilization_to_p01
from repro.obs.logging import get_logger
from repro.sim.engine import SimulationEngine
from repro.sim.runner import SweepResult, sweep

logger = get_logger(__name__)

#: Sweep points exactly as in the paper.
FIG4B_CHANNELS = (4, 6, 8, 10, 12)
FIG4C_UTILIZATIONS = (0.3, 0.4, 0.5, 0.6, 0.7)
FIG4_SCHEMES = ("proposed-fast", "heuristic1", "heuristic2")


@dataclass(frozen=True)
class Fig4aResult:
    """Dual-variable convergence trace (Fig. 4a).

    Attributes
    ----------
    trace:
        Array of shape ``(iterations + 1, n_stations)``; column order in
        ``stations`` (0 is the MBS multiplier ``lambda_0``).
    stations:
        Station ids per column.
    iterations:
        Iterations until the stopping rule fired.
    converged:
        Whether the Table I stopping criterion was met.
    """

    trace: np.ndarray
    stations: List[int]
    iterations: int
    converged: bool


def run_fig4a(*, seed: int = 7, step_size: float = 0.004,
              threshold: float = 3e-7, max_iterations: int = 2000) -> Fig4aResult:
    """Regenerate Fig. 4(a): run Table I on one representative slot.

    The engine simulates the sensing/access phases of the first slot of
    the Section V-A scenario; the recorded slot problem is then solved by
    the subgradient iteration with trace recording enabled.  The default
    step size is chosen so convergence takes a few hundred iterations,
    matching the horizon of the paper's plot (their Fig. 4(a) converges
    by ~500 iterations; the absolute multiplier values are scale-
    dependent and not comparable).
    """
    logger.info("fig4a: seed %s, step size %s, threshold %s",
                seed, step_size, threshold)
    config = single_fbs_scenario(seed=seed)
    engine = SimulationEngine(config, record_slots=True)
    record = engine.step()
    solver = DualDecompositionSolver(
        step_size=step_size, threshold=threshold,
        max_iterations=max_iterations, record_trace=True)
    solution = solver.solve(record.problem)
    return Fig4aResult(
        trace=solution.trace,
        stations=solution.trace_stations,
        iterations=solution.iterations,
        converged=solution.converged,
    )


def run_fig4b(*, n_runs: int = 10, n_gops: int = 3, seed: int = 7,
              channels: Sequence[int] = FIG4B_CHANNELS,
              schemes: Sequence[str] = FIG4_SCHEMES,
              checkpoint_path=None, jobs=None, progress=None,
              cell_timeout=None, deadline=None,
              workspace=None, run_name=None) -> SweepResult:
    """Regenerate Fig. 4(b): PSNR vs number of licensed channels.

    ``checkpoint_path`` enables per-cell checkpoint/resume and ``jobs``
    multi-process execution with bit-identical results (see
    :func:`repro.sim.runner.sweep`); ``progress`` takes a
    :class:`~repro.exec.progress.ProgressTracker`-like telemetry sink;
    ``workspace`` / ``run_name`` register the run in a managed artifact
    workspace (see :mod:`repro.store.workspace`).
    """
    logger.info("fig4b: %d runs x %d GOPs, seed %s, channels %s, jobs %s",
                n_runs, n_gops, seed, list(channels), jobs)
    base = single_fbs_scenario(n_gops=n_gops, seed=seed)
    return sweep(base, "n_channels", list(channels), schemes, n_runs=n_runs,
                 checkpoint_path=checkpoint_path, jobs=jobs, progress=progress,
                 cell_timeout=cell_timeout, deadline=deadline,
                 workspace=workspace, run_name=run_name)


def run_fig4c(*, n_runs: int = 10, n_gops: int = 3, seed: int = 7,
              utilizations: Sequence[float] = FIG4C_UTILIZATIONS,
              schemes: Sequence[str] = FIG4_SCHEMES,
              checkpoint_path=None, jobs=None, progress=None,
              cell_timeout=None, deadline=None,
              workspace=None, run_name=None) -> SweepResult:
    """Regenerate Fig. 4(c): PSNR vs channel utilisation.

    ``checkpoint_path`` enables per-cell checkpoint/resume and ``jobs``
    multi-process execution with bit-identical results (see
    :func:`repro.sim.runner.sweep`); ``progress`` takes a
    :class:`~repro.exec.progress.ProgressTracker`-like telemetry sink;
    ``workspace`` / ``run_name`` register the run in a managed artifact
    workspace (see :mod:`repro.store.workspace`).
    """
    logger.info("fig4c: %d runs x %d GOPs, seed %s, utilizations %s, jobs %s",
                n_runs, n_gops, seed, list(utilizations), jobs)
    base = single_fbs_scenario(n_gops=n_gops, seed=seed)
    result = sweep(
        base, "utilization", list(utilizations), schemes, n_runs=n_runs,
        configure=lambda cfg, eta: cfg.replace(p01=utilization_to_p01(eta)),
        checkpoint_path=checkpoint_path, jobs=jobs, progress=progress,
        cell_timeout=cell_timeout, deadline=deadline,
        workspace=workspace, run_name=run_name)
    return result
