"""Library of MGS-encoded test sequences.

The paper streams three standard CIF (352x288) sequences, one per CR user
in the single-FBS scenario: *Bus*, *Mobile*, and *Harbor*, encoded with
the JVSM 9.13 H.264/SVC reference codec at GOP size 16 (Section V).

JVSM itself is not reproducible offline, but the optimisation consumes the
encoder output only through the linear rate-distortion model of eq. (9).
The constants below are representative of published MGS measurements for
these sequences (Wien et al., the paper's reference [5]): *Mobile* is the
hardest to encode (lowest base quality), *Bus* gains quality fastest with
rate, and *Harbor* sits in between.  Each encoding also has a finite MGS
enhancement rate (``max_rate_mbps``): a GOP carries only that many
enhancement bits, so a stream *saturates* once they are all delivered --
the physical mechanism that penalises winner-take-all scheduling.
Relative ordering -- which is all the reproduced figures depend on -- is
therefore preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.obs.metrics import global_registry, metrics_enabled
from repro.utils.errors import ConfigurationError
from repro.video.rd_model import MgsRateDistortion


@dataclass(frozen=True)
class VideoSequence:
    """An MGS-encoded video sequence.

    Attributes
    ----------
    name:
        Sequence name (e.g. ``"bus"``).
    resolution:
        ``(width, height)`` in pixels.
    frame_rate:
        Frames per second.
    gop_size:
        Group-of-pictures size in frames (16 in the paper's evaluation).
    rd:
        The sequence's MGS rate-distortion curve.
    """

    name: str
    resolution: Tuple[int, int]
    frame_rate: float
    gop_size: int
    rd: MgsRateDistortion

    def __post_init__(self) -> None:
        if self.gop_size <= 0:
            raise ConfigurationError(f"gop_size must be positive, got {self.gop_size}")
        if self.frame_rate <= 0:
            raise ConfigurationError(f"frame_rate must be positive, got {self.frame_rate}")
        width, height = self.resolution
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"resolution must be positive, got {self.resolution}")

    @property
    def gop_duration_s(self) -> float:
        """Wall-clock duration of one GOP."""
        return self.gop_size / self.frame_rate

    @property
    def base_psnr_db(self) -> float:
        """PSNR with only the base layer received (``alpha``)."""
        return self.rd.alpha_db


_CIF = (352, 288)

#: Representative MGS rate-distortion constants for the paper's three CIF
#: sequences (see module docstring for provenance).  alpha is the
#: base-layer Y-PSNR; beta the enhancement slope in dB/Mbps.
SEQUENCE_LIBRARY: Dict[str, VideoSequence] = {
    "bus": VideoSequence(
        name="bus", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=29.0, beta_db_per_mbps=32.0, max_rate_mbps=0.42),
    ),
    "mobile": VideoSequence(
        name="mobile", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=26.5, beta_db_per_mbps=28.0, max_rate_mbps=0.38),
    ),
    "harbor": VideoSequence(
        name="harbor", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=28.0, beta_db_per_mbps=30.0, max_rate_mbps=0.40),
    ),
    # Additional CIF sequences commonly used in the SVC literature, for
    # larger scenarios (interfering FBSs stream three videos per cell).
    "foreman": VideoSequence(
        name="foreman", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=30.5, beta_db_per_mbps=26.0, max_rate_mbps=0.46),
    ),
    "football": VideoSequence(
        name="football", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=27.5, beta_db_per_mbps=29.0, max_rate_mbps=0.44),
    ),
    "crew": VideoSequence(
        name="crew", resolution=_CIF, frame_rate=30.0, gop_size=16,
        rd=MgsRateDistortion(alpha_db=29.5, beta_db_per_mbps=27.0, max_rate_mbps=0.45),
    ),
}


#: Process-wide cache of per-slot R-D increment constants, keyed by
#: ``(sequence, bandwidth, deadline)``.  The engine used to recompute
#: ``beta * B / T`` for every user of every replication; a long sweep
#: asks for the same handful of entries millions of times, so the table
#: is built once per process and shared by every engine instance
#: (including ``--jobs`` pool workers, each of which warms its own).
_RD_SLOT_TABLE: Dict[Tuple[str, float, int], float] = {}

#: Plain hit/miss counts (always maintained; the Prometheus counters
#: below additionally export them when metrics collection is on).
rd_table_hits = 0
rd_table_misses = 0


def rd_slot_increment(name: str, bandwidth_mbps: float,
                      deadline_slots: int) -> float:
    """Cached ``R = beta * B / T`` lookup (bit-identical to the direct call).

    The cached value is exactly what
    :meth:`~repro.video.rd_model.MgsRateDistortion.slot_increment`
    returns for the same arguments -- the cache only avoids the repeated
    lookup/validation/arithmetic, never changes the float.
    """
    global rd_table_hits, rd_table_misses
    key = (name.lower(), float(bandwidth_mbps), int(deadline_slots))
    cached = _RD_SLOT_TABLE.get(key)
    hit = cached is not None
    if hit:
        rd_table_hits += 1
    else:
        rd_table_misses += 1
        cached = get_sequence(name).rd.slot_increment(
            bandwidth_mbps, deadline_slots)
        _RD_SLOT_TABLE[key] = cached
    if metrics_enabled():
        global_registry().counter(
            "repro_video_rd_table_requests_total",
            result="hit" if hit else "miss").inc()
    return cached


def reset_rd_table() -> None:
    """Clear the process-wide R-D table (tests only)."""
    global rd_table_hits, rd_table_misses
    _RD_SLOT_TABLE.clear()
    rd_table_hits = 0
    rd_table_misses = 0


def get_sequence(name: str) -> VideoSequence:
    """Look up a sequence by (case-insensitive) name.

    Raises
    ------
    ConfigurationError
        If the sequence is not in the library; the message lists the
        available names.
    """
    key = name.lower()
    if key not in SEQUENCE_LIBRARY:
        available = ", ".join(sorted(SEQUENCE_LIBRARY))
        raise ConfigurationError(f"unknown sequence {name!r}; available: {available}")
    return SEQUENCE_LIBRARY[key]
