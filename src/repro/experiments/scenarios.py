"""The paper's two evaluation scenarios (Section V).

Scenario 1 (Section V-A): ``M = 8`` licensed channels with
``P01 = 0.4, P10 = 0.3``, collision cap ``gamma = 0.2``, one FBS serving
three CR users streaming the CIF sequences *Bus*, *Mobile*, and *Harbor*
(GOP 16), delivery deadline ``T = 10``, sensing errors
``epsilon = delta = 0.3``.

Scenario 2 (Section V-B): three FBSs, three users each (each FBS streams
the same three sequences), interference graph the chain 1 - 2 - 3 of
Fig. 5.

The paper does not publish its geometry; we place the femtocells
250-340 m from the MBS with users 6-15 m from their FBS, which yields
macro-link success probabilities around 0.55-0.85 and femto links around
0.88-0.99 -- the regime the paper's Introduction motivates (femtocells
bring high-SINR short links; the macro tier is reliable-ish but
bandwidth-limited), with enough loss on both tiers that the success
probabilities in problem (12) actually matter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.interference import interference_graph_from_edges
from repro.net.nodes import CrUser, FemtoBaseStation, MacroBaseStation
from repro.net.topology import Topology, build_topology
from repro.sim.config import ScenarioConfig
from repro.utils.errors import ConfigurationError

#: The three sequences of Section V, in the paper's user order.
PAPER_SEQUENCES = ("bus", "mobile", "harbor")

#: Offsets (metres) of the three users around their FBS; within every
#: cell users sit at slightly different distances so link conditions are
#: heterogeneous, as multiuser-diversity comparisons require.
_USER_OFFSETS = ((6.0, 0.0), (0.0, 10.0), (-13.0, -7.0))


def single_fbs_scenario(*, n_channels: int = 8, p01: float = 0.4, p10: float = 0.3,
                        gamma: float = 0.2, false_alarm: float = 0.3,
                        miss_detection: float = 0.3, deadline_slots: int = 10,
                        common_bandwidth_mbps: float = 0.3,
                        licensed_bandwidth_mbps: float = 0.3,
                        n_gops: int = 3, scheme: str = "proposed",
                        seed: Optional[int] = 7) -> ScenarioConfig:
    """Scenario 1: a single FBS and three CR users (Section V-A)."""
    mbs = MacroBaseStation(position=(0.0, 0.0))
    fbs = FemtoBaseStation(fbs_id=1, position=(280.0, 0.0))
    users = _place_users(fbs_positions=[(280.0, 0.0)], users_per_fbs=3)
    topology = build_topology(mbs, [fbs], users)
    return ScenarioConfig(
        topology=topology, scheme=scheme, n_channels=n_channels, p01=p01,
        p10=p10, gamma=gamma, common_bandwidth_mbps=common_bandwidth_mbps,
        licensed_bandwidth_mbps=licensed_bandwidth_mbps,
        false_alarm=false_alarm, miss_detection=miss_detection,
        deadline_slots=deadline_slots, n_gops=n_gops, seed=seed,
    )


def interfering_fbs_scenario(*, n_channels: int = 8, p01: float = 0.4,
                             p10: float = 0.3, gamma: float = 0.2,
                             false_alarm: float = 0.3, miss_detection: float = 0.3,
                             deadline_slots: int = 10,
                             common_bandwidth_mbps: float = 0.3,
                             licensed_bandwidth_mbps: float = 0.3,
                             n_gops: int = 3, scheme: str = "proposed",
                             seed: Optional[int] = 7) -> ScenarioConfig:
    """Scenario 2: three FBSs in the Fig. 5 chain, three users each."""
    mbs = MacroBaseStation(position=(0.0, 0.0))
    positions = [(250.0, 0.0), (295.0, 0.0), (340.0, 0.0)]
    fbss = [FemtoBaseStation(fbs_id=i + 1, position=positions[i])
            for i in range(3)]
    # Coverage radius 30 m: disks of FBS 1-2 and 2-3 overlap (45 m apart),
    # 1-3 do not (90 m apart) -- exactly the Fig. 5 chain.  The explicit
    # edge list pins the topology against geometry drift.
    graph = interference_graph_from_edges([1, 2, 3], [(1, 2), (2, 3)])
    users = _place_users(fbs_positions=positions, users_per_fbs=3)
    topology = build_topology(mbs, fbss, users, interference_graph=graph)
    return ScenarioConfig(
        topology=topology, scheme=scheme, n_channels=n_channels, p01=p01,
        p10=p10, gamma=gamma, common_bandwidth_mbps=common_bandwidth_mbps,
        licensed_bandwidth_mbps=licensed_bandwidth_mbps,
        false_alarm=false_alarm, miss_detection=miss_detection,
        deadline_slots=deadline_slots, n_gops=n_gops, seed=seed,
    )


def utilization_to_p01(eta: float, p10: float = 0.3) -> float:
    """``p01`` that achieves utilisation ``eta`` with the paper's ``p10``.

    Inverts eq. (1); the utilisation sweeps of Figs. 4(c) and 6(a) keep
    ``p10 = 0.3`` and move ``p01``.
    """
    if not 0.0 < eta < 1.0:
        raise ConfigurationError(f"eta must be in (0, 1), got {eta}")
    p01 = eta * p10 / (1.0 - eta)
    if p01 > 1.0:
        raise ConfigurationError(
            f"eta={eta} unreachable with p10={p10} (needs p01={p01:.3f} > 1)")
    return p01


def _place_users(fbs_positions: Sequence, users_per_fbs: int) -> List[CrUser]:
    """Users at fixed offsets around each FBS, streaming the paper's videos."""
    if users_per_fbs > len(_USER_OFFSETS):
        raise ConfigurationError(
            f"at most {len(_USER_OFFSETS)} users per FBS supported, "
            f"got {users_per_fbs}")
    users: List[CrUser] = []
    user_id = 0
    for fbs_index, (fx, fy) in enumerate(fbs_positions):
        for user_index in range(users_per_fbs):
            dx, dy = _USER_OFFSETS[user_index]
            users.append(CrUser(
                user_id=user_id,
                position=(fx + dx, fy + dy),
                sequence_name=PAPER_SEQUENCES[user_index % len(PAPER_SEQUENCES)],
                fbs_id=fbs_index + 1,
            ))
            user_id += 1
    return users

# -- registry entries -------------------------------------------------------
# Direct calls to the builders above keep working unchanged; building
# through the registry additionally stamps the generator's identity onto
# the config (see repro.registry.scenarios).
from repro.registry.scenarios import ScenarioInfo, register_scenario  # noqa: E402

register_scenario(ScenarioInfo(
    name="single",
    factory=single_fbs_scenario,
    description="Section V-A scenario 1: one FBS, three CR users, no "
                "interference.",
))
register_scenario(ScenarioInfo(
    name="interfering",
    factory=interfering_fbs_scenario,
    description="Section V-A scenario 2: three FBSs in the Fig. 5 "
                "interference chain, three users each.",
))
