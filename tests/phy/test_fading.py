"""Tests for the block-fading models (Section III-D, eq. 8)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.fading import BlockFadingLink, NakagamiFading, RayleighFading
from repro.utils.errors import ConfigurationError


class TestRayleigh:
    def test_closed_form_cdf(self):
        fading = RayleighFading(mean_sinr=10.0)
        assert fading.cdf(10.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_cdf_at_zero(self):
        assert RayleighFading(5.0).cdf(0.0) == 0.0

    def test_cdf_monotone(self):
        fading = RayleighFading(3.0)
        values = [fading.cdf(h) for h in (0.1, 1.0, 5.0, 20.0)]
        assert values == sorted(values)

    def test_empirical_cdf_agrees(self):
        fading = RayleighFading(mean_sinr=8.0)
        samples = fading.sample(np.random.default_rng(0), size=100000)
        for threshold in (2.0, 8.0, 16.0):
            empirical = float(np.mean(samples <= threshold))
            assert empirical == pytest.approx(fading.cdf(threshold), abs=0.01)

    def test_sample_mean(self):
        samples = RayleighFading(4.0).sample(np.random.default_rng(1), size=50000)
        assert float(samples.mean()) == pytest.approx(4.0, rel=0.05)

    def test_invalid_mean(self):
        with pytest.raises(ConfigurationError):
            RayleighFading(0.0)

    @given(mean=st.floats(0.1, 100.0), threshold=st.floats(0.0, 100.0))
    @settings(max_examples=50)
    def test_property_cdf_in_unit_interval(self, mean, threshold):
        assert 0.0 <= RayleighFading(mean).cdf(threshold) <= 1.0


class TestNakagami:
    def test_m1_reduces_to_rayleigh(self):
        nakagami = NakagamiFading(mean_sinr=6.0, m=1.0)
        rayleigh = RayleighFading(mean_sinr=6.0)
        for threshold in (0.5, 3.0, 6.0, 20.0):
            assert nakagami.cdf(threshold) == pytest.approx(
                rayleigh.cdf(threshold), abs=1e-10)

    def test_larger_m_less_fading(self):
        # More line-of-sight (larger m) => fewer deep fades => lower
        # outage at thresholds below the mean.
        mild = NakagamiFading(10.0, m=4.0)
        severe = NakagamiFading(10.0, m=0.5)
        assert mild.cdf(2.0) < severe.cdf(2.0)

    def test_empirical_cdf_agrees(self):
        fading = NakagamiFading(mean_sinr=5.0, m=2.0)
        samples = fading.sample(np.random.default_rng(2), size=100000)
        assert float(np.mean(samples <= 5.0)) == pytest.approx(
            fading.cdf(5.0), abs=0.01)

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            NakagamiFading(5.0, m=0.2)


class TestBlockFadingLink:
    def test_loss_probability_is_cdf_at_threshold(self):
        fading = RayleighFading(10.0)
        link = BlockFadingLink(fading, threshold=3.0, rng=0)
        assert link.loss_probability == pytest.approx(fading.cdf(3.0))
        assert link.success_probability == pytest.approx(1.0 - fading.cdf(3.0))

    def test_realize_slot_matches_probability(self):
        link = BlockFadingLink(RayleighFading(10.0), threshold=3.0, rng=1)
        successes = sum(link.realize_slot() for _ in range(30000))
        assert successes / 30000 == pytest.approx(link.success_probability, abs=0.01)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            BlockFadingLink(RayleighFading(10.0), threshold=0.0)
