"""Femtocell CR network model.

Geometry and node layer (Section III-A, Fig. 1): one macro base station
(MBS) whose single antenna is tuned to the common channel, ``N`` femto
base stations (FBS) with ``M`` sensing antennas each, and ``K`` CR users
with one software-radio transceiver each.  Users associate with their
nearest FBS; FBSs whose coverage disks overlap interfere and cannot reuse
the same licensed channel (Definition 1, the interference graph).
"""

from repro.net.interference import (
    build_interference_graph,
    interference_graph_from_edges,
    max_degree,
)
from repro.net.nodes import CrUser, FemtoBaseStation, MacroBaseStation
from repro.net.topology import Topology, build_topology

__all__ = [
    "CrUser",
    "FemtoBaseStation",
    "MacroBaseStation",
    "Topology",
    "build_interference_graph",
    "build_topology",
    "interference_graph_from_edges",
    "max_degree",
]
