"""Tests for the exception hierarchy."""

import pytest

from repro.utils.errors import (
    AllocationFailedError,
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    InfeasibleProblemError,
    NumericalError,
    ReproError,
)


def test_all_derive_from_repro_error():
    for exc_type in (ConfigurationError, ConvergenceError,
                     InfeasibleProblemError, NumericalError,
                     AllocationFailedError, CheckpointError):
        assert issubclass(exc_type, ReproError)


def test_allocation_failed_error_carries_events():
    err = AllocationFailedError("all failed", events=("a", "b"))
    assert err.events == ("a", "b")
    assert AllocationFailedError("no events").events == ()


def test_configuration_error_is_value_error():
    # Callers validating scalars can catch ValueError idiomatically.
    with pytest.raises(ValueError):
        raise ConfigurationError("bad input")


def test_convergence_error_carries_diagnostics():
    err = ConvergenceError("did not converge", iterations=100, residual=0.5)
    assert err.iterations == 100
    assert err.residual == 0.5
    assert "did not converge" in str(err)


def test_convergence_error_defaults():
    err = ConvergenceError("msg")
    assert err.iterations is None
    assert err.residual is None


def test_single_except_clause_catches_library_errors():
    for exc in (ConfigurationError("a"), ConvergenceError("b"),
                InfeasibleProblemError("c")):
        try:
            raise exc
        except ReproError:
            pass
