"""Scenario/artifact store: config-hash caching and managed workspaces.

Three layers (DESIGN.md §14):

* :mod:`repro.store.confighash` -- deterministic content hashing of
  scenario configurations (canonical JSON, stable float representation,
  numpy coercion, order independence);
* :mod:`repro.store.scenario_store` -- the build/run split's cache:
  :class:`ScenarioStore` serves :class:`~repro.sim.build.BuiltScenario`
  artifacts keyed by :func:`scenario_hash`, with
  :func:`build_scenario`/:func:`run_scenario` as the split entry points;
* :mod:`repro.store.workspace` -- :class:`FileWorkspace`, the managed
  on-disk layout (scenarios/, results/, checkpoints/, traces/,
  manifests/, jobs/) with an atomic JSON index and garbage collection.
"""

from repro.sim.build import BuiltScenario, build_scenario
from repro.store.confighash import (
    canonical_json,
    canonical_value,
    config_hash,
    hash_value,
    scenario_hash,
)
from repro.store.scenario_store import (
    ScenarioStore,
    activate_workspace,
    built_for,
    default_store,
    reset_default_store,
    run_scenario,
    scenario_engine,
    set_default_store,
    store_enabled,
    use_store,
)
from repro.store.workspace import ACTIVE_JOB_STATES, FileWorkspace

__all__ = [
    "ACTIVE_JOB_STATES",
    "BuiltScenario",
    "FileWorkspace",
    "ScenarioStore",
    "activate_workspace",
    "build_scenario",
    "built_for",
    "canonical_json",
    "canonical_value",
    "config_hash",
    "default_store",
    "hash_value",
    "reset_default_store",
    "run_scenario",
    "scenario_engine",
    "scenario_hash",
    "set_default_store",
    "store_enabled",
    "use_store",
]
