"""Property-based tests for the greedy channel allocation.

Hypothesis generates random interference graphs, slot problems, and
posteriors; the greedy must always respect the interference constraint,
produce a monotone non-decreasing objective trajectory, and keep its
bound accounting consistent.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import closed_form_upper_bound, tighter_upper_bound
from repro.core.dual import fast_solve
from repro.core.greedy import GreedyChannelAllocator
from repro.core.problem import SlotProblem, UserDemand
from repro.net.interference import is_valid_allocation


@st.composite
def greedy_instances(draw):
    """A random (graph, problem, channels, posteriors) instance."""
    n_fbss = draw(st.integers(1, 4))
    fbs_ids = list(range(1, n_fbss + 1))
    graph = nx.Graph()
    graph.add_nodes_from(fbs_ids)
    for a in fbs_ids:
        for b in fbs_ids:
            if a < b and draw(st.booleans()):
                graph.add_edge(a, b)

    n_users = draw(st.integers(1, 5))
    users = [
        UserDemand(
            user_id=j,
            fbs_id=draw(st.sampled_from(fbs_ids)),
            w_prev=draw(st.floats(25.0, 40.0)),
            success_mbs=draw(st.floats(0.3, 1.0)),
            success_fbs=draw(st.floats(0.3, 1.0)),
            r_mbs=draw(st.floats(0.0, 2.0)),
            r_fbs=draw(st.floats(0.0, 1.5)),
        )
        for j in range(n_users)
    ]
    problem = SlotProblem(users=users,
                          expected_channels={i: 0.0 for i in fbs_ids})
    n_channels = draw(st.integers(0, 4))
    channels = list(range(n_channels))
    posteriors = {m: draw(st.floats(0.05, 1.0)) for m in channels}
    return graph, problem, channels, posteriors


class TestGreedyProperties:
    @given(instance=greedy_instances())
    @settings(max_examples=40, deadline=None)
    def test_interference_constraint_always_holds(self, instance):
        graph, problem, channels, posteriors = instance
        allocator = GreedyChannelAllocator(graph, solver=fast_solve)
        result = allocator.allocate(problem, channels, posteriors)
        assert is_valid_allocation(graph, result.channel_allocation)

    @given(instance=greedy_instances())
    @settings(max_examples=40, deadline=None)
    def test_gains_non_negative_and_telescoping(self, instance):
        graph, problem, channels, posteriors = instance
        allocator = GreedyChannelAllocator(graph, solver=fast_solve)
        result = allocator.allocate(problem, channels, posteriors)
        trace = result.trace
        assert all(step.gain >= 0.0 for step in trace.steps)
        assert trace.q_final >= trace.q_empty - 1e-12
        assert trace.total_gain == pytest.approx(
            trace.q_final - trace.q_empty, abs=1e-9)

    @given(instance=greedy_instances())
    @settings(max_examples=40, deadline=None)
    def test_bound_ordering(self, instance):
        graph, problem, channels, posteriors = instance
        allocator = GreedyChannelAllocator(graph, solver=fast_solve)
        trace = allocator.allocate(problem, channels, posteriors).trace
        assert tighter_upper_bound(trace) >= trace.q_final - 1e-12
        assert closed_form_upper_bound(trace) >= tighter_upper_bound(trace) - 1e-9

    @given(instance=greedy_instances())
    @settings(max_examples=25, deadline=None)
    def test_every_channel_allocated_somewhere_when_useful(self, instance):
        """Table III runs until C is empty: a channel is left unused by an
        FBS only if a neighbour claimed it."""
        graph, problem, channels, posteriors = instance
        allocator = GreedyChannelAllocator(graph, solver=fast_solve)
        result = allocator.allocate(problem, channels, posteriors)
        alloc = result.channel_allocation
        for fbs_id in problem.fbs_ids:
            for m in channels:
                if m in alloc[fbs_id]:
                    continue
                blocked = any(m in alloc.get(neighbor, set())
                              for neighbor in graph.neighbors(fbs_id))
                assert blocked, (
                    f"channel {m} unallocated to FBS {fbs_id} without a "
                    f"neighbour conflict")
