"""GOP deadline bookkeeping.

Each GOP of a real-time stream must be fully scheduled within the next
``T`` time slots (Section III-E); at the deadline, undelivered packets are
discarded and the next GOP window starts.  :class:`GopClock` tracks the
position inside the current window and the accumulated PSNR state
``W_j^t`` that problem (10) evolves:

    W_j^t = W_j^{t-1} + xi_0 rho_0 R_0 + xi_1 rho_1 G_t R_1

with ``W_j^0 = alpha_j`` (base layer assumed protected/delivered, as the
recursion in Section IV-A initialises).
"""

from __future__ import annotations

from typing import List

from repro.utils.errors import ConfigurationError
from repro.video.sequences import VideoSequence


class GopClock:
    """Deadline window and PSNR accumulator for one video stream.

    Parameters
    ----------
    sequence:
        The video being streamed.
    deadline_slots:
        ``T`` -- slots available to deliver each GOP (10 in the paper).
    """

    def __init__(self, sequence: VideoSequence, deadline_slots: int, *,
                 quantum_db: float = 0.0) -> None:
        if deadline_slots <= 0:
            raise ConfigurationError(
                f"deadline_slots must be positive, got {deadline_slots}")
        if quantum_db < 0:
            raise ConfigurationError(
                f"quantum_db must be non-negative, got {quantum_db}")
        self.sequence = sequence
        self.deadline_slots = int(deadline_slots)
        #: NAL-unit granularity: when positive, a GOP's recorded quality
        #: is the base layer plus whole multiples of this quantum -- MGS
        #: decoders can only use fully received NAL units (Section I), so
        #: a partially delivered unit contributes nothing.  Zero keeps the
        #: paper's fluid model.  May be updated between GOP windows (the
        #: engine rescales it when complexity traces are enabled).
        self.quantum_db = float(quantum_db)
        self._slot_in_window = 0
        self._psnr_db = sequence.base_psnr_db
        self._completed_gop_psnrs: List[float] = []

    @property
    def slot_in_window(self) -> int:
        """Slots already consumed in the current GOP window (0..T-1)."""
        return self._slot_in_window

    @property
    def slots_remaining(self) -> int:
        """Slots left before the current GOP's deadline."""
        return self.deadline_slots - self._slot_in_window

    @property
    def psnr_db(self) -> float:
        """Current accumulated PSNR state ``W_j^t`` of the open GOP."""
        return self._psnr_db

    @property
    def completed_gop_psnrs(self) -> List[float]:
        """Final PSNR of every GOP whose deadline has passed."""
        return list(self._completed_gop_psnrs)

    @property
    def max_psnr_db(self) -> float:
        """Quality ceiling of one GOP (all enhancement NAL units received)."""
        return self.sequence.rd.max_psnr_db

    @property
    def headroom_db(self) -> float:
        """Quality still deliverable before the current GOP saturates.

        Zero once every enhancement bit of the GOP has been delivered --
        at that point the base station simply has no more data to send
        this window, so schedulers should treat the stream as inactive.
        """
        if self.max_psnr_db == float("inf"):
            return float("inf")
        return max(0.0, self.max_psnr_db - self._psnr_db)

    def add_quality(self, increment_db: float) -> float:
        """Fold one slot's realised PSNR increment into ``W_j^t``.

        The accumulator saturates at the GOP's quality ceiling (a GOP only
        carries ``max_rate_mbps`` worth of enhancement bits); the method
        returns the *effective* increment after clamping, so callers can
        account for wasted capacity.
        """
        if increment_db < 0:
            raise ConfigurationError(
                f"increment_db must be non-negative, got {increment_db}")
        effective = min(increment_db, self.headroom_db)
        self._psnr_db += effective
        return effective

    def tick(self) -> bool:
        """Advance one slot; returns ``True`` if a GOP deadline elapsed.

        On deadline expiry the accumulated PSNR is recorded, the window
        resets, and the accumulator restarts at the base-layer quality
        (overdue enhancement packets are discarded, per Section III-E).
        """
        self._slot_in_window += 1
        if self._slot_in_window < self.deadline_slots:
            return False
        recorded = self._psnr_db
        if self.quantum_db > 0.0:
            gain = recorded - self.sequence.base_psnr_db
            recorded = (self.sequence.base_psnr_db
                        + self.quantum_db * int(gain / self.quantum_db))
        self._completed_gop_psnrs.append(recorded)
        self._slot_in_window = 0
        self._psnr_db = self.sequence.base_psnr_db
        return True

    def mean_gop_psnr(self) -> float:
        """Average PSNR over completed GOPs (the figure-of-merit plotted).

        Falls back to the in-progress accumulator when no GOP has
        completed yet (e.g. horizons shorter than one deadline).
        """
        if not self._completed_gop_psnrs:
            return self._psnr_db
        return sum(self._completed_gop_psnrs) / len(self._completed_gop_psnrs)

    def __repr__(self) -> str:
        return (f"GopClock(sequence={self.sequence.name!r}, T={self.deadline_slots}, "
                f"slot={self._slot_in_window}, W={self._psnr_db:.2f} dB)")
