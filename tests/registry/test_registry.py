"""Registry error paths and capability-flag enforcement.

Covers the failure modes a third-party registration can hit: duplicate
names, unknown lookups (the error must list what *is* registered),
option passing to schemes that take none, capability-flag misuse (a
"batchable" scheme whose allocator cannot actually yield solve
requests), and the identity stamp's flow into the config hashes and
checkpoint headers.
"""

import pytest

from repro.core.allocator import get_allocator
from repro.core.heuristics import EqualAllocationHeuristic
from repro.exec.executor import _execute_cell
from repro.exec.plan import plan_campaign
from repro.experiments.scenarios import interfering_fbs_scenario
from repro.obs.metrics import enable_metrics, reset_metrics, scoped_registry
from repro.registry import SchemeInfo, scenario_registry, scheme_registry
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.config import ScenarioConfig
from repro.sim.fallback import fallback_chain_for
from repro.sim.lockstep import (
    batchable_schemes,
    plan_batch_groups,
    run_cells_lockstep,
)
from repro.sim.metrics import RunMetrics
from repro.store.confighash import config_hash, scenario_hash
from repro.utils.errors import CheckpointError, ConfigurationError


class TestSchemeRegistryErrors:
    def test_duplicate_registration_rejected(self):
        registry = scheme_registry()
        existing = registry.get("proposed")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(existing)

    def test_unknown_scheme_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_allocator("no-such-scheme")
        message = str(excinfo.value)
        for name in scheme_registry().names():
            assert name in message

    def test_unknown_scheme_rejected_by_config_validation(self):
        base = interfering_fbs_scenario(n_gops=1, seed=7)
        with pytest.raises(ConfigurationError) as excinfo:
            ScenarioConfig(topology=base.topology, scheme="no-such-scheme")
        assert "graph-coloring" in str(excinfo.value)

    def test_optionless_scheme_refuses_options(self):
        for scheme in ("heuristic1", "heuristic2", "graph-coloring"):
            with pytest.raises(ConfigurationError,
                               match="accepts no options"):
                get_allocator(scheme, warm_start=True)

    def test_temporary_registration_is_scoped(self):
        registry = scheme_registry()
        info = SchemeInfo(name="scoped-test-scheme",
                          factory=EqualAllocationHeuristic)
        with registry.temporarily(info):
            assert "scoped-test-scheme" in registry
        assert "scoped-test-scheme" not in registry


class TestScenarioRegistryErrors:
    def test_duplicate_registration_rejected(self):
        registry = scenario_registry()
        existing = registry.get("single")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(existing)

    def test_unknown_scenario_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            scenario_registry().build("no-such-scenario")
        message = str(excinfo.value)
        for name in scenario_registry().names():
            assert name in message


class TestGeneratorIdentity:
    def test_build_stamps_generator_and_params(self):
        config = scenario_registry().build(
            "interfering", n_channels=6, n_gops=1, seed=11,
            scheme="heuristic1")
        assert config.generator == "interfering"
        # Run-only parameters never enter the identity stamp.
        assert config.generator_params == (("n_channels", 6),)

    def test_schemes_share_one_scenario_hash(self):
        registry = scenario_registry()
        a = registry.build("interfering", n_channels=6, scheme="proposed")
        b = registry.build("interfering", n_channels=6, scheme="heuristic2")
        assert scenario_hash(a) == scenario_hash(b)
        assert config_hash(a) != config_hash(b)

    def test_generator_params_separate_scenario_hashes(self):
        registry = scenario_registry()
        a = registry.build("city-grid", rows=2, cols=2, n_gops=1)
        b = registry.build("city-grid", rows=2, cols=3, n_gops=1)
        assert scenario_hash(a) != scenario_hash(b)

    def test_generators_never_alias(self):
        """Same physical knobs through different generators hash apart."""
        registry = scenario_registry()
        a = registry.build("single", n_channels=6)
        b = registry.build("interfering", n_channels=6)
        assert scenario_hash(a) != scenario_hash(b)

    def test_checkpoint_rejects_different_base_config(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        SweepCheckpoint(path, parameter="n_channels", values=[4],
                        schemes=["heuristic1"], n_runs=1, seed=7,
                        config_hash="a" * 64)
        with pytest.raises(CheckpointError, match="different base config"):
            SweepCheckpoint(path, parameter="n_channels", values=[4],
                            schemes=["heuristic1"], n_runs=1, seed=7,
                            config_hash="b" * 64)

    def test_checkpoint_without_config_hash_resumes_tolerantly(
            self, tmp_path):
        """Headers from before the config field keep resuming."""
        path = tmp_path / "sweep.ckpt"
        SweepCheckpoint(path, parameter="n_channels", values=[4],
                        schemes=["heuristic1"], n_runs=1, seed=7)
        resumed = SweepCheckpoint(path, parameter="n_channels", values=[4],
                                  schemes=["heuristic1"], n_runs=1, seed=7,
                                  config_hash="a" * 64)
        assert len(resumed) == 0


class _InlineOnlyAllocator:
    """Claims batchability via its registration but cannot yield solve
    requests -- the capability-misuse case lockstep must refuse."""

    name = "inline-only"

    def __init__(self):
        self._inner = EqualAllocationHeuristic()

    def allocate(self, problem):
        return self._inner.allocate(problem)


class TestCapabilityFlags:
    def test_batchable_schemes_follow_the_registry(self):
        assert batchable_schemes() == ("proposed", "proposed-fast")

    def test_non_batchable_schemes_plan_as_singletons(self):
        config = interfering_fbs_scenario(
            n_gops=1, n_channels=4, seed=123, scheme="graph-coloring")
        groups = plan_batch_groups(plan_campaign(config, 3).cells)
        assert [len(group) for group in groups] == [1, 1, 1]

    def test_misdeclared_batchable_scheme_is_refused_inline(self):
        """A scheme registered batchable whose allocator cannot yield is
        refused by lockstep (counted) and degrades to the inline solve."""
        info = SchemeInfo(name="inline-only", factory=_InlineOnlyAllocator,
                          batchable=True)
        with scheme_registry().temporarily(info):
            config = interfering_fbs_scenario(
                n_gops=1, n_channels=4, seed=123, scheme="inline-only")
            cells = plan_campaign(config, 2).cells
            groups = plan_batch_groups(cells)
            assert [len(group) for group in groups] == [2]

            enable_metrics(True)
            try:
                with scoped_registry() as registry:
                    outcomes = run_cells_lockstep(cells, _execute_cell)
                    counters = registry.counters()
            finally:
                enable_metrics(False)
                reset_metrics()

        assert counters["repro_lockstep_refused_total"] == 2
        assert counters["repro_lockstep_escapes_total"] == 2
        assert counters["repro_lockstep_batched_solves_total"] == 0
        assert [key for key, _, _ in outcomes] == [c.key for c in cells]
        for _, result, _ in outcomes:
            assert isinstance(result, RunMetrics)

    def test_fallback_chain_orders_by_registration(self):
        primary = scheme_registry().create("heuristic2")
        chain = fallback_chain_for("heuristic2", primary)
        assert [name for name, _ in chain.allocators] == [
            "heuristic2", "heuristic1"]
        # A fallback-eligible primary is not appended to itself.
        h1 = scheme_registry().create("heuristic1")
        assert [name for name, _ in
                fallback_chain_for("heuristic1", h1).allocators] == [
            "heuristic1"]
