"""HTTP service end to end: ServiceClient against a live server.

One module-scoped server (port 0, shared workspace) backs every test;
jobs here are real ``python -m repro`` subprocesses, which is the point:
the byte-identity test below is the ISSUE's acceptance criterion that an
HTTP-fetched result equals a direct CLI run bit for bit, across
different ``--jobs`` counts.
"""

import json
import threading

import pytest

from repro import cli
from repro.experiments.compare import compare_results
from repro.serve import ServiceClient, ServiceError, make_server

JOB_TIMEOUT = 300.0


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    workspace = tmp_path_factory.mktemp("serve-ws")
    server = make_server(workspace, port=0, job_workers=2)
    server.manager.start()
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1}, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60)
    yield client, server
    server.shutdown()
    thread.join(timeout=10)
    server.manager.stop(graceful=False, timeout=30)
    server.server_close()


class TestDiscovery:
    def test_health_reports_ok(self, service):
        client, _ = service
        payload = client.health()
        assert payload["status"] == "ok"
        assert "version" in payload

    def test_schemes_and_scenarios_come_from_the_registries(self, service):
        client, _ = service
        schemes = {entry["name"] for entry in client.schemes()}
        scenarios = {entry["name"] for entry in client.scenarios()}
        assert "proposed-fast" in schemes
        assert "single" in scenarios

    def test_metrics_exposition_is_prometheus_text(self, service):
        client, _ = service
        text = client.metrics_text()
        assert "repro_serve_jobs{state=" in text


class TestValidationOverHttp:
    def test_bad_spec_is_a_400_with_the_validator_message(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="command must be one of") \
                as err:
            client.submit({"command": "fig99"})
        assert err.value.status == 400

    def test_unknown_job_is_a_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="unknown job") as err:
            client.job("job-9999")
        assert err.value.status == 404

    def test_unknown_path_is_a_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client._json("GET", "/api/nothing/here")
        assert err.value.status == 404

    def test_unknown_artifact_is_a_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="unknown job resource"):
            client._request("GET", "/api/jobs/job-0001/frobnicate")


class TestSweepJob:
    """Submit fig4b over HTTP and hold it to the CLI's bytes."""

    SPEC = {"command": "fig4b", "runs": 1, "gops": 1, "jobs": 2}

    def test_http_result_is_byte_identical_to_a_direct_cli_run(
            self, service, tmp_path):
        client, _ = service
        job = client.submit(self.SPEC)
        assert job.state in ("queued", "building", "running", "succeeded")
        done = client.wait(job.id, timeout=JOB_TIMEOUT)
        assert done.state == "succeeded"
        assert done.exit_code == 0
        fetched = client.result_bytes(job.id)
        # Direct CLI run at a *different* --jobs count.
        direct = tmp_path / "direct.json"
        assert cli.main(["fig4b", "--runs", "1", "--gops", "1",
                         "--jobs", "1", "--output", str(direct)]) == 0
        assert fetched == direct.read_bytes()

    def test_compare_agrees_the_results_are_identical(self, service,
                                                      tmp_path):
        client, server = service
        job = client.submit(self.SPEC)  # dedup: reuses the finished job
        client.wait(job.id, timeout=JOB_TIMEOUT)
        served = server.manager.artifact_path(job.id, "result")
        direct = tmp_path / "direct.json"
        assert cli.main(["fig4b", "--runs", "1", "--gops", "1",
                         "--output", str(direct)]) == 0
        report = compare_results(direct, served)
        assert report.bit_identical is True
        assert report.provenance_agrees is True

    def test_manifest_travels_with_the_result(self, service):
        client, _ = service
        job = client.submit(self.SPEC)
        client.wait(job.id, timeout=JOB_TIMEOUT)
        manifest = client.manifest(job.id)
        assert manifest["command"] == "fig4b"
        assert manifest["runs"] == 1
        assert manifest["config_fingerprint"]

    def test_events_replay_the_sweep_and_paginate(self, service):
        client, _ = service
        job = client.submit(self.SPEC)
        client.wait(job.id, timeout=JOB_TIMEOUT)
        events, next_index = client.events(job.id)
        cells = [e for e in events if e["kind"] == "cell"]
        assert cells and all(e["ok"] for e in cells)
        assert cells[0]["label"] == job.id
        assert next_index == len(events)
        later, _ = client.events(job.id, since=next_index)
        assert later == []

    def test_resubmission_hits_the_dedup_cache(self, service):
        client, _ = service
        job = client.submit(self.SPEC)
        client.wait(job.id, timeout=JOB_TIMEOUT)
        again = client.submit(dict(self.SPEC, jobs=1))
        assert again.deduplicated is True
        assert again.id == job.id
        forced = client.submit(self.SPEC, force=True)
        assert forced.deduplicated is False
        assert forced.id != job.id
        final = client.wait(forced.id, timeout=JOB_TIMEOUT)
        assert final.state == "succeeded"

    def test_job_listing_includes_the_job(self, service):
        client, _ = service
        job = client.submit(self.SPEC)
        assert job.id in [view.id for view in client.jobs()]


class TestSimulateJob:
    def test_report_trace_and_log_are_all_fetchable(self, service):
        client, _ = service
        job = client.submit({"command": "simulate", "runs": 1, "gops": 1,
                             "scheme": "heuristic1", "trace": True})
        done = client.wait(job.id, timeout=JOB_TIMEOUT)
        assert done.state == "succeeded"
        # A simulate campaign's result is its formatted stdout report.
        report = client.result_bytes(job.id).decode("utf-8")
        assert "mean PSNR" in report
        events = list(client.trace_events(job.id))
        assert events
        assert events[-1]["kind"] == "trace-summary"
        # Campaigns narrate nothing (no sweep cells), but the log
        # endpoint must still serve the (empty) stderr capture.
        assert isinstance(client.log_text(job.id), str)

    def test_cancel_of_a_finished_job_is_a_noop(self, service):
        client, _ = service
        job = client.submit({"command": "simulate", "runs": 1, "gops": 1,
                             "scheme": "heuristic1", "trace": True})
        done = client.wait(job.id, timeout=JOB_TIMEOUT)
        view = client.cancel(job.id)
        assert view.state == done.state

    def test_completed_job_metrics_are_absorbed(self, service):
        client, _ = service
        text = client.metrics_text()
        assert "repro_serve_jobs_submitted_total" in text
        assert 'repro_serve_jobs_completed_total{state="succeeded"}' in text
        # The folded-in child registries carry engine series the server
        # process itself never touched.
        own_only = all(line.startswith(("#", "repro_serve_"))
                       for line in text.splitlines() if line.strip())
        assert not own_only
