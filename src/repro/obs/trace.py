"""Span tracer writing bounded, append-only JSONL event traces.

Spans nest run -> replication -> slot -> phase, with solver-level child
spans (``dual-solve``) below the allocation phase.  Each span becomes
one JSON line when it closes::

    {"kind": "phase", "name": "allocation", "span": 17, "parent": 16,
     "pid": 4242, "t": 1722950000.123, "dur": 0.0042,
     "attrs": {"slot": 3}}

Design rules (see DESIGN.md section 12):

* **Zero overhead when disabled.**  Producers call
  :func:`active_tracer` -- a single module-global read returning
  ``None`` -- and skip all span bookkeeping when no tracer is active.
* **Single writer per file.**  A trace file is only ever appended to by
  the process that opened it.  Under ``--jobs N`` the executor forks
  workers that inherit the active tracer; the first span recorded in a
  child notices the PID change and transparently re-opens a per-process
  sidecar (``<path>.<pid>``), so the parent file never sees interleaved
  writes.  (This relies on the fork start method -- the Linux default --
  where children inherit module globals; under spawn, workers simply
  trace nothing, which is safe but silent.)
* **Bounded.**  At most ``max_events`` lines are written per file;
  further spans are counted but dropped, and a final ``trace-summary``
  event reports the totals so truncation is never silent.
* **Buffered, flushed at boundaries.**  Lines accumulate in memory and
  reach the OS in batches: on every ``replication``/``run`` span close,
  whenever :data:`FLUSH_BUFFER_LINES` lines pile up, and on
  :meth:`SpanTracer.close`.  (The original per-line ``flush()`` showed
  up as measurable syscall overhead on the hot slot/phase path in
  BENCH_engine.json.)  Crash durability moves to explicit
  :meth:`SpanTracer.flush` calls: the supervisor's hard-abort path and
  the registered shutdown flushers drain the buffer before the process
  dies, and a forked worker starts its sidecar with an empty buffer so
  the parent's unflushed lines are never duplicated.

Telemetry stays out-of-band: tracing never touches RNG streams or
results, so simulation output is byte-identical with tracing on or off.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from contextlib import contextmanager
from typing import IO, Dict, Iterator, List, Optional

#: Default cap on events written per trace file.
DEFAULT_MAX_EVENTS = 200_000

#: Buffered lines are written through at the close of a replication- or
#: run-level span, or whenever this many accumulate, whichever is first.
FLUSH_BUFFER_LINES = 64

#: Span kinds whose close marks a natural durability boundary.
_FLUSH_KINDS = frozenset({"replication", "run"})


class SpanTracer:
    """Append-only JSONL span/event writer bound to one output path."""

    def __init__(self, path: str, *, max_events: int = DEFAULT_MAX_EVENTS,
                 collect_phases: bool = True) -> None:
        self.path = str(path)
        self.max_events = int(max_events)
        #: Whether per-phase (and solver) spans are recorded; slot and
        #: coarser spans are always on.  ``--profile`` forces this True.
        self.collect_phases = bool(collect_phases)
        self._pid = os.getpid()
        self._file: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")
        self._next_id = 0
        self._written = 0
        self._dropped = 0
        self._stack: List[int] = []
        self._buffer: List[str] = []
        self._closed = False
        self._notes: Dict[str, object] = {}

    # Writer plumbing ----------------------------------------------------

    def _writer(self) -> Optional[IO[str]]:
        """The file for *this* process, re-opening a sidecar after fork.

        A forked worker inherits the parent's open file object; writing
        to it would interleave with the parent's output.  Detect the PID
        change and switch to ``<path>.<pid>`` with fresh counters so the
        single-writer rule holds for every file.
        """
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._file = open(f"{self.path}.{pid}", "a", encoding="utf-8")
            self._written = 0
            self._dropped = 0
            self._closed = False
            self._notes = {}  # the parent's annotations are not ours
            self._buffer = []  # ...nor are its unflushed lines
        return self._file

    def _write(self, record: dict) -> None:
        out = self._writer()
        if out is None or self._closed:
            return
        if self._written >= self.max_events:
            self._dropped += 1
            return
        # Stamp after _writer(): a forked child's first record must carry
        # the child's pid, which _writer() just detected.
        record["pid"] = self._pid
        self._buffer.append(json.dumps(record, separators=(",", ":")) + "\n")
        self._written += 1
        if (record.get("kind") in _FLUSH_KINDS
                or len(self._buffer) >= FLUSH_BUFFER_LINES):
            self.flush()

    def flush(self) -> None:
        """Drain buffered lines to the OS (crash paths call this).

        Durability boundary for everything recorded so far in this
        process; a no-op between boundaries when the buffer is empty.
        """
        out = self._writer()
        if out is None:
            return
        if self._buffer:
            out.write("".join(self._buffer))
            self._buffer.clear()
        out.flush()

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # Recording API ------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, kind: str = "span", **attrs: object) -> Iterator[int]:
        """Record a timed span enclosing the ``with`` body.

        Yields the span id; nesting is tracked per process, so a span
        opened inside another records it as ``parent``.
        """
        span_id = self._new_id()
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            duration = time.perf_counter() - start
            if self._stack and self._stack[-1] == span_id:
                self._stack.pop()
            record = {"kind": kind, "name": name, "span": span_id,
                      "parent": parent, "pid": self._pid, "t": start_wall,
                      "dur": duration}
            if attrs:
                record["attrs"] = attrs
            self._write(record)

    def emit_span(self, name: str, *, kind: str = "span",
                  seconds: float, **attrs: object) -> int:
        """Record an externally-timed span ending now.

        For producers that already measure their own duration (the
        engine's ``_mark_phase``): the span closes at call time with
        the given length instead of wrapping a ``with`` block.
        """
        span_id = self._new_id()
        parent = self._stack[-1] if self._stack else None
        record = {"kind": kind, "name": name, "span": span_id,
                  "parent": parent, "pid": self._pid,
                  "t": time.time() - seconds, "dur": float(seconds)}
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        return span_id

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named counter carried on the trace-summary trailer.

        Supervision events (cell timeouts, shutdown signals, deadline
        aborts) bump here so the trailer answers "did anything unusual
        happen in this run?" without scanning every event line.
        """
        self._notes[name] = int(self._notes.get(name, 0)) + int(amount)

    def note(self, **attrs: object) -> None:
        """Attach arbitrary key/value annotations to the trailer."""
        self._notes.update(attrs)

    def event(self, name: str, *, kind: str = "event", **attrs: object) -> int:
        """Record an instantaneous event (e.g. a degradation)."""
        span_id = self._new_id()
        parent = self._stack[-1] if self._stack else None
        record = {"kind": kind, "name": name, "span": span_id,
                  "parent": parent, "pid": self._pid, "t": time.time()}
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        return span_id

    # Lifecycle ----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events dropped in this process because the cap was reached."""
        return self._dropped

    @property
    def written(self) -> int:
        """Events recorded by this process so far (buffered or on disk)."""
        return self._written

    def close(self) -> None:
        """Write the trailing ``trace-summary`` line and close the file.

        Drains the buffer first, so every recorded line precedes the
        trailer.  Only closes the file owned by the current process;
        idempotent.
        """
        out = self._writer()
        if out is None or self._closed:
            return
        attrs = {"written": self._written, "dropped": self._dropped,
                 "max_events": self.max_events}
        attrs.update(self._notes)
        summary = {"kind": "trace-summary", "name": "trace-summary",
                   "span": self._new_id(), "parent": None, "pid": self._pid,
                   "t": time.time(), "attrs": attrs}
        self._buffer.append(json.dumps(summary, separators=(",", ":")) + "\n")
        self.flush()
        self._closed = True
        out.close()
        self._file = None


#: The process-wide active tracer (None = tracing disabled).
_ACTIVE: Optional[SpanTracer] = None


def active_tracer() -> Optional[SpanTracer]:
    """The active tracer, or ``None`` when tracing is off.

    This is the zero-overhead gate: every producer checks it before any
    span bookkeeping, and with tracing disabled the check is a single
    module attribute read.
    """
    return _ACTIVE


def activate(tracer: SpanTracer) -> SpanTracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not tracer:
        _ACTIVE.close()
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    """Close and clear the active tracer (no-op when tracing is off)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


@contextmanager
def maybe_span(name: str, *, kind: str = "span", **attrs: object) -> Iterator[Optional[int]]:
    """``tracer.span(...)`` if tracing is on, else a no-op context."""
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, kind=kind, **attrs) as span_id:
        yield span_id


def iter_trace(path: str) -> Iterator[dict]:
    """Stream a JSONL trace file as parsed event dicts, one per line.

    Generator form of :func:`read_trace`: only one line is ever held in
    memory, so a consumer (e.g. the job service's trace endpoint) can
    relay a multi-hundred-thousand-event file without loading it whole.
    Tolerates a truncated final line (crash mid-write): complete lines
    before it are still yielded, then iteration stops.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                return


def read_trace(path: str) -> List[dict]:
    """Parse a JSONL trace file back into a list of event dicts.

    Eager form of :func:`iter_trace` (same truncation tolerance), kept
    for callers that want the whole trace for analysis.
    """
    return list(iter_trace(path))


atexit.register(deactivate)
