"""Registry and cross-scheme conformance suites."""
