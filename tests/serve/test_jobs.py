"""JobManager unit surface: validation, dedup, records, cancel, exits.

Everything here runs against an *unstarted* manager -- no worker
threads, no subprocesses -- so submit/cancel/record behaviour is tested
pure.  End-to-end execution lives in test_api.py and test_lifecycle.py.
"""

import json

import pytest

from repro.exec.supervisor import (
    EXIT_DEADLINE,
    EXIT_FAILED_RUNS,
    EXIT_HARD_ABORT,
    EXIT_INTERRUPTED,
)
from repro.experiments.fig4 import FIG4B_CHANNELS
from repro.serve.jobs import (
    ALLOWED_COMMANDS,
    MAX_AUTO_RESUMES,
    SWEEP_COMMANDS,
    JobError,
    JobManager,
    plan_scenario_hashes,
    spec_hash,
    validate_spec,
)


@pytest.fixture
def manager(tmp_path):
    # Deliberately never start()ed: queued jobs stay queued.
    return JobManager(tmp_path / "ws", job_workers=1)


class TestValidateSpec:
    def test_defaults_filled(self):
        spec = validate_spec({"command": "fig4b"})
        assert spec["runs"] == 10
        assert spec["gops"] == 3
        assert spec["jobs"] == 1
        assert spec["seed"] == 7
        assert spec["trace"] is False
        assert spec["cell_timeout"] is None
        assert spec["deadline"] is None
        assert spec["scenario"] is None

    def test_non_object_rejected(self):
        with pytest.raises(JobError, match="JSON object"):
            validate_spec(["fig4b"])

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown spec field.*bogus"):
            validate_spec({"command": "fig4b", "bogus": 1})

    def test_unknown_command_rejected(self):
        with pytest.raises(JobError, match="command must be one of"):
            validate_spec({"command": "fig99"})

    @pytest.mark.parametrize("field", ["runs", "gops", "jobs"])
    @pytest.mark.parametrize("bad", [0, -1, "3", 2.5, True])
    def test_bad_counts_rejected(self, field, bad):
        with pytest.raises(JobError, match=field):
            validate_spec({"command": "fig4b", field: bad})

    def test_bad_timeouts_rejected(self):
        with pytest.raises(JobError, match="cell_timeout"):
            validate_spec({"command": "fig4b", "cell_timeout": -1})
        with pytest.raises(JobError, match="deadline"):
            validate_spec({"command": "fig4b", "deadline": 0})

    def test_scenario_fields_only_valid_for_simulate(self):
        with pytest.raises(JobError, match="only valid"):
            validate_spec({"command": "fig4b", "scenario": "single"})

    def test_simulate_defaults(self):
        spec = validate_spec({"command": "simulate", "runs": 1, "gops": 1})
        assert spec["scenario"] == "single"
        assert spec["scheme"] == "proposed-fast"
        assert spec["scenario_args"] == {}

    def test_simulate_unknown_scheme_rejected(self):
        with pytest.raises(JobError, match="unknown scheme"):
            validate_spec({"command": "simulate", "scheme": "magic"})

    def test_simulate_unknown_scenario_rejected(self):
        with pytest.raises(JobError, match="unknown scenario"):
            validate_spec({"command": "simulate", "scenario": "nowhere"})

    def test_simulate_bad_scenario_args_fail_at_submit(self):
        with pytest.raises(JobError, match="rejected its arguments"):
            validate_spec({"command": "simulate",
                           "scenario_args": {"not_a_knob": 1}})


class TestSpecHash:
    def test_execution_knobs_do_not_change_the_hash(self):
        base = validate_spec({"command": "fig4b", "runs": 2, "gops": 1})
        tweaked = validate_spec({"command": "fig4b", "runs": 2, "gops": 1,
                                 "jobs": 8, "cell_timeout": 30,
                                 "deadline": 600, "trace": True})
        assert spec_hash(base) == spec_hash(tweaked)

    def test_result_determining_fields_change_the_hash(self):
        base = validate_spec({"command": "fig4b", "runs": 2, "gops": 1})
        for other in ({"command": "fig4c", "runs": 2, "gops": 1},
                      {"command": "fig4b", "runs": 3, "gops": 1},
                      {"command": "fig4b", "runs": 2, "gops": 2},
                      {"command": "fig4b", "runs": 2, "gops": 1, "seed": 8}):
            assert spec_hash(validate_spec(other)) != spec_hash(base)


class TestPlanScenarioHashes:
    def test_fig4b_hashes_one_config_per_channel_count(self):
        spec = validate_spec({"command": "fig4b", "runs": 1, "gops": 1})
        hashes = plan_scenario_hashes(spec)
        assert len(hashes) == len(FIG4B_CHANNELS)
        assert len(set(hashes)) == len(hashes)

    def test_every_command_plans_at_least_one_hash(self):
        for command in ALLOWED_COMMANDS:
            spec = validate_spec({"command": command, "runs": 1, "gops": 1})
            assert plan_scenario_hashes(spec), command


class TestSubmit:
    def test_record_is_persisted_and_queued(self, manager):
        record, deduplicated = manager.submit(
            {"command": "fig4b", "runs": 1, "gops": 1})
        assert deduplicated is False
        assert record["state"] == "queued"
        path = manager.workspace.job_path(record["id"])
        assert path.exists()
        on_disk = json.loads(path.read_text())
        assert on_disk["spec_hash"] == record["spec_hash"]
        assert on_disk["scenario_hashes"] == record["scenario_hashes"]

    def test_sweep_jobs_get_a_checkpoint_simulate_jobs_do_not(self, manager):
        sweep, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        sim, _ = manager.submit({"command": "simulate", "runs": 1, "gops": 1})
        assert "checkpoint" in sweep["artifacts"]
        assert "result" in sweep["artifacts"]
        assert "checkpoint" not in sim["artifacts"]
        assert "result" not in sim["artifacts"]  # report goes to stdout
        assert "stdout" in sim["artifacts"]

    def test_dedup_ignores_execution_knobs(self, manager):
        first, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1,
                                   "jobs": 1})
        second, deduplicated = manager.submit(
            {"command": "fig4b", "runs": 1, "gops": 1, "jobs": 4})
        assert deduplicated is True
        assert second["id"] == first["id"]

    def test_force_bypasses_dedup(self, manager):
        first, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        second, deduplicated = manager.submit(
            {"command": "fig4b", "runs": 1, "gops": 1}, force=True)
        assert deduplicated is False
        assert second["id"] != first["id"]

    def test_failed_jobs_never_satisfy_dedup(self, manager):
        first, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        first["state"] = "failed"
        manager.workspace.save_job(first)
        second, deduplicated = manager.submit(
            {"command": "fig4b", "runs": 1, "gops": 1})
        assert deduplicated is False
        assert second["id"] != first["id"]

    def test_ids_are_sequential(self, manager):
        a, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        b, _ = manager.submit({"command": "fig4c", "runs": 1, "gops": 1})
        assert a["id"] == "job-0001"
        assert b["id"] == "job-0002"

    def test_invalid_spec_is_not_recorded(self, manager):
        with pytest.raises(JobError):
            manager.submit({"command": "fig4b", "runs": 0})
        assert manager.jobs() == []


class TestCancel:
    def test_cancel_queued_is_immediate(self, manager):
        record, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        cancelled = manager.cancel(record["id"])
        assert cancelled["state"] == "cancelled"
        assert cancelled["error"] == "cancelled while queued"

    def test_cancel_terminal_is_a_noop(self, manager):
        record, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        manager.cancel(record["id"])
        again = manager.cancel(record["id"])
        assert again["state"] == "cancelled"
        assert again["cancel_requested"] == 1

    def test_unknown_job_raises(self, manager):
        with pytest.raises(JobError, match="unknown job"):
            manager.cancel("job-9999")


class TestExitCodeMapping:
    """_apply_exit_code maps the CLI exit contract onto job states."""

    def outcome(self, manager, code, **record_fields):
        record = {"id": "job-0001", "state": "running", "resumed": 0,
                  "cancel_requested": 0, **record_fields}
        requeue = manager._apply_exit_code(record, code)
        return record, requeue

    def test_zero_succeeds(self, manager):
        record, requeue = self.outcome(manager, 0)
        assert record["state"] == "succeeded"
        assert record["error"] is None
        assert requeue is False

    def test_failed_runs_and_deadline_fail(self, manager):
        record, _ = self.outcome(manager, EXIT_FAILED_RUNS)
        assert record["state"] == "failed"
        record, _ = self.outcome(manager, EXIT_DEADLINE)
        assert record["state"] == "failed"
        assert "deadline" in record["error"]

    def test_hard_abort_cancels(self, manager):
        record, _ = self.outcome(manager, EXIT_HARD_ABORT)
        assert record["state"] == "cancelled"

    def test_interrupt_after_cancel_request_cancels(self, manager):
        record, requeue = self.outcome(manager, EXIT_INTERRUPTED,
                                       cancel_requested=1)
        assert record["state"] == "cancelled"
        assert requeue is False

    def test_external_interrupt_requeues_for_resume(self, manager):
        record, requeue = self.outcome(manager, EXIT_INTERRUPTED)
        assert record["state"] == "queued"
        assert record["resumed"] == 1
        assert requeue is True

    def test_auto_resume_is_capped(self, manager):
        record, requeue = self.outcome(manager, EXIT_INTERRUPTED,
                                       resumed=MAX_AUTO_RESUMES)
        assert record["state"] == "failed"
        assert requeue is False

    def test_unexpected_code_fails(self, manager):
        record, _ = self.outcome(manager, 77)
        assert record["state"] == "failed"
        assert "77" in record["error"]


class TestEventsAndArtifacts:
    def test_events_before_any_log_are_empty(self, manager):
        record, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        events, next_index = manager.events(record["id"])
        assert events == []
        assert next_index == 0

    def test_events_parse_the_log_and_paginate(self, manager):
        record, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        log = manager.workspace.root / record["artifacts"]["log"]
        log.write_text(
            "[job-0001] resuming: 2 cell(s) already checkpointed, 5 to run\n"
            "engine noise that is not a progress line\n"
            "[job-0001] 3/5 proposed-fast|0|0 ok 0.41s\n"
            "[job-0001] 4/5 proposed-fast|0|1 FAILED 0.10s\n")
        events, next_index = manager.events(record["id"])
        assert [e["kind"] for e in events] == ["resume", "cell", "cell"]
        assert events[0]["cached"] == 2
        assert events[1]["ok"] is True
        assert events[2]["ok"] is False
        assert next_index == 3
        later, next_index = manager.events(record["id"], since=3)
        assert later == []
        assert next_index == 3

    def test_artifact_path_rejects_unknown_names(self, manager):
        record, _ = manager.submit({"command": "simulate", "runs": 1,
                                    "gops": 1})
        with pytest.raises(JobError, match="no 'checkpoint' artifact"):
            manager.artifact_path(record["id"], "checkpoint")

    def test_artifact_path_rejects_unknown_jobs(self, manager):
        with pytest.raises(JobError, match="unknown job"):
            manager.artifact_path("job-9999", "log")


class TestMetricsAndRecovery:
    def test_state_gauges_and_counters_reflect_the_queue(self, manager):
        a, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        manager.submit({"command": "fig4c", "runs": 1, "gops": 1})
        manager.submit({"command": "fig4b", "runs": 1, "gops": 1})  # dedup
        manager.cancel(a["id"])
        registry = manager.metrics_registry()
        counters = registry.counters()
        gauges = registry.gauges()
        assert counters["repro_serve_jobs_submitted_total"] == 2
        assert counters["repro_serve_jobs_deduplicated_total"] == 1
        assert gauges['repro_serve_jobs{state="queued"}'] == 1
        assert gauges['repro_serve_jobs{state="cancelled"}'] == 1
        assert gauges['repro_serve_jobs{state="running"}'] == 0

    def test_recover_requeues_stale_records(self, manager):
        record, _ = manager.submit({"command": "fig4b", "runs": 1, "gops": 1})
        record["state"] = "running"
        record["pid"] = None
        manager.workspace.save_job(record)
        done, _ = manager.submit({"command": "fig4c", "runs": 1, "gops": 1})
        done["state"] = "succeeded"
        manager.workspace.save_job(done)
        fresh = JobManager(manager.workspace, job_workers=1)
        requeued = fresh.recover()
        assert requeued == [record["id"]]
        recovered = fresh.get(record["id"])
        assert recovered["state"] == "queued"
        assert recovered["resumed"] == 1
        assert fresh.get(done["id"])["state"] == "succeeded"
