"""Tests for the Spectrum / LicensedChannel layer."""

import numpy as np
import pytest

from repro.spectrum.channel import ChannelState, LicensedChannel, Spectrum
from repro.utils.errors import ConfigurationError


class TestLicensedChannel:
    def test_reports_parameters(self):
        channel = LicensedChannel(2, 0.4, 0.3, bandwidth_mbps=0.3,
                                  max_collision_probability=0.2, rng=0)
        assert channel.index == 2
        assert channel.utilization == pytest.approx(0.4 / 0.7)
        assert channel.state in (0, 1)
        assert "LicensedChannel" in repr(channel)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            LicensedChannel(-1, 0.4, 0.3, 0.3, 0.2)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LicensedChannel(0, 0.4, 0.3, 0.0, 0.2)


class TestSpectrum:
    def test_scalar_parameters_broadcast(self):
        spectrum = Spectrum(4, 0.4, 0.3, rng=0)
        assert len(spectrum) == 4
        assert np.allclose(spectrum.utilizations, 0.4 / 0.7)
        assert np.allclose(spectrum.collision_caps, 0.2)

    def test_per_channel_parameters(self):
        spectrum = Spectrum(2, [0.2, 0.6], [0.4, 0.2], rng=0)
        assert spectrum.utilizations[0] == pytest.approx(0.2 / 0.6)
        assert spectrum.utilizations[1] == pytest.approx(0.6 / 0.8)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Spectrum(3, [0.4, 0.3], 0.3)

    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            Spectrum(0, 0.4, 0.3)

    def test_advance_moves_all_channels(self):
        spectrum = Spectrum(8, 0.4, 0.3, rng=1)
        state = spectrum.advance()
        assert isinstance(state, ChannelState)
        assert state.slot == 1
        assert state.occupancy.shape == (8,)
        assert spectrum.slot == 1

    def test_current_state_does_not_advance(self):
        spectrum = Spectrum(4, 0.4, 0.3, rng=1)
        before = spectrum.current_state()
        after = spectrum.current_state()
        assert before.slot == after.slot == 0
        assert np.array_equal(before.occupancy, after.occupancy)

    def test_channels_evolve_independently(self):
        # Same parameters but independent child streams: long trajectories
        # of two channels should not be identical.
        spectrum = Spectrum(2, 0.4, 0.3, rng=2)
        history = np.array([spectrum.advance().occupancy for _ in range(200)])
        assert not np.array_equal(history[:, 0], history[:, 1])

    def test_reproducible_with_seed(self):
        hist_a = [Spectrum(3, 0.4, 0.3, rng=9).advance().occupancy for _ in range(1)]
        hist_b = [Spectrum(3, 0.4, 0.3, rng=9).advance().occupancy for _ in range(1)]
        assert np.array_equal(hist_a[0], hist_b[0])

    def test_empirical_utilization(self):
        spectrum = Spectrum(4, 0.4, 0.3, rng=3)
        occupancy = np.array([spectrum.advance().occupancy for _ in range(20000)])
        assert np.allclose(occupancy.mean(axis=0), 0.4 / 0.7, atol=0.03)


class TestChannelState:
    def test_idle_busy_partition(self):
        state = ChannelState(slot=1, occupancy=np.array([0, 1, 0, 1], dtype=np.int8))
        assert state.idle_channels.tolist() == [0, 2]
        assert state.busy_channels.tolist() == [1, 3]
        assert state.is_idle(0)
        assert not state.is_idle(1)
