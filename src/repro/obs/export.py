"""Exporters: Prometheus text dump, run manifests, result provenance.

Three export surfaces, split by determinism:

* :func:`prometheus_text` / :func:`write_metrics` -- render a
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format for ``--metrics PATH``.
* :func:`result_provenance` -- the *deterministic* reproducibility
  triple (seed, backend, acceleration flag) that
  :func:`repro.experiments.results_io.save_results` embeds in saved
  results so an archived figure can be regenerated from the artifact
  alone.  Only values identical across identical runs may go here:
  anything else would break the byte-identity guarantee on results.
* :func:`run_manifest` / :func:`write_manifest` -- the full provenance
  record (config fingerprint, package version, interpreter, wall clock)
  written as a *sidecar* file next to results and traces.  The wall
  clock makes it inherently nondeterministic, which is exactly why it
  lives outside the results payload.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import IO, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry, split_sample_name
from repro.utils.fsio import atomic_write_text

_PRIMITIVES = (bool, int, float, str, type(None))


def _describe_field(value: object) -> object:
    """A JSON-stable description of one config field for fingerprinting."""
    if isinstance(value, _PRIMITIVES):
        return value
    n_users = getattr(value, "n_users", None)
    n_fbss = getattr(value, "n_fbss", None)
    if n_users is not None and n_fbss is not None:
        graph = getattr(value, "interference_graph", None)
        edges = (sorted(tuple(sorted(edge)) for edge in graph.edges)
                 if graph is not None else [])
        return {"n_users": int(n_users), "n_fbss": int(n_fbss),
                "interference_edges": edges}
    return type(value).__name__


def config_fingerprint(config: object) -> str:
    """Deterministic sha256 over a scenario config's field values.

    Primitive fields are hashed as-is; the topology is summarized by
    its size and interference edges; anything else (e.g. a fault plan)
    contributes only its type name.  Two configs that would drive the
    engine identically therefore hash identically across processes and
    sessions.
    """
    if is_dataclass(config):
        described = {f.name: _describe_field(getattr(config, f.name))
                     for f in fields(config)}
    else:
        described = {"repr": repr(config)}
    payload = json.dumps(described, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_provenance(*, seed: Optional[int] = None,
                      config: Optional[object] = None) -> dict:
    """The deterministic provenance record embedded in saved results.

    ``backend`` reports which slot-phase implementation the engine
    selects under the current acceleration switch (batched when
    acceleration is on, scalar oracle otherwise).  Passing the run's
    base ``config`` additionally records its
    :func:`~repro.store.confighash.scenario_hash` and
    :func:`~repro.store.confighash.config_hash`, tying the result file
    to the cached scenario artifact it was computed against (both are
    pure functions of the config, so they never break byte-identity
    between identical runs -- store on or off).
    """
    from repro.core.accel import acceleration_enabled

    accelerated = acceleration_enabled()
    provenance = {"seed": seed,
                  "backend": "batched" if accelerated else "scalar",
                  "acceleration": accelerated}
    if config is not None:
        from repro.store.confighash import config_hash, scenario_hash

        try:
            provenance["scenario_hash"] = scenario_hash(config)
            provenance["config_hash"] = config_hash(config)
        except TypeError:
            # A config with no content identity (test doubles) simply
            # omits the hashes, like results saved without a config.
            pass
    return provenance


def run_manifest(*, command: str, config: Optional[object] = None,
                 seed: Optional[int] = None,
                 extra: Optional[Mapping[str, object]] = None) -> dict:
    """Full run-provenance record (nondeterministic: includes wall clock)."""
    from repro import __version__

    manifest = {
        "command": command,
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "wall_clock": time.time(),
        "config_fingerprint": (config_fingerprint(config)
                               if config is not None else None),
    }
    manifest.update(result_provenance(seed=seed, config=config))
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str, manifest: Mapping[str, object]) -> None:
    """Write a manifest as pretty-printed JSON, atomically.

    Same discipline as ``results_io.save_results`` (via
    :func:`repro.utils.fsio.atomic_write_text`): a crash mid-write can
    never leave a torn ``*.manifest.json`` sidecar next to valid
    results -- either the old manifest survives or the new one is
    complete.
    """
    text = json.dumps(manifest, indent=2, sort_keys=True)
    atomic_write_text(Path(path), text)


def read_manifest(path: str) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _sample(name: str, label_body: str, extra_label: str, value: float) -> str:
    labels = ",".join(part for part in (label_body, extra_label) if part)
    rendered = f"{{{labels}}}" if labels else ""
    return f"{name}{rendered} {_format_value(value)}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges emit one sample per label set; histograms emit
    cumulative ``_bucket{le=...}`` samples plus ``_sum`` / ``_count``.
    Output is sorted, so identical registries render identically.
    """
    lines = []
    typed = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(registry.counters()):
        name, label_body = split_sample_name(key)
        type_line(name, "counter")
        lines.append(_sample(name, label_body, "", registry.counters()[key]))
    for key in sorted(registry.gauges()):
        name, label_body = split_sample_name(key)
        type_line(name, "gauge")
        lines.append(_sample(name, label_body, "", registry.gauges()[key]))
    for key in sorted(registry.histograms()):
        histogram = registry.histograms()[key]
        name, label_body = split_sample_name(key)
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(histogram.buckets, histogram.counts):
            cumulative += count
            lines.append(_sample(f"{name}_bucket", label_body,
                                 f'le="{_format_value(bound)}"', cumulative))
        lines.append(_sample(f"{name}_bucket", label_body, 'le="+Inf"',
                             histogram.count))
        lines.append(_sample(f"{name}_sum", label_body, "", histogram.sum))
        lines.append(_sample(f"{name}_count", label_body, "", histogram.count))
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(path_or_stream: Union[str, IO[str]],
                  registry: MetricsRegistry) -> None:
    """Write :func:`prometheus_text` to a path or open stream."""
    text = prometheus_text(registry)
    if hasattr(path_or_stream, "write"):
        path_or_stream.write(text)
    else:
        with open(path_or_stream, "w", encoding="utf-8") as handle:
            handle.write(text)


def write_metrics_snapshot(path: Union[str, Path],
                           registry: MetricsRegistry) -> None:
    """Write a registry's :meth:`~MetricsRegistry.snapshot` as JSON.

    The machine-readable sibling of :func:`write_metrics`: a snapshot
    file can be folded back into another registry with
    :meth:`MetricsRegistry.absorb` -- the same operation the executor
    uses for worker registries -- whereas the Prometheus text form is
    one-way.  The job service's ``/metrics`` endpoint relies on this to
    aggregate per-job metrics without a text-format parser.  Written
    atomically, like every other workspace artifact.
    """
    text = json.dumps(registry.snapshot(), indent=2, sort_keys=True)
    atomic_write_text(Path(path), text)


def read_metrics_snapshot(path: Union[str, Path]) -> dict:
    """Load a snapshot written by :func:`write_metrics_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
