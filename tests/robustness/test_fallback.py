"""Fault-injection tests of the per-slot solver fallback chain.

Acceptance path (a): a forced non-convergent slot completes via the
heuristic fallback with a recorded ``DegradationEvent``.
"""

import pytest

from repro.core.heuristics import EqualAllocationHeuristic
from repro.core.problem import Allocation
from repro.sim import MonteCarloRunner, SimulationEngine
from repro.sim.fallback import DegradationEvent, FallbackChain, check_allocation
from repro.testing.faults import FaultPlan
from repro.utils.errors import AllocationFailedError, ConvergenceError, ReproError
from tests.conftest import make_problem


class _AlwaysRaises:
    """Allocator stub that fails with a configurable error."""

    def __init__(self, exc):
        self.exc = exc
        self.calls = 0

    def allocate(self, problem):
        self.calls += 1
        raise self.exc


class _ReturnsGarbage:
    """Allocator stub that returns a NaN-poisoned allocation."""

    def allocate(self, problem):
        return Allocation(
            mbs_user_ids={problem.users[0].user_id},
            rho_mbs={problem.users[0].user_id: float("nan")},
            rho_fbs={})


class TestCheckAllocation:
    def test_accepts_heuristic_output(self):
        problem = make_problem()
        allocation = EqualAllocationHeuristic().allocate(problem)
        assert check_allocation(problem, allocation) is None

    def test_rejects_nan_share(self):
        problem = make_problem()
        allocation = _ReturnsGarbage().allocate(problem)
        assert check_allocation(problem, allocation) == "non-finite"

    def test_rejects_overfull_station(self):
        problem = make_problem(n_users=3)
        uids = [u.user_id for u in problem.users]
        allocation = Allocation(
            mbs_user_ids=set(uids),
            rho_mbs={uid: 0.9 for uid in uids},
            rho_fbs={}, objective=0.0)
        assert check_allocation(problem, allocation) == "infeasible"


class TestFallbackChain:
    def test_happy_path_records_nothing(self):
        problem = make_problem()
        chain = FallbackChain([("heuristic1", EqualAllocationHeuristic())])
        allocation, events = chain.allocate(problem, slot=0)
        assert events == []
        assert check_allocation(problem, allocation) is None

    def test_convergence_error_degrades_with_residual(self):
        problem = make_problem()
        primary = _AlwaysRaises(ConvergenceError(
            "did not converge", iterations=500, residual=0.125))
        chain = FallbackChain([
            ("proposed", primary),
            ("heuristic1", EqualAllocationHeuristic()),
        ])
        allocation, events = chain.allocate(problem, slot=7)
        assert primary.calls == 1
        assert len(events) == 1
        event = events[0]
        assert event.slot == 7
        assert event.cause == "convergence"
        assert event.allocator == "proposed"
        assert event.fallback == "heuristic1"
        assert event.residual == 0.125
        assert check_allocation(problem, allocation) is None

    def test_garbage_allocation_degrades(self):
        problem = make_problem()
        chain = FallbackChain([
            ("proposed", _ReturnsGarbage()),
            ("heuristic1", EqualAllocationHeuristic()),
        ])
        _, events = chain.allocate(problem, slot=3)
        assert [e.cause for e in events] == ["non-finite"]

    def test_injected_nonconvergence_skips_primary(self):
        problem = make_problem()
        primary = _AlwaysRaises(ConvergenceError("never called"))
        chain = FallbackChain([
            ("proposed", primary),
            ("heuristic1", EqualAllocationHeuristic()),
        ])
        _, events = chain.allocate(problem, slot=0, inject_nonconvergence=True)
        assert primary.calls == 0
        assert events[0].cause == "injected-nonconvergence"

    def test_exhausted_chain_raises_with_events(self):
        problem = make_problem()
        chain = FallbackChain([
            ("proposed", _AlwaysRaises(ConvergenceError("no"))),
            ("heuristic1", _ReturnsGarbage()),
        ])
        with pytest.raises(AllocationFailedError) as excinfo:
            chain.allocate(problem, slot=2)
        assert [e.cause for e in excinfo.value.events] == [
            "convergence", "non-finite"]
        # The failure is still a ReproError, so run isolation catches it.
        assert isinstance(excinfo.value, ReproError)


class TestEngineDegradation:
    """Acceptance (a): engine end-to-end via the fault harness."""

    def test_forced_nonconvergent_slot_completes_via_fallback(self, single_config):
        plan = FaultPlan(nonconvergent_slots={2})
        engine = SimulationEngine(single_config.replace(fault_plan=plan))
        metrics = engine.run()
        assert engine.slot == single_config.n_slots  # run completed
        events = [e for e in metrics.degradation_events
                  if e.cause == "injected-nonconvergence"]
        assert len(events) == 1
        assert events[0].slot == 2
        assert events[0].allocator == single_config.scheme
        assert events[0].fallback == "heuristic1"
        # Degraded runs still produce usable quality numbers.
        assert metrics.mean_psnr > 0

    def test_degradation_does_not_crash_summary(self, single_config):
        plan = FaultPlan(nonconvergent_slots={0, 5})
        config = single_config.replace(fault_plan=plan)
        summary = MonteCarloRunner(config, n_runs=2).summary()
        assert summary.n_failed == 0
        # Two injected slots per run, two runs.
        assert summary.n_degraded_slots == 4

    def test_healthy_run_records_no_events(self, single_config):
        metrics = SimulationEngine(single_config).run()
        assert metrics.degradation_events == ()
        assert metrics.n_degraded == 0

    def test_event_round_trips_through_dict(self):
        event = DegradationEvent(slot=4, cause="convergence",
                                 allocator="proposed", fallback="heuristic1",
                                 residual=1e-3, detail="x")
        assert DegradationEvent.from_dict(event.to_dict()) == event
