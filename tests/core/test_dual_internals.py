"""White-box tests of the dual solver's internals and robustness knobs."""

import numpy as np
import pytest

from repro.core.dual import DualDecompositionSolver, _branch_share
from repro.core.problem import SlotProblem, UserDemand
from repro.core.reference import exhaustive_reference_solution
from repro.utils.errors import ConfigurationError
from tests.conftest import make_problem, make_user


class TestBranchShare:
    def test_closed_form_table1_step3(self):
        # rho = success/lambda - W/slope, inside (0, 1).
        share = _branch_share(np.array([0.8]), 0.05, np.array([30.0]),
                              np.array([2.0]))
        assert share[0] == pytest.approx(0.8 / 0.05 - 30.0 / 2.0)

    def test_clipped_to_unit_interval(self):
        share = _branch_share(np.array([0.9]), 1e-9, np.array([30.0]),
                              np.array([2.0]))
        assert share[0] == 1.0
        share = _branch_share(np.array([0.1]), 10.0, np.array([30.0]),
                              np.array([2.0]))
        assert share[0] == 0.0

    def test_dead_branches_zero(self):
        share = _branch_share(np.array([0.0, 0.8]), 0.01,
                              np.array([30.0, 30.0]), np.array([2.0, 0.0]))
        assert share.tolist() == [0.0, 0.0]

    def test_zero_multiplier_full_slot(self):
        share = _branch_share(np.array([0.5]), 0.0, np.array([30.0]),
                              np.array([2.0]))
        assert share[0] == 1.0

    def test_vector_multiplier(self):
        share = _branch_share(np.array([0.8, 0.8]), np.array([0.05, 10.0]),
                              np.array([30.0, 30.0]), np.array([2.0, 2.0]))
        assert share[0] > 0.0
        assert share[1] == 0.0


class TestStepDecay:
    def test_fixed_step_mode_reproducible(self):
        # decay_after above the budget reproduces the paper's fixed step.
        problem = make_problem(3)
        fixed = DualDecompositionSolver(decay_after=10**6, record_trace=True)
        solution = fixed.solve(problem)
        assert solution.converged

    def test_invalid_decay(self):
        with pytest.raises(ConfigurationError):
            DualDecompositionSolver(decay_after=0)

    def test_stall_exit_bounds_iterations(self):
        # A problem engineered to limit-cycle: two identical users, one
        # per branch's sweet spot, repeatedly flip; the stall exit must
        # terminate well before the 20000 budget.
        rng = np.random.default_rng(5)
        solver = DualDecompositionSolver(max_iterations=20000, decay_after=200)
        worst = 0
        for _ in range(20):
            users = [
                make_user(j, w_prev=26 + 8 * rng.random(),
                          success_mbs=0.5 + 0.5 * rng.random(),
                          success_fbs=0.5 + 0.5 * rng.random(),
                          r_mbs=float(rng.random() * 2),
                          r_fbs=float(rng.random() * 1.5))
                for j in range(8)
            ]
            problem = SlotProblem(users=users, expected_channels={1: 2.0})
            solution = solver.solve(problem)
            worst = max(worst, solution.iterations)
            exact = exhaustive_reference_solution(problem)
            assert solution.allocation.objective >= exact.objective - 1e-3
        assert worst < 5000


class TestDegenerateProblems:
    def test_single_user_zero_bandwidth_everywhere(self):
        user = make_user(r_mbs=0.0, r_fbs=0.0)
        problem = SlotProblem(users=[user], expected_channels={1: 2.0})
        solution = DualDecompositionSolver().solve(problem)
        assert solution.allocation.objective == pytest.approx(0.0)

    def test_zero_success_probabilities(self):
        user = make_user(success_mbs=0.0, success_fbs=0.0)
        problem = SlotProblem(users=[user], expected_channels={1: 2.0})
        solution = DualDecompositionSolver().solve(problem)
        assert solution.allocation.objective == pytest.approx(0.0)

    def test_no_licensed_channels(self):
        problem = make_problem(3, g=0.0)
        solution = DualDecompositionSolver().solve(problem)
        # Everyone who gets anything gets it from the MBS.
        assert all(share == 0.0
                   for share in solution.allocation.rho_fbs.values())
        exact = exhaustive_reference_solution(problem)
        assert solution.allocation.objective == pytest.approx(
            exact.objective, abs=1e-7)

    def test_many_identical_users_split_evenly(self):
        users = [make_user(j, w_prev=30.0, success_mbs=0.1, success_fbs=0.9,
                           r_mbs=0.1, r_fbs=1.0) for j in range(5)]
        problem = SlotProblem(users=users, expected_channels={1: 2.0})
        allocation = DualDecompositionSolver().solve(problem).allocation
        shares = [allocation.rho_fbs.get(j, 0.0) for j in range(5)]
        assert all(s == pytest.approx(0.2, abs=1e-6) for s in shares)

    def test_multipliers_reported_per_station(self):
        problem = make_problem(4, n_fbss=2)
        solution = DualDecompositionSolver().solve(problem)
        assert set(solution.multipliers) == {0, 1, 2}
        assert all(value >= 0.0 for value in solution.multipliers.values())


class TestFastSolverCache:
    """The fast_solve solver cache is keyed on the budget and shareable."""

    def test_same_budget_shares_one_instance(self):
        from repro.core.dual import _fast_solver
        assert _fast_solver(400) is _fast_solver(400)

    def test_distinct_budgets_coexist(self):
        # The old module-global slot thrashed when budgets alternated;
        # the keyed cache must keep both alive simultaneously.
        from repro.core.dual import _fast_solver
        a = _fast_solver(100)
        b = _fast_solver(200)
        assert a.max_iterations == 100
        assert b.max_iterations == 200
        assert _fast_solver(100) is a
        assert _fast_solver(200) is b

    def test_concurrent_fast_solve_with_alternating_budgets(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.dual import fast_solve

        problem = make_problem(3)
        expected = fast_solve(problem).objective

        def solve(budget):
            return fast_solve(problem, max_iterations=budget).objective

        budgets = [400, 300, 400, 300] * 4
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(solve, budgets))
        assert all(obj == pytest.approx(expected, abs=1e-9)
                   for obj in results)
