"""Tests for the executor strategies: serial, parallel, crash handling."""

import multiprocessing
import os

import pytest

from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    _run_chunk,
)
from repro.exec.plan import plan_campaign, plan_sweep
from repro.sim.metrics import FailedRun, RunMetrics
from repro.sim.runner import execute_run
from repro.testing.faults import FaultPlan
from repro.utils.errors import ConfigurationError


def outcomes_by_key(executor, cells):
    return {o.cell.key: o for o in executor.run(cells)}


class TestSerialExecutor:
    def test_streams_in_plan_order(self, single_config):
        plan = plan_campaign(single_config, 3)
        outcomes = list(SerialExecutor().run(plan.cells))
        assert [o.cell.run_index for o in outcomes] == [0, 1, 2]
        assert all(isinstance(o.result, RunMetrics) for o in outcomes)
        assert all(o.seconds >= 0.0 for o in outcomes)

    def test_matches_execute_run(self, single_config):
        plan = plan_campaign(single_config, 2)
        outcomes = list(SerialExecutor().run(plan.cells))
        for outcome in outcomes:
            metrics, _ = execute_run(single_config, outcome.cell.run_index)
            assert outcome.result.mean_psnr == metrics.mean_psnr

    def test_empty_plan(self):
        assert list(SerialExecutor().run([])) == []


class TestParallelExecutor:
    def test_results_bit_identical_to_serial(self, single_config):
        plan = plan_sweep(single_config, "n_channels", [4, 6],
                          ["heuristic1", "heuristic2"], n_runs=2)
        serial = outcomes_by_key(SerialExecutor(), plan.cells)
        parallel = outcomes_by_key(ParallelExecutor(jobs=2), plan.cells)
        assert set(serial) == set(parallel)
        for key in serial:
            assert parallel[key].result.mean_psnr == serial[key].result.mean_psnr
            assert parallel[key].result.per_user_psnr == \
                serial[key].result.per_user_psnr

    def test_failed_cells_survive_the_boundary(self, single_config):
        plan_obj = FaultPlan(nan_fading_slots={0}, poison_runs={1})
        plan = plan_campaign(
            single_config.replace(fault_plan=plan_obj), 3)
        outcomes = outcomes_by_key(ParallelExecutor(jobs=2), plan.cells)
        failed = [o for o in outcomes.values()
                  if isinstance(o.result, FailedRun)]
        assert len(failed) == 1
        assert failed[0].cell.run_index == 1
        assert failed[0].result.error_type == "NumericalError"

    def test_non_picklable_config_fails_fast(self, single_config):
        poisoned = single_config.replace(fault_plan=lambda slot: False)
        plan = plan_campaign(poisoned, 2)
        with pytest.raises(ConfigurationError, match="--jobs 1"):
            list(ParallelExecutor(jobs=2).run(plan.cells))

    def test_empty_plan(self):
        assert list(ParallelExecutor(jobs=2).run([])) == []

    def test_chunking_covers_every_cell_once(self, single_config):
        plan = plan_campaign(single_config, 5)
        executor = ParallelExecutor(jobs=2, chunk_size=2)
        chunks = executor._chunks(list(plan.cells))
        assert [len(c) for c in chunks] == [2, 2, 1]
        flat = [cell.key for chunk in chunks for cell in chunk]
        assert flat == [cell.key for cell in plan.cells]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, chunk_size=0)


class TestWorkerCrash:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="crash injection relies on fork inheriting the patched module")
    def test_crashed_worker_becomes_failed_run(self, single_config,
                                               monkeypatch):
        """A dying worker process must not take the sweep down with it."""
        import repro.exec.executor as executor_module

        original = executor_module._execute_cell

        def crashing(cell):
            if cell.run_index == 1:
                os._exit(17)  # simulate a segfault/OOM-killed worker
            return original(cell)

        monkeypatch.setattr(executor_module, "_execute_cell", crashing)
        plan = plan_campaign(single_config, 3)
        outcomes = {o.cell.run_index: o
                    for o in ParallelExecutor(jobs=2, chunk_size=3
                                              ).run(plan.cells)}
        assert set(outcomes) == {0, 1, 2}
        assert isinstance(outcomes[1].result, FailedRun)
        assert outcomes[1].result.error_type == "WorkerCrashed"
        # Innocent chunk-mates were re-dispatched and completed normally.
        for run_index in (0, 2):
            reference, _ = execute_run(single_config, run_index)
            assert outcomes[run_index].result.mean_psnr == reference.mean_psnr


class TestMakeExecutor:
    def test_default_and_one_are_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_is_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_invalid_jobs(self):
        with pytest.raises(ConfigurationError):
            make_executor(0)
        with pytest.raises(ConfigurationError):
            make_executor(-2)


class TestRunChunk:
    def test_returns_key_result_seconds(self, single_config):
        plan = plan_campaign(single_config, 2)
        results = _run_chunk(list(plan.cells))
        assert [key for key, _, _ in results] == [c.key for c in plan.cells]
        assert all(isinstance(result, RunMetrics) for _, result, _ in results)
        assert all(seconds >= 0.0 for _, _, seconds in results)
