"""Performance bounds for the greedy channel allocation (Section IV-C3).

Two results are implemented:

* **Theorem 2** (closed form): the greedy objective is at least
  ``1 / (1 + D_max)`` of the global optimum, where ``D_max`` is the
  maximum node degree of the interference graph.  The ratio applies to
  the *incremental* objective ``Q - Q(empty)``: the derivation telescopes
  the per-step gains ``Delta_l`` from ``Q(pi_0) = Q(empty)``, so the
  MBS-only value every allocation can achieve is factored out.
* **eq. (23)** (data dependent, tighter):
  ``Q(Omega) <= Q(pi_L) + sum_l D(l) * Delta_l`` where ``D(l)`` is the
  degree of the FBS chosen in greedy step ``l`` and ``Delta_l`` that
  step's objective gain.  This is the "Upper bound" curve of Figs.
  6(a)-(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import networkx as nx

from repro.net.interference import max_degree
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class GreedyStep:
    """One step of the greedy algorithm's execution trace.

    Attributes
    ----------
    fbs_id:
        FBS chosen in this step.
    channel:
        Licensed channel allocated to it.
    gain:
        ``Delta_l`` -- increase of the objective ``Q`` achieved.
    degree:
        ``D(l)`` -- the chosen FBS's degree in the interference graph.
    conflict_gain_sum:
        Evaluated version of this step's bound contribution: the summed
        marginal gains ``Delta(sigma U pi_{l-1}, pi_{l-1})`` of the
        conflicting pairs actually pruned at this step (each capped at
        ``Delta_l`` per Lemma 6).  Because ``omega_l`` is contained in the
        pruned set, replacing ``D(l) * Delta_l`` by this sum keeps
        Lemma 7's inequality valid while being strictly tighter.  ``None``
        when the greedy ran without conflict evaluation.
    """

    fbs_id: int
    channel: int
    gain: float
    degree: int
    conflict_gain_sum: float = None

    def __post_init__(self) -> None:
        if self.gain < -1e-9:
            raise ConfigurationError(
                f"greedy step gain must be non-negative, got {self.gain}")
        if self.degree < 0:
            raise ConfigurationError(f"degree must be non-negative, got {self.degree}")
        if self.conflict_gain_sum is not None and self.conflict_gain_sum < -1e-9:
            raise ConfigurationError(
                f"conflict_gain_sum must be non-negative, got {self.conflict_gain_sum}")

    @property
    def bound_term(self) -> float:
        """This step's contribution to the eq. (23) upper bound.

        The evaluated conflict-gain sum when available, the closed-form
        ``D(l) * Delta_l`` otherwise.
        """
        if self.conflict_gain_sum is not None:
            return self.conflict_gain_sum
        return self.degree * self.gain


@dataclass(frozen=True)
class GreedyTrace:
    """Complete execution trace of one greedy run.

    Attributes
    ----------
    steps:
        The chosen FBS-channel pairs in order.
    q_empty:
        ``Q(empty)`` -- objective with no licensed channel allocated
        (users may still stream from the MBS).
    q_final:
        ``Q(pi_L)`` -- objective of the greedy allocation.
    """

    steps: Sequence[GreedyStep]
    q_empty: float
    q_final: float

    @property
    def total_gain(self) -> float:
        """``sum_l Delta_l`` -- telescopes to ``Q(pi_L) - Q(empty)``."""
        return sum(step.gain for step in self.steps)


def theorem2_factor(graph: nx.Graph) -> float:
    """The guarantee ``1 / (1 + D_max)`` of Theorem 2.

    Equals 1 for non-interfering deployments (``D_max = 0``), where the
    greedy/dual combination is provably optimal.
    """
    return 1.0 / (1.0 + max_degree(graph))


def tighter_upper_bound(trace: GreedyTrace) -> float:
    """The data-dependent bound of eq. (23) on the optimal objective.

    ``Q(Omega) <= Q(pi_L) + sum_l <bound term>_l``.  The bound term is
    ``D(l) * Delta_l`` as printed in the paper, or -- when the greedy ran
    with conflict evaluation -- the strictly tighter sum of the pruned
    conflicting pairs' actual marginal gains (see
    :class:`GreedyStep.bound_term`).  Both instantiate Lemma 7, so both
    upper-bound the global optimum.
    """
    return trace.q_final + sum(step.bound_term for step in trace.steps)


def closed_form_upper_bound(trace: GreedyTrace) -> float:
    """Eq. (23) exactly as printed: ``Q(pi_L) + sum_l D(l) * Delta_l``.

    Ignores any evaluated conflict gains; useful to quantify how loose
    the closed form is relative to the evaluated bound.
    """
    return trace.q_final + sum(step.degree * step.gain for step in trace.steps)


def theorem2_lower_bound(trace: GreedyTrace, graph: nx.Graph) -> float:
    """Closed-form lower bound on the greedy's incremental objective.

    Rearranging eq. (24): ``Q(pi_L) - Q(empty) >=
    (Q(Omega) - Q(empty)) / (1 + D_max)``, so given the optimal value this
    returns the guaranteed greedy value.  Used in tests against the
    exhaustive optimum.
    """
    factor = theorem2_factor(graph)
    return trace.q_empty + factor * (tighter_upper_bound(trace) - trace.q_empty)


def verify_bound_holds(trace: GreedyTrace, optimum: float, graph: nx.Graph, *,
                       tol: float = 1e-7) -> bool:
    """Check both bounds against a known optimal objective ``Q(Omega)``.

    Returns ``True`` iff the optimum does not exceed eq. (23)'s bound and
    the greedy's incremental value is at least the Theorem 2 fraction of
    the optimal incremental value (both up to ``tol``).
    """
    upper_ok = optimum <= tighter_upper_bound(trace) + tol
    factor = theorem2_factor(graph)
    greedy_incremental = trace.q_final - trace.q_empty
    optimal_incremental = optimum - trace.q_empty
    lower_ok = greedy_incremental >= factor * optimal_incremental - tol
    return bool(upper_ok and lower_ok)
