"""Fig. 6(c) -- quality vs common-channel bandwidth B0 (interfering).

Paper claims: quality grows quickly as B0 rises from 0.1 to 0.3 Mbps,
then the gain diminishes; proposed stays on top with the upper bound
close above.
"""

from benchmarks.conftest import BENCH_GOPS, BENCH_RUNS, BENCH_SEED, report
from repro.experiments.fig6 import run_fig6c
from repro.experiments.report import format_sweep


def test_bench_fig6c(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6c(n_runs=BENCH_RUNS, n_gops=BENCH_GOPS, seed=BENCH_SEED),
        rounds=1, iterations=1)
    report("Fig. 6(c): Y-PSNR (dB) vs common-channel bandwidth B0 (Mbps), "
           "interfering FBSs (B1 = 0.3 fixed)",
           format_sweep(result, upper_bound=True, value_format="B0={}"))

    proposed = result.series("proposed-fast")
    # Increasing in B0; proposed best on average.
    assert proposed[-1] > proposed[0]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(proposed) > mean(result.series("heuristic1"))
    # Diminishing returns: the first bandwidth step buys at least as much
    # quality as the last one.
    first_gain = proposed[1] - proposed[0]
    last_gain = proposed[-1] - proposed[-2]
    assert first_gain >= last_gain - 0.15
