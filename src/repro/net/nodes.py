"""Node types of the femtocell CR network."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive

Point = Tuple[float, float]


def _check_point(value, name: str) -> Point:
    try:
        x, y = value
        x, y = float(x), float(y)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be an (x, y) pair, got {value!r}") from exc
    if not (math.isfinite(x) and math.isfinite(y)):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return (x, y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass(frozen=True)
class MacroBaseStation:
    """The macro base station.

    Its single antenna is always tuned to the common channel (Section
    III-A); it also runs the master dual-variable updates of the
    distributed algorithm (Section IV-A3).

    Attributes
    ----------
    position:
        ``(x, y)`` location in metres.
    tx_power_dbm:
        Downlink transmit power on the common channel.
    """

    position: Point = (0.0, 0.0)
    tx_power_dbm: float = 43.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", _check_point(self.position, "position"))


@dataclass(frozen=True)
class FemtoBaseStation:
    """A femto base station.

    Attributes
    ----------
    fbs_id:
        1-based identifier (index 0 is reserved for the MBS throughout the
        paper's notation).
    position:
        ``(x, y)`` location in metres.
    coverage_radius_m:
        Radius of the coverage disk; overlapping disks define interference
        (Definition 1).
    tx_power_dbm:
        Downlink transmit power on licensed channels -- much lower than the
        MBS, which is the femtocell premise.
    """

    fbs_id: int
    position: Point
    coverage_radius_m: float = 30.0
    tx_power_dbm: float = 0.0

    def __post_init__(self) -> None:
        if self.fbs_id < 1:
            raise ConfigurationError(
                f"fbs_id must be >= 1 (0 is the MBS), got {self.fbs_id}")
        object.__setattr__(self, "position", _check_point(self.position, "position"))
        check_positive(self.coverage_radius_m, "coverage_radius_m")

    def covers(self, point: Point) -> bool:
        """Whether ``point`` lies within this FBS's coverage disk."""
        return distance(self.position, _check_point(point, "point")) <= self.coverage_radius_m

    def overlaps(self, other: "FemtoBaseStation") -> bool:
        """Whether two coverage disks overlap (=> interference edge)."""
        return (distance(self.position, other.position)
                < self.coverage_radius_m + other.coverage_radius_m)


@dataclass(frozen=True)
class CrUser:
    """A CR user (femtocell subscriber) receiving one video stream.

    Attributes
    ----------
    user_id:
        0-based identifier.
    position:
        ``(x, y)`` location in metres.
    sequence_name:
        Name of the video streamed to this user (see
        :data:`repro.video.SEQUENCE_LIBRARY`).
    fbs_id:
        The associated FBS (nearest, per Section IV-B); ``None`` until
        association is performed by :func:`repro.net.topology.build_topology`.
    """

    user_id: int
    position: Point
    sequence_name: str
    fbs_id: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ConfigurationError(f"user_id must be non-negative, got {self.user_id}")
        object.__setattr__(self, "position", _check_point(self.position, "position"))
