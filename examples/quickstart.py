#!/usr/bin/env python
"""Quickstart: stream three MGS videos through one femtocell.

Builds the paper's Section V-A scenario (one MBS, one FBS, three CR
users streaming Bus / Mobile / Harbor over 8 licensed channels), runs the
proposed resource-allocation scheme for a few GOPs, and prints what each
user received.

Run with:  python examples/quickstart.py
"""

from repro.experiments import single_fbs_scenario
from repro.sim import MonteCarloRunner, SimulationEngine


def main() -> None:
    config = single_fbs_scenario(n_gops=3, seed=7)
    print(f"Scenario: M={config.n_channels} licensed channels, "
          f"eta={config.utilization:.3f}, gamma={config.gamma}, "
          f"T={config.deadline_slots} slots/GOP, "
          f"B0={config.common_bandwidth_mbps} / B1={config.licensed_bandwidth_mbps} Mbps")
    for user in config.topology.users:
        print(f"  user {user.user_id}: streams {user.sequence_name!r}, "
              f"MBS link success {config.topology.mbs_success[user.user_id]:.3f}, "
              f"FBS link success {config.topology.fbs_success[user.user_id]:.3f}")

    # Single run, slot by slot, to show what the engine produces.
    engine = SimulationEngine(config, record_slots=True)
    record = engine.step()
    print(f"\nSlot 1: A(t) = {record.access.available_channels.tolist()} "
          f"(G_t = {record.access.expected_available:.2f} expected channels)")
    for user in record.problem.users:
        station = "MBS" if record.allocation.uses_mbs(user.user_id) else "FBS"
        share = record.allocation.time_share(user)
        print(f"  user {user.user_id}: {station}, time share {share:.3f}, "
              f"delivered {record.increments[user.user_id]:.3f} dB")

    # The paper's methodology: 10 independent runs, 95% CIs.
    print("\nAverage GOP quality over 10 runs:")
    summary = MonteCarloRunner(config, n_runs=10).summary()
    for user_id, ci in sorted(summary.per_user_psnr.items()):
        print(f"  user {user_id}: {ci}")
    print(f"  mean over users: {summary.mean_psnr}")
    print(f"  Jain fairness:   {summary.fairness}")
    print(f"  collision rate:  {summary.mean_collision_rate} "
          f"(cap gamma = {config.gamma})")


if __name__ == "__main__":
    main()
