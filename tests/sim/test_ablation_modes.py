"""Tests for the engine's ablation/extension modes."""

import numpy as np
import pytest

from repro.sim.engine import SimulationEngine
from repro.utils.errors import ConfigurationError


class TestThresholdAccess:
    def test_config_validated(self, single_config):
        with pytest.raises(ConfigurationError):
            single_config.replace(access_policy="fuzzy")

    def test_threshold_engine_runs_and_is_conservative(self, single_config):
        paper = SimulationEngine(single_config).run()
        hard = SimulationEngine(
            single_config.replace(access_policy="threshold")).run()
        # Deterministic thresholding uses far less of the collision budget.
        assert hard.collision_rates.mean() <= paper.collision_rates.mean()

    def test_threshold_decisions_deterministic_in_posterior(self, single_config):
        from repro.sensing.access import HardThresholdAccessPolicy
        policy = HardThresholdAccessPolicy([0.2, 0.2], rng=0)
        for _ in range(20):
            decision = policy.decide([0.85, 0.75])
            assert decision.decisions.tolist() == [0, 1]


class TestSingleObservationFusion:
    def test_posteriors_take_single_observation_values(self, single_config):
        # With one observation per channel and identical sensors, every
        # posterior is one of exactly two values (idle-obs or busy-obs).
        sparse = SimulationEngine(
            single_config.replace(single_observation_fusion=True),
            record_slots=True)
        record = sparse.step()
        distinct = {round(p, 10) for p in record.access.posteriors}
        assert len(distinct) <= 2


class TestBeliefTracking:
    def test_tracker_created_only_when_enabled(self, single_config):
        assert SimulationEngine(single_config).belief_tracker is None
        engine = SimulationEngine(single_config.replace(belief_tracking=True))
        assert engine.belief_tracker is not None

    def test_belief_mode_runs_full_horizon(self, single_config):
        metrics = SimulationEngine(
            single_config.replace(belief_tracking=True)).run()
        assert metrics.mean_psnr > 26.0

    def test_belief_mode_respects_collision_cap(self):
        from repro.experiments.scenarios import single_fbs_scenario
        config = single_fbs_scenario(n_gops=30, seed=9,
                                     scheme="heuristic1").replace(
            belief_tracking=True)
        metrics = SimulationEngine(config).run()
        assert np.all(metrics.collision_rates <= config.gamma + 0.05)

    def test_beliefs_move_with_evidence(self, single_config):
        engine = SimulationEngine(single_config.replace(belief_tracking=True))
        stationary = engine.belief_tracker.busy_priors.copy()
        engine.step()
        assert not np.allclose(engine.belief_tracker.busy_priors, stationary)
