"""Differential tests: full simulation runs, batched backend vs oracle.

The unit-level suites (``tests/phy``, ``tests/sensing``) pin each
batched primitive; this suite pins the composition -- multi-slot
engine runs over fuzzed scenario configs must produce byte-identical
:class:`SlotRecord` streams and run metrics whichever backend is
active, and the two backends must be freely interchangeable
mid-simulation because they consume the RNG streams identically.
"""

import json

import numpy as np
import pytest

from repro.core.accel import use_acceleration
from repro.sim.checkpoint import run_metrics_to_dict
from repro.sim.engine import SimulationEngine
from repro.sim.runner import MonteCarloRunner

from tests.conftest import random_scenario

N_FUZZED_CONFIGS = 6
FUZZ_SLOTS = 12


def assert_records_equal(a, b, context=""):
    """Field-by-field bit-exact comparison of two SlotRecords."""
    assert a.slot == b.slot, context
    assert np.array_equal(a.occupancy, b.occupancy), context
    assert np.array_equal(a.access.posteriors, b.access.posteriors), context
    assert np.array_equal(a.access.access_probabilities,
                          b.access.access_probabilities), context
    assert np.array_equal(a.access.decisions, b.access.decisions), context
    assert a.channel_allocation == b.channel_allocation, context
    assert a.increments == b.increments, context
    assert a.bound_gap == b.bound_gap, context
    assert len(a.problem.users) == len(b.problem.users), context
    assert a.problem.expected_channels == b.problem.expected_channels, context
    for ua, ub in zip(a.problem.users, b.problem.users):
        assert ua == ub, f"{context}: user {ua.user_id}"
    assert a.allocation.mbs_user_ids == b.allocation.mbs_user_ids, context
    assert a.allocation.rho_mbs == b.allocation.rho_mbs, context
    assert a.allocation.rho_fbs == b.allocation.rho_fbs, context


def _run_slots(config, accelerated, n_slots):
    """Step ``n_slots`` slots under the chosen backend; return the records."""
    with use_acceleration(accelerated):
        engine = SimulationEngine(config)
        return [engine.step() for _ in range(n_slots)]


def _metrics_fingerprint(metrics):
    return json.dumps(run_metrics_to_dict(metrics), sort_keys=True)


class TestFullRunEquivalence:
    def test_small_scenario_records_identical(self, small_scenario):
        scalar = _run_slots(small_scenario, False, small_scenario.n_slots)
        batched = _run_slots(small_scenario, True, small_scenario.n_slots)
        for a, b in zip(batched, scalar):
            assert_records_equal(a, b, f"slot {a.slot}")

    def test_fuzzed_configs_records_identical(self):
        rng = np.random.default_rng(20260806)
        for case in range(N_FUZZED_CONFIGS):
            config = random_scenario(rng)
            context = (f"case {case}: channels={config.n_channels}, "
                       f"eps={config.false_alarm}, delta={config.miss_detection}, "
                       f"policy={config.access_policy}, "
                       f"belief={config.belief_tracking}, "
                       f"single_obs={config.single_observation_fusion}, "
                       f"seed={config.seed}")
            scalar = _run_slots(config, False, FUZZ_SLOTS)
            batched = _run_slots(config, True, FUZZ_SLOTS)
            for a, b in zip(batched, scalar):
                assert_records_equal(a, b, f"{context}, slot {a.slot}")

    def test_run_metrics_identical(self, small_scenario):
        with use_acceleration(False):
            scalar = SimulationEngine(small_scenario).run()
        with use_acceleration(True):
            batched = SimulationEngine(small_scenario).run()
        assert _metrics_fingerprint(batched) == _metrics_fingerprint(scalar)

    def test_backend_swap_mid_run(self, small_scenario):
        """Backends interleave freely because RNG consumption is identical.

        This is the property that makes checkpoints portable across
        backends: a run resumed under the other backend continues the
        exact same trajectory.
        """
        oracle = SimulationEngine(small_scenario)
        mixed = SimulationEngine(small_scenario)
        rng = np.random.default_rng(5)
        for slot in range(small_scenario.n_slots):
            with use_acceleration(False):
                a = oracle.step()
            with use_acceleration(bool(rng.integers(0, 2))):
                b = mixed.step()
            assert_records_equal(b, a, f"slot {slot}")


class TestRunnerEquivalence:
    def test_monte_carlo_fingerprints_identical(self, small_scenario):
        """Replicated runs (the checkpointed artifact) match backend-wise."""
        with use_acceleration(False):
            scalar = MonteCarloRunner(small_scenario, n_runs=2).run_all()
        with use_acceleration(True):
            batched = MonteCarloRunner(small_scenario, n_runs=2).run_all()
        assert len(scalar) == len(batched) == 2
        for a, b in zip(batched, scalar):
            assert _metrics_fingerprint(a) == _metrics_fingerprint(b)

    def test_default_backend_is_accelerated(self, small_scenario):
        from repro.core.accel import acceleration_enabled
        assert acceleration_enabled()
        default = SimulationEngine(small_scenario).run()
        with use_acceleration(True):
            forced = SimulationEngine(small_scenario).run()
        assert _metrics_fingerprint(default) == _metrics_fingerprint(forced)
