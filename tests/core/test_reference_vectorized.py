"""Bit-identity of the vectorized solver hot path vs the scalar oracle.

The acceleration layers (vectorized water-filling, the compiled
per-assignment solver, the memoized greedy ``Q(c)`` evaluations) all
promise *bit-identical* results to the original scalar implementations.
These tests enforce that promise on randomized instances, deliberately
including the degenerate corners -- zero weights, zero slopes, subnormal
magnitudes -- where a naive vectorization diverges first.
"""

import math

import numpy as np
import pytest

from repro.core.accel import acceleration_enabled, use_acceleration
from repro.core.dual import fast_solve
from repro.core.greedy import GreedyChannelAllocator
from repro.core.reference import (
    compile_slot_problem,
    solve_given_assignment,
    water_filling,
    water_filling_scalar,
)
from repro.net.interference import interference_graph_from_edges
from tests.conftest import make_problem, random_problem
from tests.core.test_greedy import chain_graph, chain_problem


def random_instance(rng):
    """One water-filling instance, biased toward degenerate corners."""
    n = int(rng.integers(1, 8))
    weights, bases, slopes = [], [], []
    for _ in range(n):
        pick = rng.random()
        if pick < 0.15:
            weights.append(0.0)  # inactive user
        elif pick < 0.25:
            weights.append(float(5e-324 * rng.integers(1, 10)))  # subnormal
        else:
            weights.append(float(rng.random() * 2.0))
        bases.append(float(10.0 ** rng.uniform(-300, 2)))
        pick = rng.random()
        if pick < 0.15:
            slopes.append(0.0)  # dead link
        elif pick < 0.25:
            slopes.append(float(10.0 ** rng.uniform(-310, -290)))
        else:
            slopes.append(float(rng.random() * 1.5))
    return weights, bases, slopes


class TestWaterFillingBitIdentity:
    def test_matches_scalar_oracle_on_random_instances(self):
        rng = np.random.default_rng(2024)
        checked = matched_errors = 0
        for _ in range(500):
            weights, bases, slopes = random_instance(rng)
            try:
                expected = water_filling_scalar(weights, bases, slopes)
            except ZeroDivisionError:
                # The oracle overflows weights/costs for this instance;
                # the vectorized path must fail the same way.
                with use_acceleration(True), pytest.raises(ZeroDivisionError):
                    water_filling(weights, bases, slopes)
                matched_errors += 1
                continue
            with use_acceleration(True):
                rho, value = water_filling(weights, bases, slopes)
            assert rho == expected[0], (weights, bases, slopes)
            assert value == expected[1], (weights, bases, slopes)
            checked += 1
        assert checked >= 300  # the sampler must mostly produce solvable cases

    def test_all_zero_weights(self):
        with use_acceleration(True):
            rho, value = water_filling([0.0, 0.0], [1.0, 1.0], [1.0, 1.0])
        assert rho == [0.0, 0.0] and value == 0.0

    def test_all_zero_slopes(self):
        with use_acceleration(True):
            assert water_filling([1.0, 2.0], [1.0, 1.0], [0.0, 0.0]) == \
                water_filling_scalar([1.0, 2.0], [1.0, 1.0], [0.0, 0.0])

    def test_subnormal_weights_take_fallback_branch(self):
        weights = [5e-324, 1e-323]
        bases = [1.0, 1.0]
        slopes = [1.0, 1.0]
        with use_acceleration(True):
            accel = water_filling(weights, bases, slopes)
        assert accel == water_filling_scalar(weights, bases, slopes)
        assert math.isclose(sum(accel[0]), 1.0)

    def test_validation_errors_identical(self):
        for mode in (True, False):
            with use_acceleration(mode):
                with pytest.raises(ValueError, match="equal length"):
                    water_filling([1.0], [1.0, 2.0], [1.0])
                with pytest.raises(ValueError, match="must be positive"):
                    water_filling([1.0], [0.0], [1.0])
                with pytest.raises(ValueError, match="non-negative"):
                    water_filling([-1.0], [1.0], [1.0])


class TestSolveGivenAssignmentBitIdentity:
    def test_matches_scalar_on_random_problems(self):
        rng = np.random.default_rng(77)
        for _ in range(60):
            problem = random_problem(rng)
            k = len(problem.users)
            mask = int(rng.integers(0, 2 ** k))
            mbs_ids = {u.user_id for i, u in enumerate(problem.users)
                       if mask >> i & 1}
            with use_acceleration(False):
                expected = solve_given_assignment(problem, mbs_ids)
            with use_acceleration(True):
                got = solve_given_assignment(problem, mbs_ids)
            assert got.mbs_user_ids == expected.mbs_user_ids
            assert got.rho_mbs == expected.rho_mbs
            assert got.rho_fbs == expected.rho_fbs
            assert got.objective == expected.objective

    def test_compiled_group_cache_shares_across_g_variants(self):
        problem = make_problem(4, n_fbss=2, g=2.0, seed=3)
        compiled = compile_slot_problem(problem)
        a = compiled.solve_assignment({0}, {1: 2.0, 2: 2.0})
        # Same MBS set, different FBS G: the MBS group result is reused.
        b = compiled.solve_assignment({0}, {1: 3.0, 2: 2.0})
        assert a.rho_mbs == b.rho_mbs
        with use_acceleration(False):
            expected = solve_given_assignment(
                problem.with_expected_channels({1: 3.0, 2: 2.0}), {0})
        assert b.objective == expected.objective
        assert b.rho_fbs == expected.rho_fbs


class TestGreedyMemoBitIdentity:
    def test_memoized_matches_exhaustive_scan(self):
        """Memoized greedy == literal exhaustive scan, allocations included."""
        posteriors = {0: 0.95, 1: 0.8, 2: 0.65, 3: 0.5}
        for seed in range(5):
            problem = chain_problem(seed=seed)
            memoized = GreedyChannelAllocator(
                chain_graph(), solver=fast_solve, memoize=True)
            literal = GreedyChannelAllocator(
                chain_graph(), solver=fast_solve, memoize=False,
                exhaustive_scan=True)
            a = memoized.allocate(problem, [0, 1, 2, 3], posteriors)
            b = literal.allocate(problem, [0, 1, 2, 3], posteriors)
            assert a.channel_allocation == b.channel_allocation
            assert a.trace.q_final == pytest.approx(b.trace.q_final, abs=1e-9)
            assert a.allocation.objective == b.allocation.objective

    def test_memo_reduces_default_path_solves(self):
        """With the dual solver, memo hits replace full dual solves."""
        problem = chain_problem(seed=11)
        posteriors = {0: 0.9, 1: 0.7}
        plain = GreedyChannelAllocator(chain_graph(), memoize=False)
        memoized = GreedyChannelAllocator(chain_graph(), memoize=True)
        a = plain.allocate(problem, [0, 1], posteriors)
        b = memoized.allocate(problem, [0, 1], posteriors)
        assert b.channel_allocation == a.channel_allocation
        assert b.evaluations + b.cache_hits >= a.evaluations
        assert b.evaluations <= a.evaluations

    def test_accel_flag_round_trips(self):
        assert acceleration_enabled()
        with use_acceleration(False):
            assert not acceleration_enabled()
            with use_acceleration(True):
                assert acceleration_enabled()
            assert not acceleration_enabled()
        assert acceleration_enabled()
