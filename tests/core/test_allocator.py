"""Tests for the scheme registry."""

import pytest

from repro.core.allocator import SCHEMES, ProposedAllocator, get_allocator
from repro.core.heuristics import EqualAllocationHeuristic, MultiuserDiversityHeuristic
from repro.utils.errors import ConfigurationError
from tests.conftest import make_problem


class TestRegistry:
    def test_all_schemes_instantiable(self):
        for scheme in SCHEMES:
            allocator = get_allocator(scheme)
            assert allocator.name == scheme

    def test_types(self):
        assert isinstance(get_allocator("proposed"), ProposedAllocator)
        assert isinstance(get_allocator("heuristic1"), EqualAllocationHeuristic)
        assert isinstance(get_allocator("heuristic2"), MultiuserDiversityHeuristic)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            get_allocator("magic")

    def test_heuristics_reject_options(self):
        with pytest.raises(ConfigurationError):
            get_allocator("heuristic1", step_size=0.1)

    def test_proposed_accepts_solver_options(self):
        allocator = get_allocator("proposed", max_iterations=100)
        assert allocator.name == "proposed"


class TestEquivalence:
    def test_proposed_and_fast_agree(self):
        problem = make_problem(4, n_fbss=2, seed=21)
        slow = get_allocator("proposed").allocate(problem)
        fast = get_allocator("proposed-fast").allocate(problem)
        assert slow.objective == pytest.approx(fast.objective, abs=1e-7)

    def test_every_scheme_produces_feasible_allocations(self):
        from repro.core.problem import check_feasible
        problem = make_problem(5, n_fbss=2, seed=22)
        for scheme in SCHEMES:
            allocation = get_allocator(scheme).allocate(problem)
            check_feasible(problem, allocation)

    def test_proposed_dominates_heuristics_in_objective(self):
        problem = make_problem(5, n_fbss=2, seed=23)
        proposed = get_allocator("proposed-fast").allocate(problem).objective
        for scheme in ("heuristic1", "heuristic2"):
            assert get_allocator(scheme).allocate(problem).objective <= proposed + 1e-9
