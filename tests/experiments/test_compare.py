"""compare_results: bit identity, provenance, and per-scheme deltas."""

import json

import pytest

from repro.experiments.compare import PROVENANCE_KEYS, compare_results
from repro.utils.errors import ConfigurationError


def sweep_payload(*, mean=30.0, seed=7, schemes=("heuristic1", "proposed"),
                  points=3):
    return {
        "kind": "sweep",
        "parameter": "n_channels",
        "values": list(range(points)),
        "provenance": {"seed": seed, "backend": "numpy",
                       "acceleration": "none", "scenario_hash": "aaa",
                       "config_hash": "bbb"},
        "summaries": {
            scheme: [{"mean_psnr": {"mean": mean + index}}
                     for index in range(points)]
            for scheme in schemes
        },
    }


def fig3_payload(*, psnr=31.0, seed=7):
    return {
        "kind": "fig3",
        "provenance": {"seed": seed, "backend": "numpy"},
        "rows": [{"scheme": "proposed",
                  "per_user_psnr": {"0": {"mean": psnr},
                                    "1": {"mean": psnr + 2.0}}}],
    }


def write(path, payload):
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


class TestBitIdentity:
    def test_identical_files_short_circuit(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload())
        b = write(tmp_path / "b.json", sweep_payload())
        report = compare_results(a, b)
        assert report.bit_identical is True
        assert report.provenance_agrees is True
        assert report.max_abs_delta == 0.0
        assert report.format().splitlines()[-1] == "bit-identical  : yes"

    def test_whitespace_difference_breaks_bit_identity(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload())
        b = tmp_path / "b.json"
        b.write_text(json.dumps(sweep_payload(), sort_keys=True))
        report = compare_results(a, b)
        assert report.bit_identical is False
        assert report.max_abs_delta == 0.0  # numerically still equal


class TestSchemeDeltas:
    def test_per_point_deltas_are_b_minus_a(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload(mean=30.0))
        b = write(tmp_path / "b.json", sweep_payload(mean=30.5))
        report = compare_results(a, b)
        assert report.bit_identical is False
        assert report.provenance_agrees is True
        deltas = {d.scheme: d.deltas for d in report.scheme_deltas}
        assert set(deltas) == {"heuristic1", "proposed"}
        assert all(abs(value - 0.5) < 1e-12
                   for values in deltas.values() for value in values)
        assert abs(report.max_abs_delta - 0.5) < 1e-12
        assert "max |delta|" in report.format()

    def test_schemes_missing_from_one_side_are_reported(self, tmp_path):
        a = write(tmp_path / "a.json",
                  sweep_payload(schemes=("heuristic1", "proposed")))
        b = write(tmp_path / "b.json",
                  sweep_payload(schemes=("proposed", "greedy")))
        report = compare_results(a, b)
        assert report.only_in_a == ("heuristic1",)
        assert report.only_in_b == ("greedy",)

    def test_point_count_mismatch_compares_the_overlap(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload(points=3))
        b = write(tmp_path / "b.json", sweep_payload(points=5))
        report = compare_results(a, b)
        proposed = next(d for d in report.scheme_deltas
                        if d.scheme == "proposed")
        assert len(proposed.deltas) == 3
        assert any("overlap" in note for note in report.notes)

    def test_fig3_files_compare_their_user_means(self, tmp_path):
        a = write(tmp_path / "a.json", fig3_payload(psnr=31.0))
        b = write(tmp_path / "b.json", fig3_payload(psnr=32.0))
        report = compare_results(a, b)
        delta, = report.scheme_deltas
        assert delta.scheme == "proposed"
        assert delta.deltas == (1.0,)

    def test_kind_mismatch_skips_numeric_comparison(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload())
        b = write(tmp_path / "b.json", fig3_payload())
        report = compare_results(a, b)
        assert (report.kind_a, report.kind_b) == ("sweep", "fig3")
        assert report.scheme_deltas == ()
        assert "numeric comparison skipped" in report.format()


class TestProvenance:
    def test_seed_mismatch_is_flagged(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload(seed=7))
        b = write(tmp_path / "b.json", sweep_payload(seed=8))
        report = compare_results(a, b)
        assert report.provenance_mismatches == ("seed",)
        assert report.provenance_agrees is False
        assert "MISMATCH" in report.format()

    def test_missing_provenance_is_a_note_not_a_mismatch(self, tmp_path):
        payload = sweep_payload()
        del payload["provenance"]
        a = write(tmp_path / "a.json", payload)
        b = write(tmp_path / "b.json", sweep_payload())
        report = compare_results(a, b)
        assert report.provenance_mismatches == ()
        assert any("no provenance" in note for note in report.notes)

    def test_every_provenance_key_is_checked(self, tmp_path):
        base = sweep_payload()
        a = write(tmp_path / "a.json", base)
        perturbed = sweep_payload()
        for key in PROVENANCE_KEYS:
            perturbed["provenance"][key] = "changed"
        b = write(tmp_path / "b.json", perturbed)
        report = compare_results(a, b)
        assert set(report.provenance_mismatches) == set(PROVENANCE_KEYS)


class TestErrorsAndSerialisation:
    def test_missing_file_raises(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload())
        with pytest.raises(ConfigurationError, match="does not exist"):
            compare_results(a, tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload())
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            compare_results(a, bad)

    def test_to_dict_is_json_serialisable(self, tmp_path):
        a = write(tmp_path / "a.json", sweep_payload(mean=30.0))
        b = write(tmp_path / "b.json", sweep_payload(mean=31.0))
        payload = compare_results(a, b).to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["bit_identical"] is False
        assert round_tripped["provenance_agrees"] is True
        assert round_tripped["scheme_deltas"]["proposed"] == [1.0, 1.0, 1.0]
