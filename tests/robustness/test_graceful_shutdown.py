"""The two-stage graceful-shutdown protocol.

First signal: stop dispatching, drain in-flight cells to the
checkpoint, raise :class:`~repro.utils.errors.SweepInterrupted` (the
CLI's exit code 4).  Second signal: run the registered flushers and
hard-exit with code 6.  The payoff being verified: an interrupted sweep
resumes byte-identical to an uninterrupted one, at any worker count.
"""

import json
import signal

import pytest

from repro.exec.executor import SerialExecutor
from repro.exec.plan import plan_campaign
from repro.exec.supervisor import (
    EXIT_HARD_ABORT,
    ShutdownCoordinator,
    SupervisedExecutor,
    active_shutdown,
    shutdown_draining,
)
from repro.experiments.results_io import sweep_to_dict
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.runner import sweep
from repro.utils.errors import SweepInterrupted

SWEEP_ARGS = ("n_channels", [4, 6], ["heuristic1", "heuristic2"])


def run(config, **kwargs):
    return sweep(config, *SWEEP_ARGS, n_runs=3, **kwargs)


def as_json(result) -> str:
    return json.dumps(sweep_to_dict(result), sort_keys=True)


@pytest.fixture
def fast_config(single_config):
    return single_config.replace(n_gops=1)


class TriggerAfter:
    """Progress observer that fires the coordinator after N outcomes."""

    def __init__(self, coordinator: ShutdownCoordinator, after: int) -> None:
        self.coordinator = coordinator
        self.after = after
        self.seen = 0

    def observe(self, outcome) -> None:
        self.seen += 1
        if self.seen == self.after:
            self.coordinator.trigger(signal.SIGINT)


class TestShutdownCoordinator:
    def test_stages(self):
        exits = []
        coordinator = ShutdownCoordinator(hard_exit=exits.append)
        assert coordinator.stage == 0 and not coordinator.draining
        coordinator.trigger()
        assert coordinator.stage == 1 and coordinator.draining
        assert exits == []  # first signal never exits
        coordinator.trigger()
        assert exits == [EXIT_HARD_ABORT]

    def test_second_signal_runs_flushers_before_exit(self):
        order = []
        coordinator = ShutdownCoordinator(
            hard_exit=lambda code: order.append(("exit", code)))
        coordinator.add_flusher(lambda: order.append("flush-a"))
        coordinator.add_flusher(lambda: order.append("flush-b"))
        coordinator.trigger()
        assert order == []  # draining does not flush yet
        coordinator.trigger()
        assert order == ["flush-a", "flush-b", ("exit", EXIT_HARD_ABORT)]

    def test_broken_flusher_does_not_block_the_abort(self):
        exits = []
        coordinator = ShutdownCoordinator(hard_exit=exits.append)

        def broken():
            raise RuntimeError("flusher died")

        coordinator.add_flusher(broken)
        coordinator.trigger()
        coordinator.trigger()
        assert exits == [EXIT_HARD_ABORT]

    def test_remove_flusher(self):
        ran = []
        coordinator = ShutdownCoordinator(hard_exit=lambda code: None)
        coordinator.add_flusher(ran.append)
        coordinator.remove_flusher(ran.append)
        coordinator.remove_flusher(ran.append)  # absent: no error
        coordinator.trigger()
        coordinator.trigger()
        assert ran == []

    def test_install_uninstall_restores_handlers_and_global(self):
        previous_int = signal.getsignal(signal.SIGINT)
        previous_term = signal.getsignal(signal.SIGTERM)
        coordinator = ShutdownCoordinator(hard_exit=lambda code: None)
        with coordinator:
            assert active_shutdown() is coordinator
            assert signal.getsignal(signal.SIGINT) != previous_int
        assert active_shutdown() is None
        assert not shutdown_draining()
        assert signal.getsignal(signal.SIGINT) == previous_int
        assert signal.getsignal(signal.SIGTERM) == previous_term

    def test_installed_handler_drives_the_stages(self):
        exits = []
        coordinator = ShutdownCoordinator(hard_exit=exits.append)
        with coordinator:
            signal.raise_signal(signal.SIGINT)
            assert coordinator.draining and exits == []
            assert shutdown_draining()
            signal.raise_signal(signal.SIGINT)
        assert exits == [EXIT_HARD_ABORT]


class TestDrainMidSweep:
    def test_serial_drain_then_resume_byte_identical(self, fast_config,
                                                     tmp_path):
        reference = run(fast_config)
        path = tmp_path / "sweep.ckpt"
        coordinator = ShutdownCoordinator(hard_exit=lambda code: None)
        with coordinator:
            with pytest.raises(SweepInterrupted):
                run(fast_config, checkpoint_path=path,
                    progress=TriggerAfter(coordinator, after=4))

        partial = SweepCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=3, seed=fast_config.seed)
        assert 0 < len(partial) < 12  # drained early, cells persisted

        resumed = run(fast_config, checkpoint_path=path, jobs=2)
        assert as_json(resumed) == as_json(reference)

    def test_supervised_drain_then_resume_byte_identical(self, fast_config,
                                                         tmp_path):
        reference = run(fast_config)
        path = tmp_path / "sweep.ckpt"
        coordinator = ShutdownCoordinator(hard_exit=lambda code: None)
        executor = SupervisedExecutor(2, cell_timeout=120.0,
                                      shutdown=coordinator)
        with pytest.raises(SweepInterrupted):
            run(fast_config, checkpoint_path=path, executor=executor,
                progress=TriggerAfter(coordinator, after=3))

        partial = SweepCheckpoint(
            path, parameter=SWEEP_ARGS[0], values=SWEEP_ARGS[1],
            schemes=SWEEP_ARGS[2], n_runs=3, seed=fast_config.seed)
        # In-flight cells drained to the checkpoint before stopping.
        assert len(partial) >= 3

        resumed = run(fast_config, checkpoint_path=path)
        assert as_json(resumed) == as_json(reference)

    def test_serial_executor_stops_dispatching_when_draining(self,
                                                             fast_config):
        coordinator = ShutdownCoordinator(hard_exit=lambda code: None)
        plan = plan_campaign(fast_config, 3)
        with coordinator:
            coordinator.trigger()
            outcomes = list(SerialExecutor().run(plan.cells))
        assert outcomes == []

    def test_campaign_without_checkpoint_reports_interruption(self,
                                                              fast_config):
        from repro.sim.runner import MonteCarloRunner

        coordinator = ShutdownCoordinator(hard_exit=lambda code: None)
        with coordinator:
            coordinator.trigger()
            runner = MonteCarloRunner(fast_config, n_runs=3)
            with pytest.raises(SweepInterrupted):
                runner.run_all()
