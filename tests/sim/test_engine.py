"""Tests for the slotted simulation engine."""

import numpy as np
import pytest

from repro.core.problem import check_feasible
from repro.net.interference import is_valid_allocation
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import RunMetrics


class TestDeterminism:
    def test_same_seed_same_result(self, single_config):
        a = SimulationEngine(single_config).run()
        b = SimulationEngine(single_config).run()
        assert a.per_user_psnr == b.per_user_psnr
        assert np.array_equal(a.collision_rates, b.collision_rates)

    def test_different_seeds_differ(self, single_config):
        a = SimulationEngine(single_config.with_seed(1)).run()
        b = SimulationEngine(single_config.with_seed(2)).run()
        assert a.per_user_psnr != b.per_user_psnr

    def test_acceleration_and_memo_are_bit_identical(self, interfering_config):
        """The default accelerated path must equal the scalar seed path."""
        from repro.core.accel import use_acceleration
        accel = SimulationEngine(interfering_config).run()
        with use_acceleration(False):
            scalar = SimulationEngine(
                interfering_config.replace(memoize_q=False)).run()
        assert accel.per_user_psnr == scalar.per_user_psnr
        assert accel.upper_bound_psnr == scalar.upper_bound_psnr
        assert np.array_equal(accel.collision_rates, scalar.collision_rates)

    def test_warm_start_runs_and_stays_close(self, interfering_config):
        """Warm starts change the iterate path but not the physics."""
        cold = SimulationEngine(interfering_config).run()
        warm = SimulationEngine(
            interfering_config.replace(warm_start=True)).run()
        assert set(warm.per_user_psnr) == set(cold.per_user_psnr)
        for uid, psnr in warm.per_user_psnr.items():
            assert psnr == pytest.approx(cold.per_user_psnr[uid], rel=0.05)


class TestPhaseTimings:
    def test_phases_cover_the_run(self, single_config):
        engine = SimulationEngine(single_config)
        metrics = engine.run()
        assert set(metrics.phase_seconds) == {
            "sensing", "access", "allocation", "transmission"}
        assert all(v >= 0.0 for v in metrics.phase_seconds.values())
        assert sum(metrics.phase_seconds.values()) > 0.0
        assert metrics.phase_seconds == engine.phase_seconds


class TestSlotMechanics:
    def test_records_only_when_asked(self, single_config):
        engine = SimulationEngine(single_config)
        engine.step()
        assert engine.records == []
        recording = SimulationEngine(single_config, record_slots=True)
        recording.step()
        assert len(recording.records) == 1

    def test_every_slot_allocation_feasible(self, single_config):
        engine = SimulationEngine(single_config, record_slots=True)
        for _ in range(single_config.n_slots):
            record = engine.step()
            check_feasible(record.problem, record.allocation)

    def test_increments_consistent_with_allocation(self, single_config):
        engine = SimulationEngine(single_config, record_slots=True)
        for _ in range(10):
            record = engine.step()
            for user in record.problem.users:
                increment = record.increments[user.user_id]
                assert increment >= 0.0
                if record.allocation.time_share(user) == 0.0:
                    assert increment == 0.0

    def test_non_interfering_full_reuse(self, single_config):
        engine = SimulationEngine(single_config, record_slots=True)
        record = engine.step()
        available = set(record.access.available_channels.tolist())
        assert record.channel_allocation[1] == available
        assert record.greedy_trace is None
        assert record.bound_gap == 0.0

    def test_psnr_states_monotone_within_gop(self, single_config):
        engine = SimulationEngine(single_config)
        previous = {uid: clock.psnr_db for uid, clock in engine.clocks.items()}
        for slot in range(single_config.deadline_slots - 1):
            engine.step()
            for uid, clock in engine.clocks.items():
                assert clock.psnr_db >= previous[uid] - 1e-12
                previous[uid] = clock.psnr_db

    def test_gop_rollover(self, single_config):
        engine = SimulationEngine(single_config)
        for _ in range(single_config.deadline_slots):
            engine.step()
        for clock in engine.clocks.values():
            assert len(clock.completed_gop_psnrs) == 1
            assert clock.slot_in_window == 0


class TestInterferingPath:
    def test_greedy_trace_and_bound(self, interfering_config):
        engine = SimulationEngine(interfering_config, record_slots=True)
        record = engine.step()
        assert record.greedy_trace is not None
        assert record.bound_gap >= 0.0
        graph = interfering_config.topology.interference_graph
        assert is_valid_allocation(graph, record.channel_allocation)

    def test_heuristics_get_color_partition(self, interfering_config):
        config = interfering_config.with_scheme("heuristic1")
        engine = SimulationEngine(config, record_slots=True)
        record = engine.step()
        assert record.greedy_trace is None
        graph = config.topology.interference_graph
        assert is_valid_allocation(graph, record.channel_allocation)

    def test_upper_bound_at_least_mean(self, interfering_config):
        metrics = SimulationEngine(interfering_config).run()
        assert metrics.upper_bound_psnr >= metrics.mean_psnr - 1e-9


class TestRealizedThroughputMode:
    def test_realized_no_better_than_expected_mode(self, single_config):
        # Counting only truly idle channels (collisions destroy payload)
        # cannot beat the paper's expected-G recursion on average.
        expected_mode = SimulationEngine(single_config).run()
        realized_mode = SimulationEngine(
            single_config.replace(realized_throughput=True)).run()
        assert realized_mode.mean_psnr <= expected_mode.mean_psnr + 0.8

    def test_realized_mode_runs_interfering(self, interfering_config):
        metrics = SimulationEngine(
            interfering_config.replace(realized_throughput=True)).run()
        assert isinstance(metrics, RunMetrics)


class TestCollisionAccounting:
    def test_long_run_cap(self):
        from repro.experiments.scenarios import single_fbs_scenario
        config = single_fbs_scenario(n_gops=40, seed=5, scheme="heuristic1")
        engine = SimulationEngine(config)
        metrics = engine.run()
        assert np.all(metrics.collision_rates <= config.gamma + 0.05)


class TestAllSchemesRun:
    @pytest.mark.parametrize("scheme", ["proposed-fast", "heuristic1", "heuristic2"])
    def test_scheme_completes(self, single_config, scheme):
        metrics = SimulationEngine(single_config.with_scheme(scheme)).run()
        assert metrics.n_users == 3
        assert all(psnr >= 26.0 for psnr in metrics.per_user_psnr.values())
