"""Tests for the two-state occupancy chains (Section III-A, eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectrum.markov import (
    BUSY,
    IDLE,
    OccupancyChain,
    stationary_distribution,
    transition_probs_for_utilization,
)
from repro.utils.errors import ConfigurationError


class TestUtilization:
    def test_paper_parameters(self):
        # P01 = 0.4, P10 = 0.3 (Section V-A) => eta = 0.4/0.7.
        chain = OccupancyChain(0.4, 0.3, rng=0)
        assert chain.utilization == pytest.approx(0.4 / 0.7)

    def test_empirical_utilization_matches_eq1(self):
        chain = OccupancyChain(0.4, 0.3, rng=1)
        states = chain.sample_trajectory(40000)
        assert states.mean() == pytest.approx(chain.utilization, abs=0.02)

    @given(p01=st.floats(0.05, 0.95), p10=st.floats(0.05, 0.95))
    @settings(max_examples=30)
    def test_property_utilization_formula(self, p01, p10):
        chain = OccupancyChain(p01, p10, rng=0)
        assert chain.utilization == pytest.approx(p01 / (p01 + p10))


class TestDynamics:
    def test_initial_state_respected(self):
        assert OccupancyChain(0.4, 0.3, initial_state=IDLE, rng=0).state == IDLE
        assert OccupancyChain(0.4, 0.3, initial_state=BUSY, rng=0).state == BUSY

    def test_stationary_initialisation(self):
        # With a stationary start, slot-0 busy frequency matches eta.
        busy = sum(OccupancyChain(0.4, 0.3, rng=seed).state
                   for seed in range(2000))
        assert busy / 2000 == pytest.approx(0.4 / 0.7, abs=0.05)

    def test_deterministic_with_seed(self):
        a = OccupancyChain(0.4, 0.3, initial_state=0, rng=5).sample_trajectory(100)
        b = OccupancyChain(0.4, 0.3, initial_state=0, rng=5).sample_trajectory(100)
        assert np.array_equal(a, b)

    def test_absorbing_idle(self):
        chain = OccupancyChain(0.0, 1.0, initial_state=BUSY, rng=0)
        states = chain.sample_trajectory(10)
        assert states[0] == IDLE
        assert np.all(states == IDLE)

    def test_transition_frequencies(self):
        chain = OccupancyChain(0.25, 0.6, initial_state=IDLE, rng=2)
        states = np.concatenate([[IDLE], chain.sample_trajectory(60000)])
        idle_to_busy = np.sum((states[:-1] == IDLE) & (states[1:] == BUSY))
        idle_total = np.sum(states[:-1] == IDLE)
        assert idle_to_busy / idle_total == pytest.approx(0.25, abs=0.01)

    def test_transition_matrix_row_stochastic(self):
        matrix = OccupancyChain(0.4, 0.3, rng=0).transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert matrix[0, 1] == 0.4
        assert matrix[1, 0] == 0.3

    def test_negative_trajectory_rejected(self):
        with pytest.raises(ConfigurationError):
            OccupancyChain(0.4, 0.3, rng=0).sample_trajectory(-1)


class TestValidation:
    def test_frozen_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            OccupancyChain(0.0, 0.0)

    @pytest.mark.parametrize("p01,p10", [(-0.1, 0.3), (0.4, 1.5)])
    def test_invalid_probabilities(self, p01, p10):
        with pytest.raises(ConfigurationError):
            OccupancyChain(p01, p10)

    def test_invalid_initial_state(self):
        with pytest.raises(ConfigurationError):
            OccupancyChain(0.4, 0.3, initial_state=2)


class TestUtilizationInversion:
    @pytest.mark.parametrize("eta", [0.3, 0.4, 0.5, 0.6, 0.7])
    def test_round_trip(self, eta):
        # The Fig. 4(c)/6(a) sweep: p10 fixed at 0.3.
        p01, p10 = transition_probs_for_utilization(eta, p10=0.3)
        assert OccupancyChain(p01, p10, rng=0).utilization == pytest.approx(eta)

    def test_unreachable_utilization(self):
        with pytest.raises(ConfigurationError):
            transition_probs_for_utilization(0.9, p10=0.5)

    def test_degenerate_eta_rejected(self):
        with pytest.raises(ConfigurationError):
            transition_probs_for_utilization(0.0)
        with pytest.raises(ConfigurationError):
            transition_probs_for_utilization(1.0)


class TestStationaryDistribution:
    def test_sums_to_one(self):
        dist = stationary_distribution(0.4, 0.3)
        assert dist.sum() == pytest.approx(1.0)
        assert dist[1] == pytest.approx(0.4 / 0.7)

    def test_is_fixed_point(self):
        chain = OccupancyChain(0.25, 0.6, rng=0)
        dist = stationary_distribution(0.25, 0.6)
        assert np.allclose(dist @ chain.transition_matrix(), dist)
