#!/usr/bin/env python3
"""Gate the committed benchmark trajectories against regressions.

The ``BENCH_*.json`` files at the repository root are append-only
histories: every benchmark run adds one entry, so consecutive entries of
the same benchmark form a performance trajectory.  This script compares
the latest entry of each benchmark against the previous one and fails
when a speedup-like metric fell by more than the noise tolerance (or an
overhead-like metric grew by more than its tolerance).  It needs nothing
beyond the standard library, so CI can run it before installing the
simulation dependencies.

Metric classification is by name:

* higher-is-better -- any key containing ``speedup`` (``speedup``,
  ``alloc_speedup``, ``cached_speedup``, ``disk_speedup_floor0``, ...);
* lower-is-better -- any key containing ``overhead``
  (``tracing_overhead_pct``).

Keys present only in the latest entry are new metrics (first recording,
nothing to gate against); keys present only in the previous entry were
renamed or retired and are reported but not gated.  Both situations are
expected when a benchmark evolves -- e.g. ``disk_speedup`` giving way to
``disk_speedup_floor0``, or the ``allocation-batched`` benchmark landing
with its first ``alloc_speedup`` sample.
"""

import glob
import json
import os
import sys

#: Absolute drop (in "x" units) a speedup may show before the gate
#: trips.  CI runners are noisy shared machines; trajectory entries are
#: single measurements, not medians, so sub-0.3x wobble is routine.
SPEEDUP_TOLERANCE = 0.3

#: Absolute growth (in percentage points) an overhead metric may show.
OVERHEAD_TOLERANCE_PCT = 5.0

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def classify(key):
    """'up' for higher-is-better, 'down' for lower-is-better, else None."""
    if "speedup" in key:
        return "up"
    if "overhead" in key:
        return "down"
    return None


def load_trajectories(paths):
    """``{benchmark name: [entries in recorded order]}`` across files."""
    trajectories = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            entries = json.load(handle)
        if not isinstance(entries, list):
            raise SystemExit(f"{path}: expected a JSON list of entries")
        for entry in entries:
            name = entry.get("benchmark")
            if not name:
                raise SystemExit(f"{path}: entry without a 'benchmark' key")
            trajectories.setdefault(name, []).append(entry)
    return trajectories


def gate(trajectories):
    """Return (failures, report lines) over every benchmark trajectory."""
    failures = []
    report = []
    for name in sorted(trajectories):
        entries = trajectories[name]
        latest = entries[-1]
        metrics = [k for k in latest if classify(k)]
        if len(entries) < 2:
            report.append(f"{name}: first recording "
                          f"({', '.join(sorted(metrics)) or 'no metrics'}) "
                          f"-- nothing to gate")
            continue
        previous = entries[-2]
        for key in sorted(set(metrics) | {k for k in previous
                                          if classify(k)}):
            direction = classify(key)
            if key not in previous:
                report.append(f"{name}: {key}={latest[key]} is new "
                              f"-- nothing to gate")
                continue
            if key not in latest:
                report.append(f"{name}: {key} retired "
                              f"(was {previous[key]})")
                continue
            old, new = float(previous[key]), float(latest[key])
            if direction == "up":
                floor = old - SPEEDUP_TOLERANCE
                ok = new >= floor
                line = (f"{name}: {key} {old} -> {new} "
                        f"(floor {floor:.2f})")
            else:
                ceiling = old + OVERHEAD_TOLERANCE_PCT
                ok = new <= ceiling
                line = (f"{name}: {key} {old} -> {new} "
                        f"(ceiling {ceiling:.2f})")
            report.append(line + ("" if ok else "  ** REGRESSION **"))
            if not ok:
                failures.append(line)
    return failures, report


def main(argv):
    paths = argv or sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    if not paths:
        raise SystemExit("no BENCH_*.json trajectories found")
    failures, report = gate(load_trajectories(paths))
    for line in report:
        print(line)
    if failures:
        print(f"\nperf gate FAILED: {len(failures)} regression(s)",
              file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
