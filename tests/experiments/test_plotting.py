"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plotting import ascii_chart, chart_sweep
from repro.utils.errors import ConfigurationError


class TestAsciiChart:
    def test_basic_rendering(self):
        chart = ascii_chart({"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
                            height=5, width=20)
        assert "o = a" in chart
        assert "x = b" in chart
        assert "|" in chart

    def test_extremes_on_axis(self):
        chart = ascii_chart({"a": [10.0, 20.0]}, height=4, width=10)
        assert "  20.00 |" in chart
        assert "  10.00 |" in chart

    def test_marker_positions(self):
        chart = ascii_chart({"a": [0.0, 1.0]}, height=3, width=11)
        lines = chart.splitlines()
        # Max value on the top row at the last column; min on the bottom
        # row at the first column.
        assert lines[0].endswith("o")
        assert lines[2].split("|")[1][0] == "o"

    def test_flat_series_renders(self):
        chart = ascii_chart({"a": [5.0, 5.0, 5.0]}, height=4, width=10)
        plot_area = "\n".join(line for line in chart.splitlines() if "|" in line)
        assert plot_area.count("o") == 3

    def test_y_label(self):
        chart = ascii_chart({"a": [1.0, 2.0]}, height=3, width=8,
                            y_label="PSNR")
        assert chart.splitlines()[0] == "PSNR"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1.0, 2.0], "b": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [1.0, 2.0]}, height=1)
        with pytest.raises(ConfigurationError):
            ascii_chart({f"s{i}": [1.0, 2.0] for i in range(9)})


class TestChartSweep:
    def test_renders_sweep(self, single_config):
        from repro.sim.runner import sweep
        result = sweep(single_config, "n_channels", [4, 8],
                       ["heuristic1"], n_runs=1)
        chart = chart_sweep(result)
        assert "heuristic1" in chart
        assert "x: n_channels = 4, 8" in chart

    def test_upper_bound_series_included(self, interfering_config):
        from repro.sim.runner import sweep
        result = sweep(interfering_config, "n_channels", [4, 5],
                       ["proposed-fast"], n_runs=1)
        chart = chart_sweep(result, include_upper_bound=True)
        assert "upper bound" in chart


class TestCliChartFlag:
    def test_fig4b_chart(self, capsys):
        from repro.cli import main
        assert main(["fig4b", "--runs", "1", "--gops", "1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Y-PSNR (dB)" in out
        assert "x: n_channels" in out
