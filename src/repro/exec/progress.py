"""Per-cell timing telemetry and progress reporting for executors.

A figure-scale sweep is hundreds of cells over minutes of wall clock;
this module gives the operator a live line per completed cell and an
end-of-sweep timing report (wall clock vs. summed cell time, effective
parallelism, per-scheme cost, slowest cells) without the simulation code
knowing anything about terminals.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, TextIO, Tuple

from repro.exec.executor import CellOutcome
from repro.obs.metrics import (
    accumulate_phase_seconds,
    format_phase_seconds,
    global_registry,
    metrics_enabled,
)
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class CellTiming:
    """Telemetry of one executed cell.

    Attributes
    ----------
    key:
        Canonical ``scheme|point|run`` cell key.
    scheme, point_index, run_index:
        The cell's coordinates in the sweep grid.
    seconds:
        Wall-clock execution time inside the worker.
    ok:
        ``True`` for a surviving replication, ``False`` for a
        :class:`~repro.sim.metrics.FailedRun`.
    """

    key: str
    scheme: str
    point_index: int
    run_index: int
    seconds: float
    ok: bool


@dataclass(frozen=True)
class TimingReport:
    """End-of-sweep timing summary.

    Attributes
    ----------
    timings:
        One :class:`CellTiming` per executed cell.
    wall_seconds:
        Parent-side wall clock from tracker start to the last observed
        cell (or to :meth:`ProgressTracker.report` time when nothing was
        executed, e.g. a fully-checkpointed resume).
    n_cached:
        Cells satisfied from a checkpoint instead of being executed.
    phase_seconds:
        Engine wall-clock seconds per simulation phase (``sensing``,
        ``access``, ``allocation``, ``transmission``), summed across the
        observed cells that carried timing telemetry.  Empty when no
        cell did (e.g. results deserialized from a checkpoint).
    """

    timings: Tuple[CellTiming, ...]
    wall_seconds: float
    n_cached: int = 0
    phase_seconds: Mapping[str, float] = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        """Cells actually executed (excludes checkpointed ones)."""
        return len(self.timings)

    @property
    def n_failed(self) -> int:
        """Executed cells that ended as :class:`FailedRun`."""
        return sum(1 for t in self.timings if not t.ok)

    @property
    def busy_seconds(self) -> float:
        """Summed per-cell execution time across all workers."""
        return sum(t.seconds for t in self.timings)

    @property
    def effective_parallelism(self) -> float:
        """Busy time over wall time: ~1.0 serial, ~N on N busy workers.

        ``0.0`` when nothing was executed (a fully-checkpointed resume
        has no busy time) or the wall clock is degenerate -- never a
        division by zero.
        """
        if self.wall_seconds <= 0.0 or not self.timings:
            return 0.0
        return self.busy_seconds / self.wall_seconds

    def per_scheme_seconds(self) -> Dict[str, float]:
        """Summed cell time by scheme (which schemes dominate the bill)."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            totals[timing.scheme] = totals.get(timing.scheme, 0.0) + timing.seconds
        return totals

    def slowest(self, n: int = 3) -> List[CellTiming]:
        """The ``n`` most expensive cells, most expensive first."""
        return sorted(self.timings, key=lambda t: t.seconds, reverse=True)[:n]

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"cells executed : {self.n_cells}"
            + (f" ({self.n_failed} failed)" if self.n_failed else "")
            + (f", {self.n_cached} resumed from checkpoint"
               if self.n_cached else ""),
            f"wall clock     : {self.wall_seconds:.2f} s",
            f"cell time      : {self.busy_seconds:.2f} s "
            f"({self.effective_parallelism:.2f}x effective parallelism)",
        ]
        if self.wall_seconds > 0.0 and self.n_cells:
            lines.append(
                f"throughput     : {self.n_cells / self.wall_seconds:.2f} cells/s")
        if self.phase_seconds:
            lines.append("per phase      : "
                         + format_phase_seconds(self.phase_seconds))
        scheme_totals = self.per_scheme_seconds()
        if scheme_totals:
            lines.append("per scheme     : " + "; ".join(
                f"{scheme} {seconds:.2f} s"
                for scheme, seconds in sorted(scheme_totals.items())))
        slowest = self.slowest()
        if slowest:
            lines.append("slowest cells  : " + "; ".join(
                f"{t.key} {t.seconds:.2f} s" for t in slowest))
        return "\n".join(lines)


#: One completed cell as narrated by :meth:`ProgressTracker.observe`.
_CELL_LINE = re.compile(
    r"^\[(?P<label>[^\]]+)\] (?P<done>\d+)/(?P<total>\d+|\?) "
    r"(?P<key>\S+) (?P<status>ok|FAILED) (?P<seconds>\d+(?:\.\d+)?)s$")

#: The resume announcement written by :meth:`ProgressTracker.begin`.
_RESUME_LINE = re.compile(
    r"^\[(?P<label>[^\]]+)\] resuming: (?P<cached>\d+) cell\(s\) already "
    r"checkpointed, (?P<total>\d+) to run$")


def parse_progress_line(line: str) -> Optional[dict]:
    """Parse one :class:`ProgressTracker` stderr line into an event dict.

    The tracker's live narration is the executor's only incremental
    output channel, so out-of-process observers (the job service tails a
    job's stderr log through this) recover structured telemetry from it:

    * a per-cell line yields ``{"kind": "cell", "label", "done",
      "total", "key", "ok", "seconds"}`` (``total`` is ``None`` when the
      tracker never learned it);
    * a resume announcement yields ``{"kind": "resume", "label",
      "cached", "total"}``;
    * anything else -- engine logging, blank lines, partial writes --
      yields ``None``.
    """
    line = line.rstrip("\n")
    match = _CELL_LINE.match(line)
    if match:
        total = match.group("total")
        return {"kind": "cell",
                "label": match.group("label"),
                "done": int(match.group("done")),
                "total": None if total == "?" else int(total),
                "key": match.group("key"),
                "ok": match.group("status") == "ok",
                "seconds": float(match.group("seconds"))}
    match = _RESUME_LINE.match(line)
    if match:
        return {"kind": "resume",
                "label": match.group("label"),
                "cached": int(match.group("cached")),
                "total": int(match.group("total"))}
    return None


class ProgressTracker:
    """Collect per-cell telemetry and optionally narrate it live.

    Parameters
    ----------
    stream:
        Where live progress lines go (e.g. ``sys.stderr``); ``None``
        collects telemetry silently.
    label:
        Prefix of the live lines (useful when several sweeps share a
        terminal).

    The tracker is duck-typed from the runner's side: anything with
    ``begin(total, cached=0)`` and ``observe(outcome)`` can be passed as
    ``progress=`` to :func:`repro.sim.runner.sweep`.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 label: str = "sweep") -> None:
        self.stream = stream
        self.label = label
        self._timings: List[CellTiming] = []
        self._total: Optional[int] = None
        self._n_cached = 0
        self._phase_seconds: Dict[str, float] = {}
        self._start = time.perf_counter()
        self._last = self._start

    def begin(self, total: int, cached: int = 0) -> None:
        """Announce the number of cells to execute (and cells resumed)."""
        self._total = int(total)
        self._n_cached = int(cached)
        self._start = time.perf_counter()
        self._last = self._start
        if self.stream is not None and cached:
            self.stream.write(
                f"[{self.label}] resuming: {cached} cell(s) already "
                f"checkpointed, {total} to run\n")
            self.stream.flush()

    def observe(self, outcome: CellOutcome) -> None:
        """Record one completed cell (called by the runner per outcome)."""
        cell = outcome.cell
        ok = isinstance(outcome.result, RunMetrics)
        self._timings.append(CellTiming(
            key=cell.key, scheme=cell.scheme, point_index=cell.point_index,
            run_index=cell.run_index, seconds=outcome.seconds, ok=ok))
        accumulate_phase_seconds(
            self._phase_seconds,
            getattr(outcome.result, "phase_seconds", {}))
        self._last = time.perf_counter()
        if self.stream is not None:
            done = len(self._timings)
            total = self._total if self._total is not None else "?"
            status = "ok" if ok else "FAILED"
            self.stream.write(
                f"[{self.label}] {done}/{total} {cell.key} {status} "
                f"{outcome.seconds:.2f}s\n")
            self.stream.flush()

    def report(self) -> TimingReport:
        """The end-of-sweep timing report for everything observed so far.

        With zero executed cells (a fully-checkpointed resume never calls
        :meth:`observe`) ``self._last`` still equals ``self._start``, so
        the wall clock is measured to *now* instead of reporting 0.00 s.
        """
        end = self._last if self._timings else time.perf_counter()
        wall = max(0.0, end - self._start)
        report = TimingReport(timings=tuple(self._timings), wall_seconds=wall,
                              n_cached=self._n_cached,
                              phase_seconds=dict(self._phase_seconds))
        if metrics_enabled():
            registry = global_registry()
            registry.gauge("repro_executor_effective_parallelism").set(
                report.effective_parallelism)
            registry.gauge("repro_executor_wall_seconds").set(
                report.wall_seconds)
        return report
