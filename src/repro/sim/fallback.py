"""Per-slot solver fallback chain and degradation accounting.

A production sweep must not lose an entire figure because one slot of one
replication hit a pathological problem instance: a dual solver that fails
to converge (or is configured ``strict=True`` and raises), a numerically
corrupted allocation (NaN shares), or an infeasible time-share vector.
:class:`FallbackChain` wraps the scheme's allocator with a degradation
path: each allocator in the chain is tried in order, its output is
validated with :func:`check_allocation`, and on failure the engine
degrades to the next allocator while recording a structured
:class:`DegradationEvent` (slot, cause, residual, fallback used) instead
of crashing.  The events ride along in
:class:`~repro.sim.metrics.RunMetrics` so experiments can report *how
often* they degraded, not just their final numbers.

The engine builds its chain through :func:`fallback_chain_for`: the
configured scheme first, then every registered scheme carrying the
``fallback_eligible`` capability (in registration order).  Among the
built-ins only ``heuristic1`` is fallback-eligible -- the
equal-allocation heuristic is closed-form and cannot fail to converge,
which makes it a safe terminal fallback for every scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.problem import Allocation, SlotProblem
from repro.obs.logging import get_logger
from repro.obs.trace import active_tracer
from repro.utils.errors import AllocationFailedError, ConvergenceError, ReproError

logger = get_logger(__name__)

#: Feasibility slack when validating per-station time-share sums.
_FEASIBILITY_TOL = 1e-6


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded degradation of a slot's allocation path.

    Attributes
    ----------
    slot:
        0-based slot index at which the degradation happened.
    cause:
        Machine-readable cause: ``"convergence"`` (solver raised
        :class:`ConvergenceError`), ``"non-finite"`` (NaN/inf in the
        allocation), ``"infeasible"`` (per-station shares exceed the
        slot), ``"allocator-error"`` (any other :class:`ReproError`),
        ``"injected-nonconvergence"`` (fault harness), or
        ``"sensing-outage"`` (a channel's observations went missing and
        fusion fell back to the prior).
    allocator:
        Name of the allocator (or subsystem) that failed.
    fallback:
        Name of the allocator the slot degraded to (``"none"`` when the
        failure was terminal or the event is informational).
    residual:
        Convergence residual when the cause carries one.
    detail:
        Free-form human-readable context.
    """

    slot: int
    cause: str
    allocator: str
    fallback: str = "none"
    residual: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-compatible representation (checkpoint / results files)."""
        return {
            "slot": self.slot,
            "cause": self.cause,
            "allocator": self.allocator,
            "fallback": self.fallback,
            "residual": self.residual,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationEvent":
        """Inverse of :meth:`to_dict`."""
        residual = data.get("residual")
        return cls(
            slot=int(data["slot"]),
            cause=str(data["cause"]),
            allocator=str(data["allocator"]),
            fallback=str(data.get("fallback", "none")),
            residual=None if residual is None else float(residual),
            detail=str(data.get("detail", "")),
        )


def check_allocation(problem: SlotProblem,
                     allocation: Allocation) -> Optional[str]:
    """Validate an allocation; return a failure cause or ``None`` if usable.

    Checks, in order:

    * every time share and the objective are finite (``"non-finite"``);
    * every share lies in ``[0, 1]`` and each station's shares sum to at
      most the slot (``"infeasible"``).

    The checks are deliberately cheap -- a handful of float comparisons
    per user -- so the engine can afford them on every slot.
    """
    shares = list(allocation.rho_mbs.values()) + list(allocation.rho_fbs.values())
    if not all(map(math.isfinite, shares)):
        return "non-finite"
    if not math.isfinite(allocation.objective):
        return "non-finite"
    if any(share < -_FEASIBILITY_TOL or share > 1.0 + _FEASIBILITY_TOL
           for share in shares):
        return "infeasible"
    mbs_load = sum(allocation.rho_mbs.get(uid, 0.0)
                   for uid in allocation.mbs_user_ids)
    if mbs_load > 1.0 + _FEASIBILITY_TOL:
        return "infeasible"
    for fbs_id in problem.fbs_ids:
        cell_load = sum(
            allocation.rho_fbs.get(user.user_id, 0.0)
            for user in problem.users_of_fbs(fbs_id)
            if user.user_id not in allocation.mbs_user_ids)
        if cell_load > 1.0 + _FEASIBILITY_TOL:
            return "infeasible"
    return None


def fallback_chain_for(scheme: str, allocator: object,
                       registry=None) -> "FallbackChain":
    """Build the degradation chain for a scheme's allocator.

    The chain starts with ``(scheme, allocator)`` and appends every
    *other* registered scheme whose :class:`~repro.registry.schemes.
    SchemeInfo` carries ``fallback_eligible``, in registration order
    (freshly instantiated -- fallback allocators never share state with
    the primary).  A fallback-eligible primary therefore gets a
    single-link chain, exactly as ``heuristic1`` always has.
    """
    if registry is None:
        from repro.registry.schemes import scheme_registry

        registry = scheme_registry()
    chain = [(scheme, allocator)]
    chain.extend((info.name, info.create()) for info in registry
                 if info.fallback_eligible and info.name != scheme)
    return FallbackChain(chain)


def _note_degradation(event: DegradationEvent) -> None:
    """Narrate one degradation on the log and the active trace."""
    logger.warning("slot %d: %s degraded (%s) -> %s",
                   event.slot, event.allocator, event.cause, event.fallback)
    tracer = active_tracer()
    if tracer is not None:
        tracer.event("degradation", slot=event.slot, cause=event.cause,
                     allocator=event.allocator, fallback=event.fallback)


class FallbackChain:
    """Ordered chain of allocators with validation between links.

    Parameters
    ----------
    allocators:
        ``[(name, allocator), ...]`` tried in order.  The first allocator
        is the scheme under evaluation; later entries are degradation
        targets.  Every allocator exposes ``allocate(problem) ->
        Allocation``.
    """

    def __init__(self, allocators: Sequence[Tuple[str, object]]) -> None:
        if not allocators:
            raise ValueError("FallbackChain needs at least one allocator")
        self.allocators = list(allocators)

    def allocate(self, problem: SlotProblem, *, slot: int,
                 inject_nonconvergence: bool = False
                 ) -> Tuple[Allocation, List[DegradationEvent]]:
        """Allocate one slot, degrading down the chain on failure.

        Parameters
        ----------
        problem:
            The slot problem.
        slot:
            0-based slot index (recorded in events).
        inject_nonconvergence:
            Fault-injection hook: treat the *primary* allocator as having
            raised :class:`ConvergenceError` without running it (the
            deterministic failure used by the robustness suite).

        Returns
        -------
        (allocation, events):
            The first allocation that validates, plus one
            :class:`DegradationEvent` per failed stage (empty on the
            happy path).

        Raises
        ------
        AllocationFailedError
            When every allocator in the chain fails; the exception
            carries the per-stage events.
        """
        from repro.core.batch import drive

        return drive(self.allocate_iter(
            problem, slot=slot, inject_nonconvergence=inject_nonconvergence))

    def allocate_iter(self, problem: SlotProblem, *, slot: int,
                      inject_nonconvergence: bool = False):
        """Generator form of :meth:`allocate` (lockstep batching).

        Allocators exposing ``allocate_iter`` (the proposed schemes) are
        driven through the generator protocol so their solves can be
        batched; anything else -- heuristics, test doubles -- is called
        inline.  Failure handling is unchanged: exceptions raised while
        a delegated generator runs propagate through ``yield from`` into
        the same ``except`` clauses as the direct call.
        """
        events: List[DegradationEvent] = []
        last_index = len(self.allocators) - 1
        for index, (name, allocator) in enumerate(self.allocators):
            next_name = (self.allocators[index + 1][0]
                         if index < last_index else "none")
            if inject_nonconvergence and index == 0:
                events.append(DegradationEvent(
                    slot=slot, cause="injected-nonconvergence",
                    allocator=name, fallback=next_name,
                    detail="fault harness forced non-convergence"))
                _note_degradation(events[-1])
                continue
            try:
                if hasattr(allocator, "allocate_iter"):
                    allocation = yield from allocator.allocate_iter(problem)
                else:
                    allocation = allocator.allocate(problem)
            except ConvergenceError as exc:
                events.append(DegradationEvent(
                    slot=slot, cause="convergence", allocator=name,
                    fallback=next_name, residual=exc.residual,
                    detail=str(exc)))
                _note_degradation(events[-1])
                continue
            except ReproError as exc:
                events.append(DegradationEvent(
                    slot=slot, cause="allocator-error", allocator=name,
                    fallback=next_name, detail=f"{type(exc).__name__}: {exc}"))
                _note_degradation(events[-1])
                continue
            cause = check_allocation(problem, allocation)
            if cause is None:
                return allocation, events
            events.append(DegradationEvent(
                slot=slot, cause=cause, allocator=name, fallback=next_name,
                detail=f"allocation rejected by validation ({cause})"))
            _note_degradation(events[-1])
        logger.error("slot %d: all %d allocators failed", slot,
                     len(self.allocators))
        raise AllocationFailedError(
            f"all {len(self.allocators)} allocators failed on slot {slot} "
            f"({', '.join(f'{e.allocator}: {e.cause}' for e in events)})",
            events=events)
