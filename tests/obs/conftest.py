"""Shared isolation for the observability suite.

Every test runs with a clean slate: no active tracer, metrics disabled
on an empty registry, no log handler.  The obs package is process-global
by design, so without this fixture one test's leftover tracer would
silently instrument the next test's engine run.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.deactivate()
    obs.enable_metrics(False)
    obs.reset_metrics()
    obs.reset_logging()
    yield
    obs.shutdown()
    obs.reset_metrics()
    obs.reset_logging()
