"""Aggregate metrics of simulation runs.

The paper's figure of merit is the average Y-PSNR of the reconstructed
videos (per user in Fig. 3, averaged over users elsewhere), each point
being the mean of 10 independent runs with a 95% confidence interval.
For the interfering scenario the figures also carry an "Upper bound"
curve derived from eq. (23); :func:`compute_run_metrics` converts the
accumulated per-GOP objective gaps into a PSNR-domain bound (see
``upper_bound_psnr`` below for the construction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import accumulate_phase_seconds
from repro.sim.fallback import DegradationEvent
from repro.utils.stats import ConfidenceInterval, jain_fairness_index, mean_confidence_interval
from repro.video.gop import GopClock


@dataclass(frozen=True)
class RunMetrics:
    """Aggregates of one simulation run.

    Attributes
    ----------
    per_user_psnr:
        ``{user_id: mean PSNR over completed GOPs}`` in dB.
    mean_psnr:
        Average of ``per_user_psnr`` over users (the paper's y-axis).
    fairness:
        Jain index of the per-user PSNRs (quantifies Fig. 3's balance
        observation).
    collision_rates:
        Per-channel empirical collision probability per slot; must stay
        below ``gamma`` up to sampling noise.
    upper_bound_psnr:
        PSNR-domain upper bound implied by eq. (23); equals ``mean_psnr``
        for runs where no greedy allocation happened (non-interfering or
        heuristic schemes).
    bound_gaps_per_gop:
        The accumulated objective gaps behind the bound (log domain).
    degradation_events:
        Structured fault-tolerance diagnostics recorded during the run
        (solver fallbacks, sensing outages); see
        :class:`~repro.sim.fallback.DegradationEvent`.  Empty on a fully
        healthy run.
    phase_seconds:
        Wall-clock seconds the engine spent per phase (``sensing``,
        ``access``, ``allocation``, ``transmission``).  Profiling
        telemetry only: deliberately excluded from checkpoint/result
        serialization, which must stay deterministic.
    obs_snapshot:
        :meth:`repro.obs.metrics.MetricsRegistry.snapshot` of the
        metrics recorded during this replication, when metric collection
        was enabled (empty otherwise).  Telemetry like
        ``phase_seconds``: rides the run back from worker processes so
        the parent can merge it, and is excluded from checkpoint/result
        serialization.
    """

    per_user_psnr: Dict[int, float]
    mean_psnr: float
    fairness: float
    collision_rates: np.ndarray
    upper_bound_psnr: float
    bound_gaps_per_gop: Sequence[float] = field(default_factory=tuple)
    degradation_events: Sequence[DegradationEvent] = field(default_factory=tuple)
    phase_seconds: Mapping[str, float] = field(default_factory=dict)
    obs_snapshot: Mapping[str, object] = field(default_factory=dict)

    @property
    def n_users(self) -> int:
        """Number of users in the run."""
        return len(self.per_user_psnr)

    @property
    def n_degraded(self) -> int:
        """Number of degradation events recorded during the run."""
        return len(self.degradation_events)


def compute_run_metrics(clocks: Mapping[int, GopClock], collision_rates: np.ndarray,
                        bound_gaps_per_gop: Sequence[float],
                        degradation_events: Sequence[DegradationEvent] = (),
                        phase_seconds: Optional[Mapping[str, float]] = None
                        ) -> RunMetrics:
    """Fold per-user GOP clocks into a :class:`RunMetrics`.

    The eq. (23) gap is a bound on the *objective* (sum over users of
    expected log-PSNR gain) per slot; distributing a GOP window's
    accumulated gap equally across the ``K`` users bounds each user's
    optimal log-PSNR by ``log W + gap/K``, i.e. scales the PSNR by
    ``exp(gap/K)``.  ``upper_bound_psnr`` applies that factor per GOP and
    averages, keeping the bound in the same units as ``mean_psnr``.
    """
    per_user = {user_id: clock.mean_gop_psnr() for user_id, clock in clocks.items()}
    values = list(per_user.values())
    mean_psnr = float(np.mean(values))
    n_users = len(per_user)

    gop_counts = {len(clock.completed_gop_psnrs) for clock in clocks.values()}
    n_gops = min(gop_counts) if gop_counts else 0
    gaps = list(bound_gaps_per_gop)
    if n_gops and gaps:
        per_gop_means = []
        for gop_index in range(n_gops):
            gop_mean = float(np.mean([
                clock.completed_gop_psnrs[gop_index] for clock in clocks.values()]))
            gap = gaps[gop_index] if gop_index < len(gaps) else 0.0
            per_gop_means.append(gop_mean * math.exp(gap / n_users))
        upper_bound = float(np.mean(per_gop_means))
    else:
        upper_bound = mean_psnr

    return RunMetrics(
        per_user_psnr=per_user,
        mean_psnr=mean_psnr,
        fairness=jain_fairness_index(values),
        collision_rates=np.asarray(collision_rates, dtype=float),
        upper_bound_psnr=upper_bound,
        bound_gaps_per_gop=tuple(gaps),
        degradation_events=tuple(degradation_events),
        phase_seconds=dict(phase_seconds) if phase_seconds else {},
    )


@dataclass(frozen=True)
class FailedRun:
    """Diagnostic record of a Monte-Carlo replication that was lost.

    Produced by the fault-tolerant runner when a replication raises a
    :class:`~repro.utils.errors.ReproError` on its first attempt *and* on
    its fresh-seed retry.  Kept alongside the surviving runs (and in
    sweep checkpoints) so failures are reported, not silently dropped.

    Attributes
    ----------
    run_index:
        The replication index that failed.
    error_type:
        Class name of the final exception.
    error:
        Message of the final exception.
    attempts:
        Number of attempts made (first try + retries).
    seeds:
        The per-attempt derived seeds, for offline reproduction of the
        failure (``None`` entries for unseeded experiments).
    """

    run_index: int
    error_type: str
    error: str
    attempts: int
    seeds: Tuple[Optional[int], ...] = ()

    def to_dict(self) -> dict:
        """JSON-compatible representation (checkpoint files)."""
        return {
            "run_index": self.run_index,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailedRun":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_index=int(data["run_index"]),
            error_type=str(data["error_type"]),
            error=str(data["error"]),
            attempts=int(data["attempts"]),
            seeds=tuple(None if s is None else int(s)
                        for s in data.get("seeds", [])),
        )


@dataclass(frozen=True)
class MetricsSummary:
    """Cross-run summary used for one experiment point.

    Attributes
    ----------
    mean_psnr:
        Confidence interval of the run-level mean PSNR.
    per_user_psnr:
        Per-user confidence intervals.
    upper_bound_psnr:
        Confidence interval of the eq. (23) PSNR bound.
    fairness:
        Confidence interval of the Jain index.
    mean_collision_rate:
        Confidence interval of the channel-averaged collision rate.
    n_failed:
        Replications that failed (after their retry) and were excluded
        from these statistics -- the explicit survivor count the
        fault-tolerant runner reports instead of silently shrinking the
        sample.
    n_degraded_slots:
        Total degradation events across the surviving runs (solver
        fallbacks and sensing outages).
    phase_seconds:
        Per-phase engine wall-clock seconds summed over the surviving
        runs (empty when the runs carried no timing telemetry, e.g.
        deserialized checkpoint rows).
    """

    mean_psnr: ConfidenceInterval
    per_user_psnr: Dict[int, ConfidenceInterval]
    upper_bound_psnr: ConfidenceInterval
    fairness: ConfidenceInterval
    mean_collision_rate: ConfidenceInterval
    n_failed: int = 0
    n_degraded_slots: int = 0
    phase_seconds: Mapping[str, float] = field(default_factory=dict)


def summarize_runs(runs: Sequence[RunMetrics], confidence: float = 0.95,
                   n_failed: int = 0) -> MetricsSummary:
    """Summarise independent runs into confidence intervals.

    Parameters
    ----------
    runs:
        The surviving replications (at least one).
    confidence:
        CI confidence level.
    n_failed:
        Replications that were lost to errors; recorded verbatim on the
        summary so downstream consumers can see the effective sample
        size shrank.
    """
    if not runs:
        raise ValueError("runs must be non-empty")
    user_ids = sorted(runs[0].per_user_psnr)
    for run in runs:
        if sorted(run.per_user_psnr) != user_ids:
            raise ValueError("all runs must cover the same users")
    phase_totals: Dict[str, float] = {}
    for run in runs:
        accumulate_phase_seconds(phase_totals, run.phase_seconds)
    return MetricsSummary(
        mean_psnr=mean_confidence_interval(
            [run.mean_psnr for run in runs], confidence),
        per_user_psnr={
            user_id: mean_confidence_interval(
                [run.per_user_psnr[user_id] for run in runs], confidence)
            for user_id in user_ids
        },
        upper_bound_psnr=mean_confidence_interval(
            [run.upper_bound_psnr for run in runs], confidence),
        fairness=mean_confidence_interval(
            [run.fairness for run in runs], confidence),
        mean_collision_rate=mean_confidence_interval(
            [float(run.collision_rates.mean()) for run in runs], confidence),
        n_failed=int(n_failed),
        n_degraded_slots=sum(run.n_degraded for run in runs),
        phase_seconds=phase_totals,
    )
