"""The paper's two comparison schemes (Section V).

* **Heuristic 1 -- equal allocation**: each CR user *locally* chooses the
  better base station (common channel vs its FBS's licensed channels)
  from the channel conditions, then every base station divides its slot
  equally among the users that chose it.
* **Heuristic 2 -- multiuser diversity**: the MBS and each FBS *globally*
  pick the single user with the best channel condition and give that user
  the entire slot.

Both heuristics work from the same channel statistics (eq. 8) the
proposed scheme uses -- neither side holds an information advantage --
but they are *application-agnostic*: they rank by channel condition
alone, blind to video rate-distortion slopes and to how much of the
current GOP has already been delivered.  That missing cross-layer
information (which the proposed scheme folds into its objective) is
what the paper's evaluation quantifies.

Both schemes produce :class:`~repro.core.problem.Allocation` objects, so
the simulation engine treats them interchangeably with the proposed
algorithms.
"""

from __future__ import annotations

from typing import Dict

from repro.core.problem import Allocation, SlotProblem, UserDemand, evaluate_objective


def mbs_condition(user: UserDemand) -> float:
    """Channel condition of the user's MBS link: expected PSNR rate."""
    return user.success_mbs * user.r_mbs


def fbs_condition(user: UserDemand, g_i: float) -> float:
    """Channel condition of the user's FBS link: expected PSNR rate."""
    return user.success_fbs * g_i * user.r_fbs


class EqualAllocationHeuristic:
    """Heuristic 1: local channel choice + equal time shares."""

    name = "heuristic1"

    def allocate(self, problem: SlotProblem) -> Allocation:
        """Allocate one slot.

        Each user independently compares its two links; ties go to the
        FBS (the femtocell is the designated server when neither link is
        better).  Stations then split their slot equally.
        """
        mbs_users = set()
        for user in problem.users:
            if mbs_condition(user) > fbs_condition(user, problem.g_for_user(user)):
                mbs_users.add(user.user_id)
        rho_mbs: Dict[int, float] = {}
        rho_fbs: Dict[int, float] = {}
        if mbs_users:
            share = 1.0 / len(mbs_users)
            for user_id in mbs_users:
                rho_mbs[user_id] = share
        for fbs_id in problem.fbs_ids:
            cell = [u for u in problem.users_of_fbs(fbs_id) if u.user_id not in mbs_users]
            if not cell:
                continue
            share = 1.0 / len(cell)
            for user in cell:
                rho_fbs[user.user_id] = share
        allocation = Allocation(mbs_user_ids=mbs_users, rho_mbs=rho_mbs, rho_fbs=rho_fbs)
        allocation.objective = evaluate_objective(problem, allocation)
        return allocation


class MultiuserDiversityHeuristic:
    """Heuristic 2: every base station serves only its best user.

    "Best channel condition" is read literally: the base station ranks
    users by link quality (success probability, i.e. SINR ordering).
    Like Heuristic 1, the scheme is channel-aware but application-
    agnostic -- it does not track video rate-distortion slopes or how
    much of the current GOP is already delivered -- which is precisely
    the cross-layer information the proposed scheme exploits.
    """

    name = "heuristic2"

    @staticmethod
    def _mbs_quality(user: UserDemand) -> float:
        return user.success_mbs

    @staticmethod
    def _fbs_quality(user: UserDemand, g_i: float) -> float:
        return user.success_fbs if g_i > 0 else 0.0

    def allocate(self, problem: SlotProblem) -> Allocation:
        """Allocate one slot.

        The MBS picks the user with the best common-channel quality among
        *all* users; each FBS picks the best-quality user in its cell.
        The MBS winner is served by the MBS even if it also wins its
        femtocell (single transceiver -- it cannot use both), in which
        case the FBS falls back to its next-best user.
        """
        rho_mbs: Dict[int, float] = {}
        rho_fbs: Dict[int, float] = {}
        mbs_users = set()

        mbs_winner = max(problem.users, key=self._mbs_quality, default=None)
        if mbs_winner is not None and self._mbs_quality(mbs_winner) > 0.0:
            mbs_users.add(mbs_winner.user_id)
            rho_mbs[mbs_winner.user_id] = 1.0

        for fbs_id in problem.fbs_ids:
            g_i = problem.expected_channels[fbs_id]
            candidates = [u for u in problem.users_of_fbs(fbs_id)
                          if u.user_id not in mbs_users]
            winner = max(candidates, key=lambda u: self._fbs_quality(u, g_i),
                         default=None)
            if winner is not None and self._fbs_quality(winner, g_i) > 0.0:
                rho_fbs[winner.user_id] = 1.0

        allocation = Allocation(mbs_user_ids=mbs_users, rho_mbs=rho_mbs, rho_fbs=rho_fbs)
        allocation.objective = evaluate_objective(problem, allocation)
        return allocation
