"""Tests for the packet-loss wrappers (eq. 8)."""

import pytest

from repro.phy.fading import RayleighFading
from repro.phy.sinr import packet_loss_probability, success_probability


def test_loss_is_cdf_at_threshold():
    fading = RayleighFading(10.0)
    assert packet_loss_probability(fading, 5.0) == pytest.approx(fading.cdf(5.0))


def test_success_complements_loss():
    fading = RayleighFading(7.0)
    loss = packet_loss_probability(fading, 3.0)
    assert success_probability(fading, 3.0) == pytest.approx(1.0 - loss)


def test_zero_threshold_never_loses():
    assert packet_loss_probability(RayleighFading(1.0), 0.0) == 0.0


def test_invalid_cdf_detected():
    class BrokenFading:
        def cdf(self, threshold):
            return 1.5

    with pytest.raises(ValueError):
        packet_loss_probability(BrokenFading(), 1.0)
