"""Tests for interference-graph construction (Definition 1, Figs. 2/5)."""

import networkx as nx
import pytest

from repro.net.interference import (
    build_interference_graph,
    interference_graph_from_edges,
    is_valid_allocation,
    max_degree,
    neighbors,
)
from repro.net.nodes import FemtoBaseStation
from repro.utils.errors import ConfigurationError


def chain_fbss():
    """Three FBSs in the Fig. 5 geometry: 1-2 and 2-3 overlap, 1-3 not."""
    return [
        FemtoBaseStation(1, (0.0, 0.0), coverage_radius_m=30.0),
        FemtoBaseStation(2, (45.0, 0.0), coverage_radius_m=30.0),
        FemtoBaseStation(3, (90.0, 0.0), coverage_radius_m=30.0),
    ]


class TestGeometricConstruction:
    def test_fig5_chain(self):
        graph = build_interference_graph(chain_fbss())
        assert sorted(graph.nodes) == [1, 2, 3]
        assert sorted(graph.edges) == [(1, 2), (2, 3)]

    def test_fig2_topology(self):
        # Fig. 1/2: FBS 1 and 2 isolated; FBS 3 and 4 overlap.
        fbss = [
            FemtoBaseStation(1, (0.0, 0.0), coverage_radius_m=30.0),
            FemtoBaseStation(2, (200.0, 0.0), coverage_radius_m=30.0),
            FemtoBaseStation(3, (400.0, 0.0), coverage_radius_m=30.0),
            FemtoBaseStation(4, (440.0, 0.0), coverage_radius_m=30.0),
        ]
        graph = build_interference_graph(fbss)
        assert sorted(graph.edges) == [(3, 4)]
        assert max_degree(graph) == 1

    def test_isolated_fbss(self):
        fbss = [FemtoBaseStation(i, (200.0 * i, 0.0)) for i in (1, 2, 3)]
        graph = build_interference_graph(fbss)
        assert graph.number_of_edges() == 0
        assert max_degree(graph) == 0

    def test_duplicate_ids_rejected(self):
        fbss = [FemtoBaseStation(1, (0.0, 0.0)), FemtoBaseStation(1, (1.0, 0.0))]
        with pytest.raises(ConfigurationError):
            build_interference_graph(fbss)


class TestExplicitConstruction:
    def test_fig5_from_edges(self):
        graph = interference_graph_from_edges([1, 2, 3], [(1, 2), (2, 3)])
        assert max_degree(graph) == 2  # FBS 2

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            interference_graph_from_edges([1, 2], [(1, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            interference_graph_from_edges([1, 2], [(1, 1)])


class TestQueries:
    def test_neighbors(self):
        graph = interference_graph_from_edges([1, 2, 3], [(1, 2), (2, 3)])
        assert neighbors(graph, 2) == {1, 3}
        assert neighbors(graph, 1) == {2}

    def test_neighbors_unknown_node(self):
        graph = nx.Graph()
        with pytest.raises(ConfigurationError):
            neighbors(graph, 1)

    def test_max_degree_empty_graph(self):
        assert max_degree(nx.Graph()) == 0


class TestAllocationValidity:
    def test_valid_allocation(self):
        graph = interference_graph_from_edges([1, 2, 3], [(1, 2), (2, 3)])
        allocation = {1: {0, 1}, 2: {2}, 3: {0, 1}}  # 1 and 3 may share
        assert is_valid_allocation(graph, allocation)

    def test_conflicting_allocation(self):
        graph = interference_graph_from_edges([1, 2], [(1, 2)])
        assert not is_valid_allocation(graph, {1: {0}, 2: {0}})

    def test_missing_fbs_treated_as_empty(self):
        graph = interference_graph_from_edges([1, 2], [(1, 2)])
        assert is_valid_allocation(graph, {1: {0}})
